"""Experiment D-arith — software arithmetic (Section 4.3 + Table 1 fallout).

Compares, on the HCS12X-like (cache-less) configuration the lDivMod study
targets:

* the estimate-and-correct ``ldivmod`` routine, whose correction loop can only
  be bounded by the designer-supplied worst case (65536 chunk steps for
  unconstrained 32-bit operands) — its WCET bound explodes even though its
  typical execution takes a single iteration;
* the restoring division, bounded automatically at 32 iterations with a bound
  close to its observed time;
* a filter kernel calling the division per sample vs. a fixed-point rewrite.

Shape: WCET(ldivmod) >> WCET(restoring) although the *observed* time of
ldivmod is smaller; the fixed-point kernel beats the division-based kernel on
both counts.
"""

from __future__ import annotations

import pytest

from repro.hardware import TraceTimer, hcs12x_like
from repro.ir import Interpreter
from repro.workloads import arithmetic_suite
from helpers import analyze, print_comparison


def test_average_case_optimised_division_has_terrible_wcet():
    processor = hcs12x_like()

    ldivmod_program = arithmetic_suite.ldivmod_program()
    restoring_program = arithmetic_suite.restoring_program()

    ldivmod_report = analyze(
        ldivmod_program,
        processor=processor,
        entry="ldivmod",
        annotations=arithmetic_suite.ldivmod_annotations(),
    )
    restoring_report = analyze(restoring_program, processor=processor, entry="restoring_div")

    # Observed execution times for a typical operand pair.
    typical = (0x12345678, 0x00010001)
    ldivmod_run = Interpreter(ldivmod_program).run("ldivmod", args=list(typical))
    restoring_run = Interpreter(restoring_program).run("restoring_div", args=list(typical))
    ldivmod_observed = TraceTimer(processor, ldivmod_program).time(ldivmod_run.trace)
    restoring_observed = TraceTimer(processor, restoring_program).time(restoring_run.trace)

    print_comparison(
        "Software division on HCS12X-like (cycles)",
        [
            ("ldivmod WCET bound (worst-case annotation)", ldivmod_report.wcet_cycles),
            ("restoring WCET bound (automatic)", restoring_report.wcet_cycles),
            ("ldivmod observed (typical operands)", ldivmod_observed.cycles),
            ("restoring observed (typical operands)", restoring_observed.cycles),
            ("WCET ratio ldivmod/restoring", f"{ldivmod_report.wcet_cycles / restoring_report.wcet_cycles:.0f}x"),
        ],
    )

    # Functional agreement.
    assert ldivmod_run.return_value == restoring_run.return_value == typical[0] // typical[1]
    # Shape: the average-case-optimised routine is faster in the typical run...
    assert ldivmod_observed.cycles < restoring_observed.cycles
    # ...but its WCET bound is orders of magnitude worse.
    assert ldivmod_report.wcet_cycles > 50 * restoring_report.wcet_cycles


def test_fixed_point_kernel_beats_division_kernel():
    processor = hcs12x_like()
    division = analyze(
        arithmetic_suite.division_filter_program(),
        processor=processor,
        annotations=arithmetic_suite.division_filter_annotations(),
    )
    fixed_point = analyze(arithmetic_suite.fixedpoint_filter_program(), processor=processor)
    print_comparison(
        "Filter kernel: division-based vs. fixed-point (HCS12X-like)",
        [
            ("division-based kernel WCET", f"{division.wcet_cycles} cycles"),
            ("fixed-point kernel WCET", f"{fixed_point.wcet_cycles} cycles"),
            ("ratio", f"{division.wcet_cycles / fixed_point.wcet_cycles:.0f}x"),
        ],
    )
    assert division.wcet_cycles > 10 * fixed_point.wcet_cycles


def test_benchmark_ldivmod_wcet_analysis(benchmark):
    program = arithmetic_suite.ldivmod_program()
    annotations = arithmetic_suite.ldivmod_annotations()
    processor = hcs12x_like()
    benchmark(lambda: analyze(program, processor=processor, entry="ldivmod", annotations=annotations))
