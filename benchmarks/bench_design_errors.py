"""Experiment D-err — error handling (Section 4.3).

The monitor task is analysed under three assumptions about its four error
handlers:

1. nothing documented — all handlers may fire in one activation (the safe but
   "rather uncommon or simply infeasible" assumption);
2. documented single-fault scenario — at most one handler per activation;
3. error handling excluded from this task's worst case.

Shape: 1 > 2 > 3, with the single-fault scenario removing roughly three of the
four handler executions from the bound.
"""

from __future__ import annotations

import pytest

from repro.hardware import leon2_like
from repro.workloads import error_handling
from helpers import analyze, print_comparison


@pytest.fixture(scope="module")
def reports():
    program = error_handling.program()
    annotations = error_handling.annotations()
    processor = leon2_like()
    return {
        "all errors at once": analyze(
            program, processor=processor, annotations=annotations, entry="monitor"
        ),
        "single-fault scenario": analyze(
            program, processor=processor, annotations=annotations, entry="monitor",
            error_scenario="single_fault",
        ),
        "errors excluded": analyze(
            program, processor=processor, annotations=annotations, entry="monitor",
            error_scenario="errors_excluded",
        ),
    }


def test_error_scenarios_tighten_the_bound(reports):
    bounds = {name: report.wcet_cycles for name, report in reports.items()}
    rows = [(name, f"{value} cycles") for name, value in bounds.items()]
    rows.append(
        ("single-fault gain", f"{bounds['all errors at once'] / bounds['single-fault scenario']:.2f}x")
    )
    print_comparison("Error handling scenarios: monitor task (LEON2-like)", rows)

    assert bounds["single-fault scenario"] < bounds["all errors at once"]
    assert bounds["errors excluded"] < bounds["single-fault scenario"]
    # Four handlers vs. one: expect at least a 2x gain from the scenario.
    assert bounds["all errors at once"] > 2 * bounds["single-fault scenario"]


def test_benchmark_error_scenario_analysis(benchmark):
    program = error_handling.program()
    annotations = error_handling.annotations()
    benchmark(
        lambda: analyze(
            program, annotations=annotations, entry="monitor", error_scenario="single_fault"
        )
    )
