"""Experiment D-mem — imprecise memory accesses (Section 4.3).

The CAN-driver workload reads a mailbox through a pointer the value analysis
cannot resolve.  Without further information every such access is charged with
the slowest memory module of the platform (the memory-mapped device region).
A per-function memory-region annotation ("this routine only touches RAM")
restores most of the precision.  Shape: annotated bound clearly below the
unannotated bound; both remain above the observed execution time.
"""

from __future__ import annotations

import pytest

from repro.hardware import TraceTimer, leon2_like
from repro.ir import Interpreter
from repro.workloads import pointer_suite
from helpers import analyze, print_comparison


def test_memory_region_annotation_recovers_precision():
    processor = leon2_like()
    program = pointer_suite.device_driver_program()

    unannotated = analyze(program, processor=processor, entry="can_driver")
    annotated = analyze(
        program,
        processor=processor,
        entry="can_driver",
        annotations=pointer_suite.device_driver_annotations(("ram",)),
    )
    run = Interpreter(program).run(initial_data={"mailbox_index": [2]})
    observed = TraceTimer(processor, program).time(run.trace)

    unknown_accesses = sum(
        function.unknown_accesses for function in unannotated.functions.values()
    )
    print_comparison(
        "Imprecise memory accesses: CAN driver (LEON2-like)",
        [
            ("no memory annotation", f"{unannotated.wcet_cycles} cycles"),
            ("regions restricted to RAM", f"{annotated.wcet_cycles} cycles"),
            ("tightening", f"{unannotated.wcet_cycles / annotated.wcet_cycles:.2f}x"),
            ("observed execution", f"{observed.cycles} cycles"),
            ("unknown accesses (unannotated)", unknown_accesses),
        ],
    )

    assert unknown_accesses > 0
    assert annotated.wcet_cycles < unannotated.wcet_cycles
    assert annotated.wcet_cycles >= observed.cycles


def test_benchmark_driver_analysis(benchmark):
    processor = leon2_like()
    program = pointer_suite.device_driver_program()
    benchmark(lambda: analyze(program, processor=processor, entry="can_driver"))
