"""Experiment D-data — data-dependent algorithms: the message handler.

Three analysis configurations of the CAN-style message handler show the value
of each piece of design-level information from Section 4.3:

1. plain loop bounds only (the designer documents the buffer capacity);
2. plus the argument range of the length parameter (bounds the copy loops
   automatically and more precisely);
3. plus the read/write mutual-exclusion flow fact (the paper's "read and write
   operations can never occur in the same execution context").

Shape: each added fact tightens the bound; the mutual exclusion roughly halves
it because only one copy loop can execute per activation.
"""

from __future__ import annotations

import pytest

from repro.hardware import leon2_like
from repro.workloads import message_handler
from helpers import analyze, print_comparison


@pytest.fixture(scope="module")
def reports():
    program = message_handler.program()
    processor = leon2_like()
    return {
        "loop bounds only": analyze(
            program, processor=processor,
            annotations=message_handler.fallback_loop_bounds(), entry="handle_message",
        ),
        "argument range": analyze(
            program, processor=processor,
            annotations=message_handler.annotations(True, False), entry="handle_message",
        ),
        "argument range + exclusion": analyze(
            program, processor=processor,
            annotations=message_handler.annotations(True, True), entry="handle_message",
        ),
    }


def test_each_design_fact_tightens_the_bound(reports):
    bounds = {name: report.wcet_cycles for name, report in reports.items()}
    rows = [(name, f"{value} cycles") for name, value in bounds.items()]
    rows.append(
        (
            "exclusion gain",
            f"{bounds['argument range'] / bounds['argument range + exclusion']:.2f}x",
        )
    )
    print_comparison("Message handler: value of design-level information", rows)

    assert bounds["argument range"] <= bounds["loop bounds only"]
    assert bounds["argument range + exclusion"] < bounds["argument range"]
    # The mutual exclusion removes one of the two copy loops from the worst
    # case: expect at least a ~1.5x tightening.
    assert bounds["argument range"] / bounds["argument range + exclusion"] > 1.5


def test_benchmark_message_handler_analysis(benchmark):
    program = message_handler.program()
    annotations = message_handler.annotations()
    benchmark(lambda: analyze(program, annotations=annotations, entry="handle_message"))
