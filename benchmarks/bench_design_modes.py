"""Experiment D-modes — operating modes (Section 4.3).

The flight-control task is analysed once without mode information and once per
operating mode.  Shape from the paper: the mode-unaware bound equals the bound
of the most expensive mode (here: in-air), while the per-mode bound of the
cheap mode (on-ground) is several times tighter — mode knowledge is pure
precision gain.
"""

from __future__ import annotations

import pytest

from repro.hardware import leon2_like
from repro.workloads import flight_control
from helpers import analyze, print_comparison


@pytest.fixture(scope="module")
def reports():
    program = flight_control.program()
    annotations = flight_control.annotations()
    processor = leon2_like()
    return {
        mode: analyze(program, processor=processor, annotations=annotations, mode=mode)
        for mode in (None, "ground", "air")
    }


def test_mode_specific_bounds_are_tighter(reports):
    unaware = reports[None].wcet_cycles
    ground = reports["ground"].wcet_cycles
    air = reports["air"].wcet_cycles
    print_comparison(
        "Operating modes: flight-control task (LEON2-like)",
        [
            ("mode-unaware bound", f"{unaware} cycles"),
            ("ground-mode bound", f"{ground} cycles"),
            ("air-mode bound", f"{air} cycles"),
            ("ground-mode tightening", f"{unaware / ground:.1f}x"),
        ],
    )
    # Every mode-specific bound is at most the mode-unaware bound.
    assert ground <= unaware and air <= unaware
    # The worst mode dominates the unaware bound (they coincide here).
    assert max(ground, air) == unaware
    # The cheap mode is dramatically (>= 3x) tighter.
    assert unaware >= 3 * ground


def test_benchmark_mode_analysis(benchmark):
    program = flight_control.program()
    annotations = flight_control.annotations()
    benchmark(lambda: analyze(program, annotations=annotations, mode="ground"))
