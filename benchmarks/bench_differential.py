"""Experiment D-differential — throughput of the differential soundness harness.

The harness is the standing scenario-diversity engine every later change is
validated against, so its own throughput matters: a sweep that takes minutes
per hundred programs caps how many scenarios CI can afford.  This bench runs
a batched sweep and reports

* end-to-end programs/second and the per-phase cost split
  (generate / compile / analyze / execute+time / structure checks), exposing
  the analyzer's per-program fixed costs;
* the soundness margin distribution (WCET bound vs. worst observed input),
  i.e. how tight the static bounds are on generated code.

Set ``REPRO_DIFF_PROGRAMS`` to sweep more seeds.
"""

from __future__ import annotations

import os
import time

from repro.hardware import TraceTimer, simple_scalar
from repro.ir import Interpreter
from repro.minic import compile_source
from repro.testing import OracleConfig, check_case, generate_case, render_case
from repro.testing.oracle import enumerate_inputs
from helpers import print_comparison


def _num_programs(default: int = 40) -> int:
    return int(os.environ.get("REPRO_DIFF_PROGRAMS", default))


def test_differential_sweep_throughput_and_phase_split():
    from repro.wcet import WCETAnalyzer

    count = _num_programs()
    base_seed = 90_000
    processor_factory = simple_scalar

    phase_seconds = {"generate": 0.0, "compile": 0.0, "analyze": 0.0, "execute": 0.0}
    margins = []
    runs = 0

    started = time.perf_counter()
    for seed in range(base_seed, base_seed + count):
        t0 = time.perf_counter()
        case = generate_case(seed)
        rendered = render_case(case)
        t1 = time.perf_counter()
        program = compile_source(rendered.source, entry=case.entry)
        t2 = time.perf_counter()
        processor = processor_factory()
        report = WCETAnalyzer(
            program, processor, annotations=rendered.annotations
        ).analyze(entry=case.entry)
        t3 = time.perf_counter()
        worst_observed = 0
        for initial_data in enumerate_inputs(case.input_variables(), 3, seed=0):
            execution = Interpreter(program, max_steps=case.max_steps).run(
                case.entry, initial_data=initial_data
            )
            observed = TraceTimer(processor, program).time(execution.trace)
            worst_observed = max(worst_observed, observed.cycles)
            assert report.bcet_cycles <= observed.cycles <= report.wcet_cycles, seed
            runs += 1
        t4 = time.perf_counter()

        phase_seconds["generate"] += t1 - t0
        phase_seconds["compile"] += t2 - t1
        phase_seconds["analyze"] += t3 - t2
        phase_seconds["execute"] += t4 - t3
        if worst_observed:
            margins.append(report.wcet_cycles / worst_observed)

    elapsed = time.perf_counter() - started
    margins.sort()

    print_comparison(
        f"Differential harness throughput ({count} programs, {runs} runs)",
        [
            ("total wall clock", f"{elapsed:.2f} s"),
            ("throughput", f"{count / elapsed:.1f} programs/s"),
            ("per program", f"{elapsed / count * 1000:.0f} ms"),
            (
                "phase split",
                " / ".join(
                    f"{name} {seconds / elapsed * 100:.0f}%"
                    for name, seconds in phase_seconds.items()
                ),
            ),
            ("WCET/observed margin (median)", f"{margins[len(margins) // 2]:.2f}x"),
            ("WCET/observed margin (min..max)", f"{margins[0]:.2f}x .. {margins[-1]:.2f}x"),
        ],
    )

    # Shape assertions: the harness stays usable in CI, the margin is sane.
    assert elapsed / count < 2.0, "differential checking became pathologically slow"
    assert margins[0] >= 1.0, "a margin below 1.0 is a soundness violation"
    # Analysis dominates the per-program fixed cost today; if that ever flips
    # towards generation the harness itself has regressed.
    assert phase_seconds["generate"] < phase_seconds["analyze"]


def test_batched_oracle_amortises_fixed_costs():
    """Per-program cost must not grow with batch size (no cross-program state)."""
    config = OracleConfig(max_input_vectors=2)

    def sweep(count: int, base: int) -> float:
        t0 = time.perf_counter()
        for seed in range(base, base + count):
            result = check_case(generate_case(seed), config)
            assert result.ok, (seed, result.violation_kinds())
        return (time.perf_counter() - t0) / count

    small = sweep(5, 91_000)
    large = sweep(15, 92_000)
    print_comparison(
        "Batched oracle scaling",
        [
            ("5-program batch", f"{small * 1000:.0f} ms/program"),
            ("15-program batch", f"{large * 1000:.0f} ms/program"),
        ],
    )
    # Generous factor: seeds vary in size; we only guard against superlinear
    # blow-up from state leaking between programs.
    assert large < small * 5
