"""Experiment F1 — Figure 1: the phase structure of the WCET analyzer.

Runs the complete analysis of the message-handler workload and reports what
each phase of Figure 1 produced (basic blocks, loop bounds, cache
classifications, block times, the path-analysis bound) together with its
wall-clock share, demonstrating that the pipeline of the paper's Figure 1 is
implemented end to end.
"""

from __future__ import annotations

import pytest

from repro.hardware import leon2_like
from repro.workloads import message_handler
from helpers import analyze, print_comparison


@pytest.fixture(scope="module")
def report():
    return analyze(
        message_handler.program(),
        processor=leon2_like(),
        annotations=message_handler.annotations(),
        entry="handle_message",
    )


def test_all_phases_execute_and_produce_artifacts(report):
    phases = {timing.phase for timing in report.phases}
    assert {"decoding", "loop/value analysis", "cache analysis",
            "pipeline analysis", "path analysis"} <= phases

    entry = report.entry_report
    rows = [
        ("WCET bound [cycles]", report.wcet_cycles),
        ("BCET bound [cycles]", report.bcet_cycles),
        ("basic blocks timed", len(entry.block_times)),
        ("loops bounded", len([l for l in entry.loop_reports if l.bound is not None])),
        ("instruction cache summary", entry.icache_summary),
        ("data cache summary", entry.dcache_summary),
    ]
    print_comparison("Figure 1 pipeline products (message handler, LEON2-like)", rows)
    print("\nper-phase wall clock:")
    for timing in report.phases:
        print(f"  {timing.phase:<22s} {timing.seconds * 1000:8.2f} ms")

    assert report.wcet_cycles > report.bcet_cycles > 0
    assert entry.block_times and entry.loop_reports


def test_benchmark_full_analysis(benchmark):
    """End-to-end analysis latency of the Figure 1 pipeline."""
    benchmark(
        lambda: analyze(
            message_handler.program(),
            processor=leon2_like(),
            annotations=message_handler.annotations(),
            entry="handle_message",
        )
    )
