"""Experiments R16.1 and R16.2 — function-shape MISRA rules.

* rule 16.1 (variadic functions): the argument-processing loop depends on the
  caller-supplied count; without a documented argument range no bound exists.
* rule 16.2 (recursion): the recursive variant needs a recursion-depth
  annotation and its bound grows with the annotated depth, while the iterative
  rewrite is bounded automatically and more tightly.
"""

from __future__ import annotations

import pytest

from repro.errors import CFGError, UnboundedLoopError
from repro.guidelines import GuidelineChecker
from repro.workloads import functions_suite
from helpers import analyze, print_comparison


def test_rule_16_1_variadic_needs_argument_annotation():
    variadic = functions_suite.variadic_program()
    fixed = functions_suite.fixed_arity_program()

    with pytest.raises(UnboundedLoopError):
        analyze(variadic, entry="sum_values")
    annotated = analyze(
        variadic, entry="sum_values", annotations=functions_suite.variadic_annotations()
    )
    automatic = analyze(fixed, entry="sum_values")
    findings = GuidelineChecker().check_source(functions_suite.VARIADIC_SOURCE)
    print_comparison(
        "MISRA rule 16.1: variadic argument processing",
        [
            ("variadic, no annotation", "no bound (data-dependent loop)"),
            ("variadic + argument-count range", f"{annotated.wcet_cycles} cycles"),
            ("fixed-arity rewrite (automatic)", f"{automatic.wcet_cycles} cycles"),
            ("rule 16.1 findings", findings.count("16.1")),
        ],
    )
    assert findings.count("16.1") == 1
    assert annotated.wcet_cycles >= automatic.wcet_cycles


def test_rule_16_2_recursion_needs_depth_annotation():
    recursive = functions_suite.recursive_program()
    iterative = functions_suite.iterative_program()

    with pytest.raises(CFGError):
        analyze(recursive)
    shallow = analyze(recursive, annotations=functions_suite.recursion_annotations())
    deep = analyze(
        recursive, annotations=functions_suite.recursion_annotations(depth=32)
    )
    automatic = analyze(iterative)
    findings = GuidelineChecker().check_source(functions_suite.RECURSIVE_SOURCE)
    print_comparison(
        "MISRA rule 16.2: recursion",
        [
            ("recursive, no annotation", "no bound (recursion cycle)"),
            (f"recursive, depth {functions_suite.RECURSION_DEPTH + 1}", f"{shallow.wcet_cycles} cycles"),
            ("recursive, depth 32 (over-documented)", f"{deep.wcet_cycles} cycles"),
            ("iterative rewrite (automatic)", f"{automatic.wcet_cycles} cycles"),
            ("rule 16.2 findings", findings.count("16.2")),
        ],
    )
    assert findings.count("16.2") == 1
    # Shape: the recursive bound exceeds the iterative one and grows with depth.
    assert shallow.wcet_cycles > automatic.wcet_cycles
    assert deep.wcet_cycles > shallow.wcet_cycles


def test_benchmark_recursive_analysis(benchmark):
    program = functions_suite.recursive_program()
    annotations = functions_suite.recursion_annotations()
    benchmark(lambda: analyze(program, annotations=annotations))
