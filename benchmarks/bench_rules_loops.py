"""Experiments R13.4 and R13.6 — loop-related MISRA rules.

For each rule the bench compares a violating variant with a conforming
rewrite:

* rule 13.4 (float loop condition): the violating variant cannot be bounded
  automatically and needs a manual loop-bound annotation; the conforming
  variant is analysed fully automatically.
* rule 13.6 (counter modified in the body): same pattern.

The "shape" reproduced from the paper: violating the rule turns an
automatically analysable loop into one that needs designer annotations
(a tier-one challenge), while the conforming variant needs none.
"""

from __future__ import annotations

import pytest

from repro.errors import UnboundedLoopError
from repro.guidelines import GuidelineChecker
from repro.workloads import loops_suite
from helpers import analyze, print_comparison


@pytest.mark.parametrize("rule", ["13.4", "13.6"])
def test_violation_defeats_automatic_loop_bounds(rule):
    violating = loops_suite.violating_program(rule)
    conforming = loops_suite.conforming_program(rule)

    # The conforming variant is analysable without any annotation.
    conforming_report = analyze(conforming)

    # The violating variant is not...
    with pytest.raises(UnboundedLoopError):
        analyze(violating)

    # ... until the designer supplies the loop bound manually.
    annotated_report = analyze(violating, annotations=loops_suite.manual_annotations(rule))

    # The source-level checker attributes the problem to the right rule.
    findings = GuidelineChecker().check_source(loops_suite.VARIANTS[rule][0])
    assert findings.count(rule) >= 1
    assert GuidelineChecker().check_source(loops_suite.VARIANTS[rule][1]).count(rule) == 0

    print_comparison(
        f"MISRA rule {rule}: WCET analysability",
        [
            ("conforming variant (no annotations)", f"{conforming_report.wcet_cycles} cycles"),
            ("violating variant (no annotations)", "no bound (unbounded loop)"),
            ("violating variant + manual annotation", f"{annotated_report.wcet_cycles} cycles"),
            ("rule findings on violating variant", findings.count(rule)),
        ],
    )
    assert annotated_report.wcet_cycles > 0


@pytest.mark.parametrize("rule", ["13.4", "13.6"])
def test_benchmark_conforming_analysis(benchmark, rule):
    program = loops_suite.conforming_program(rule)
    benchmark(lambda: analyze(program))
