"""Experiment R20.4 — dynamic heap allocation vs. static allocation.

The same buffer-processing task once on a ``malloc``'d buffer and once on a
static array, analysed on the cached LEON2-like configuration.  Shape from the
paper: heap pointers are statically unknown, so every access through them is
charged with the slowest memory module and destroys data-cache knowledge — the
heap variant's WCET bound is substantially larger, while the *observed*
execution times of the two variants are nearly identical (the penalty is pure
analysis pessimism).
"""

from __future__ import annotations

import pytest

from repro.guidelines import GuidelineChecker
from repro.hardware import TraceTimer, leon2_like
from repro.ir import Interpreter
from repro.workloads import pointer_suite
from helpers import analyze, print_comparison


def test_heap_allocation_inflates_the_bound_but_not_the_execution():
    processor = leon2_like()
    heap_program = pointer_suite.heap_program()
    static_program = pointer_suite.static_program()

    heap_report = analyze(heap_program, processor=processor)
    static_report = analyze(static_program, processor=processor)

    heap_run = Interpreter(heap_program).run()
    static_run = Interpreter(static_program).run()
    heap_observed = TraceTimer(processor, heap_program).time(heap_run.trace)
    static_observed = TraceTimer(processor, static_program).time(static_run.trace)

    findings = GuidelineChecker().check_source(pointer_suite.HEAP_BUFFER_SOURCE)

    print_comparison(
        "MISRA rule 20.4: heap vs. static buffer (LEON2-like)",
        [
            ("heap buffer WCET bound", f"{heap_report.wcet_cycles} cycles"),
            ("static buffer WCET bound", f"{static_report.wcet_cycles} cycles"),
            ("bound inflation", f"{heap_report.wcet_cycles / static_report.wcet_cycles:.2f}x"),
            ("heap buffer observed", f"{heap_observed.cycles} cycles"),
            ("static buffer observed", f"{static_observed.cycles} cycles"),
            ("unknown-address accesses (heap)", heap_report.entry_report.unknown_accesses),
            ("rule 20.4 findings", findings.count("20.4")),
        ],
    )

    # Soundness on both variants.
    assert static_report.wcet_cycles >= static_observed.cycles
    assert heap_report.wcet_cycles >= heap_observed.cycles
    # Shape: the heap variant's *bound* is clearly worse (> 1.3x here) although
    # the functional work is the same.
    assert heap_report.wcet_cycles > 1.3 * static_report.wcet_cycles
    assert findings.count("20.4") >= 1
    assert heap_report.entry_report.unknown_accesses > 0


def test_benchmark_heap_analysis(benchmark):
    processor = leon2_like()
    program = pointer_suite.heap_program()
    benchmark(lambda: analyze(program, processor=processor))
