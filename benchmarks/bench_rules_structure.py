"""Experiments R14.1, R14.4, R14.5 and R20.7 — control-structure MISRA rules.

* rule 14.1: leaving practically-dead code in the binary inflates the WCET
  bound (the analysis has to include the path); removing it — or documenting
  it as infeasible — recovers the tight bound.
* rule 14.4: a goto jumping into a loop creates an irreducible loop that the
  analysis can only handle with a manual bound; the structured rewrite is
  bounded automatically.
* rule 14.5: using ``continue`` has *no* impact — the paper's push-back — so
  the violating and conforming variants get identical bounds.
* rule 20.7: setjmp/longjmp usage is flagged as a tier-one finding by the
  checker (the binary-level substitute stubs keep the program analysable, so
  the experiment is reported at the source level).
"""

from __future__ import annotations

import pytest

from repro.annotations import AnnotationSet
from repro.errors import UnboundedLoopError
from repro.guidelines import ChallengeTier, GuidelineChecker
from repro.workloads import loops_suite, pointer_suite
from helpers import analyze, print_comparison


def test_rule_14_1_dead_code_inflates_the_bound():
    violating = loops_suite.violating_program("14.1")
    conforming = loops_suite.conforming_program("14.1")
    inflated = analyze(violating)
    tight = analyze(conforming)
    documented = analyze(
        violating,
        annotations=AnnotationSet().add_infeasible(
            "main", "debug_path", reason="debug dumps are disabled in production"
        ),
    )
    print_comparison(
        "MISRA rule 14.1: dead code and the WCET bound",
        [
            ("with practically-dead debug code", f"{inflated.wcet_cycles} cycles"),
            ("dead code removed (conforming)", f"{tight.wcet_cycles} cycles"),
            ("dead code kept but annotated infeasible", f"{documented.wcet_cycles} cycles"),
        ],
    )
    assert inflated.wcet_cycles > tight.wcet_cycles
    assert documented.wcet_cycles < inflated.wcet_cycles


def test_rule_14_4_goto_requires_manual_bound():
    violating = loops_suite.violating_program("14.4")
    conforming = loops_suite.conforming_program("14.4")
    with pytest.raises(UnboundedLoopError):
        analyze(violating)
    annotated = analyze(violating, annotations=loops_suite.manual_annotations("14.4"))
    automatic = analyze(conforming)
    report = analyze(violating, annotations=loops_suite.manual_annotations("14.4"))
    irreducible_loops = [l for l in report.loop_reports() if l.irreducible]
    print_comparison(
        "MISRA rule 14.4: goto-made irreducible loop",
        [
            ("goto variant, no annotation", "no bound (irreducible loop)"),
            ("goto variant + manual bound", f"{annotated.wcet_cycles} cycles"),
            ("structured rewrite (automatic)", f"{automatic.wcet_cycles} cycles"),
            ("irreducible loops detected", len(irreducible_loops)),
        ],
    )
    assert irreducible_loops, "the goto variant must expose an irreducible loop"


def test_rule_14_5_continue_is_harmless():
    violating = analyze(loops_suite.violating_program("14.5"))
    conforming = analyze(loops_suite.conforming_program("14.5"))
    findings = GuidelineChecker().check_source(loops_suite.VARIANTS["14.5"][0])
    continue_findings = findings.findings_for("14.5")
    print_comparison(
        "MISRA rule 14.5: continue vs. if/else rewrite",
        [
            ("loop using continue", f"{violating.wcet_cycles} cycles"),
            ("if/else rewrite", f"{conforming.wcet_cycles} cycles"),
            ("WCET impact attributed by checker",
             continue_findings[0].challenge.value if continue_findings else "n/a"),
        ],
    )
    # The paper's point: identical analysability and identical bounds.
    assert violating.wcet_cycles == conforming.wcet_cycles
    assert all(f.challenge is ChallengeTier.NONE for f in continue_findings)


def test_rule_20_7_setjmp_flagged_as_tier_one():
    findings = GuidelineChecker().check_source(pointer_suite.LONGJMP_SOURCE)
    structured = GuidelineChecker().check_source(pointer_suite.STRUCTURED_ERROR_SOURCE)
    jump_findings = findings.findings_for("20.7")
    print_comparison(
        "MISRA rule 20.7: setjmp/longjmp",
        [
            ("setjmp/longjmp findings", len(jump_findings)),
            ("findings on structured rewrite", structured.count("20.7")),
        ],
    )
    assert len(jump_findings) == 2
    assert all(f.challenge is ChallengeTier.TIER_ONE for f in jump_findings)
    assert structured.count("20.7") == 0


def test_benchmark_structure_rule_analysis(benchmark):
    program = loops_suite.conforming_program("14.5")
    benchmark(lambda: analyze(program))
