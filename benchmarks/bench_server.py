#!/usr/bin/env python
"""Load-generator benchmark for the analysis server (``repro.server``).

Drives N concurrent clients over the macro analysis workload (the
flight-control task in every operating mode on two processor models, plus
the message handler on both — the same request family
``repro.benchmarks.run_analysis_half`` measures) against a live HTTP server,
and compares the throughput with the *sequential one-shot CLI* baseline —
one ``python -m repro analyze`` subprocess per request, each paying the full
import + program-build + cache-warmup cost the server amortises.

The measurement is appended to ``BENCH_perf.json`` under ``server_entries``
(its own list: the macro trajectory's regression anchors must stay on macro
entries — see :func:`repro.benchmarks.append_server_record`) together with
the dedup/cache counters from ``/healthz`` and the pinned flight-control
identity, which is asserted on **every** returned result: load never changes
a bound.

Run::

    PYTHONPATH=src python benchmarks/bench_server.py --clients 8 --repeats 4
    PYTHONPATH=src python benchmarks/bench_server.py --check --no-append
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.api import AnalysisRequest  # noqa: E402
from repro.benchmarks import append_server_record, machine_fingerprint  # noqa: E402
from repro.server import AnalysisServer, ProjectSpec, ServerClient  # noqa: E402

#: The pinned flight-control per-mode (WCET, BCET) identity (ISSUE 5 /
#: tests/test_api.py): every served result must reproduce it exactly.
FLIGHT_CONTROL_PINS = {None: (2514, 87), "air": (2514, 284), "ground": (161, 87)}


def macro_requests():
    """The unique (spec, request, key) triples of the macro analysis half."""
    triples = []
    for processor in ("simple", "leon2"):
        triples.append(
            (
                ProjectSpec(workload="flight-control", processor=processor),
                AnalysisRequest(all_modes=True, label=f"flight_control/{processor}"),
                f"flight_control/{processor}",
            )
        )
        triples.append(
            (
                ProjectSpec(workload="message-handler", processor=processor),
                AnalysisRequest(label=f"message_handler/{processor}"),
                f"message_handler/{processor}",
            )
        )
    return triples


# --------------------------------------------------------------------------- #
# Baseline: sequential one-shot CLI invocations
# --------------------------------------------------------------------------- #
def run_cli_baseline(invocations) -> dict:
    """Run each macro request as its own ``python -m repro analyze`` process."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    started = time.perf_counter()
    for spec, request, _ in invocations:
        argv = [
            sys.executable, "-m", "repro", "analyze",
            "--workload", spec.workload,
            "--processor", spec.processor,
            "--no-cache", "--json",
        ]
        if request.all_modes:
            argv.append("--all-modes")
        completed = subprocess.run(
            argv, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"baseline CLI invocation failed: {' '.join(argv)}\n"
                f"{completed.stderr.decode(errors='replace')}"
            )
    seconds = time.perf_counter() - started
    return {
        "invocations": len(invocations),
        "seconds": round(seconds, 4),
        "throughput_rps": round(len(invocations) / seconds, 4),
    }


# --------------------------------------------------------------------------- #
# Server side: N concurrent clients
# --------------------------------------------------------------------------- #
def result_bounds(result) -> dict:
    return {
        mode or "all": (report.wcet_cycles, report.bcet_cycles)
        for mode, report in result.reports.items()
    }


def assert_identity(result, key: str, observed: dict, lock) -> None:
    """Pin the simple-scalar flight-control bounds; for every request family,
    require all repeats (across clients, workers and cache states) to agree."""
    bounds = result_bounds(result)
    if key == "flight_control/simple":
        pins = {
            mode or "all": values for mode, values in FLIGHT_CONTROL_PINS.items()
        }
        if bounds != pins:
            raise AssertionError(
                f"flight-control identity drift under load: {bounds} != {pins}"
            )
    with lock:
        previous = observed.setdefault(key, bounds)
    if previous != bounds:
        raise AssertionError(
            f"{key}: repeats disagree under load: {bounds} != {previous}"
        )


def run_server_load(url: str, work_items, clients: int) -> dict:
    """Fan ``work_items`` over ``clients`` threads; assert every identity."""
    queue = list(enumerate(work_items))
    lock = threading.Lock()
    failures = []
    observed: dict = {}

    def client_loop():
        client = ServerClient(url, timeout=600)
        while True:
            with lock:
                if not queue:
                    return
                index, (spec, request, key) = queue.pop(0)
            try:
                result = client.analyze(
                    spec,
                    AnalysisRequest(
                        all_modes=request.all_modes,
                        mode=request.mode,
                        label=f"{request.label}#{index}",
                    ),
                )
                assert_identity(result, key, observed, lock)
            except Exception as exc:  # noqa: BLE001 - collected and re-raised
                with lock:
                    failures.append(f"request {index}: {type(exc).__name__}: {exc}")
                return

    threads = [threading.Thread(target=client_loop) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    if failures:
        raise AssertionError("server load failures:\n  " + "\n  ".join(failures))
    return {
        "requests": len(work_items),
        "clients": clients,
        "seconds": round(seconds, 4),
        "throughput_rps": round(len(work_items) / seconds, 4),
        "observed_bounds": {key: dict(value) for key, value in observed.items()},
    }


# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="server load benchmark vs one-shot CLI baseline"
    )
    parser.add_argument("--clients", type=int, default=8, help="concurrent clients")
    parser.add_argument(
        "--repeats", type=int, default=4,
        help="times each unique macro request is submitted (dedup/cache food)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, help="server worker processes"
    )
    parser.add_argument("--label", default="local server run", help="entry label")
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_perf.json"),
        help="trajectory file to append to",
    )
    parser.add_argument(
        "--no-append", action="store_true", help="measure only, do not append"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 unless server throughput >= --min-speedup x the CLI baseline",
    )
    parser.add_argument("--min-speedup", type=float, default=2.0)
    args = parser.parse_args(argv)

    unique = macro_requests()
    work_items = [triple for _ in range(args.repeats) for triple in unique]

    print(
        f"server load benchmark: {len(work_items)} requests "
        f"({len(unique)} unique x {args.repeats}), {args.clients} clients, "
        f"{args.jobs} server worker(s)"
    )

    print(f"baseline: {len(unique)} sequential one-shot CLI invocations...")
    baseline = run_cli_baseline(unique)
    print(
        f"  {baseline['seconds']:.2f}s total, "
        f"{baseline['throughput_rps']:.2f} requests/s"
    )

    with tempfile.TemporaryDirectory(prefix="repro-server-bench-") as cache_dir:
        with AnalysisServer(port=0, jobs=args.jobs, cache_dir=cache_dir) as server:
            load = run_server_load(server.url, work_items, args.clients)
            stats = server.stats()
    observed = load.pop("observed_bounds")
    print(
        f"server:   {load['seconds']:.2f}s total, "
        f"{load['throughput_rps']:.2f} requests/s "
        f"(dedup {stats.dedup_hits}/{stats.submitted} submissions, "
        f"{stats.executed} executions)"
    )

    speedup = load["throughput_rps"] / baseline["throughput_rps"]
    print(f"speedup over one-shot CLI: {speedup:.2f}x")

    tier2 = stats.cache.get("tier2_hits", 0), stats.cache.get("tier2_misses", 0)
    tier1 = stats.cache.get("tier1_hits", 0), stats.cache.get("tier1_misses", 0)
    print(
        f"summary cache: tier1 {tier1[0]}/{sum(tier1)} hits, "
        f"tier2 {tier2[0]}/{sum(tier2)} hits, {stats.cache.get('puts', 0)} puts"
    )

    entry = {
        "label": args.label,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "machine": machine_fingerprint(),
        "workers": args.jobs,
        "clients": args.clients,
        "requests": load["requests"],
        "unique_requests": len(unique),
        "seconds": load["seconds"],
        "throughput_rps": load["throughput_rps"],
        "baseline_cli": baseline,
        "speedup": round(speedup, 3),
        "dedup": {
            "submitted": stats.submitted,
            "dedup_hits": stats.dedup_hits,
            "executed": stats.executed,
        },
        "cache": dict(stats.cache),
        "identity": {
            key: {mode: list(bounds) for mode, bounds in per_mode.items()}
            for key, per_mode in sorted(observed.items())
        },
    }
    if not args.no_append:
        append_server_record(args.output, entry)
        print(f"appended server entry {args.label!r} to {args.output}")
    else:
        print(json.dumps(entry, indent=2))

    if args.check and speedup < args.min_speedup:
        print(
            f"FAILED: server throughput is only {speedup:.2f}x the one-shot "
            f"CLI baseline (required: {args.min_speedup:.1f}x)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
