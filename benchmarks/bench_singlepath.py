"""Experiment S-singlepath — the single-path transformation (Section 2).

The paper argues against the WCET-oriented single-path programming style of
Puschner/Kirner on conventional processors: turning both alternatives of a
branch into predicated code means every iteration fetches (and pays for) both
paths, so the *worst case* gets worse even though the execution time becomes
input independent.

The bench analyses a branchy kernel and its predicated single-path version:

* WCET(single-path) > WCET(branchy)  — the paper's claim;
* the single-path variant's observed time is (nearly) input independent,
  while the branchy variant's observed time varies with the data;
* both variants compute identical results.
"""

from __future__ import annotations

import pytest

from repro.hardware import TraceTimer, simple_scalar
from repro.ir import Interpreter
from repro.workloads import arithmetic_suite
from helpers import analyze, print_comparison

ALL_POSITIVE = [5, 3, 9, 1, 7, 2, 8, 4]
ALL_NEGATIVE = [-5, -3, -9, -1, -7, -2, -8, -4]
MIXED = [5, -3, 9, -1, 7, -2, 8, -4]


def _observed(program, values, processor):
    run = Interpreter(program).run(initial_data={"values": values})
    return TraceTimer(processor, program).time(run.trace).cycles, run.return_value


def test_single_path_transformation_impairs_the_worst_case():
    processor = simple_scalar()
    branchy = arithmetic_suite.branchy_kernel()
    single_path = arithmetic_suite.single_path_kernel()

    branchy_report = analyze(branchy, processor=processor)
    single_report = analyze(single_path, processor=processor)

    branchy_times = {}
    single_times = {}
    for name, values in (("positive", ALL_POSITIVE), ("negative", ALL_NEGATIVE), ("mixed", MIXED)):
        branchy_times[name], branchy_result = _observed(branchy, values, processor)
        single_times[name], single_result = _observed(single_path, values, processor)
        assert branchy_result == single_result, "the transformation must preserve results"

    print_comparison(
        "Single-path transformation (simple scalar processor)",
        [
            ("branchy kernel WCET bound", f"{branchy_report.wcet_cycles} cycles"),
            ("single-path kernel WCET bound", f"{single_report.wcet_cycles} cycles"),
            ("WCET overhead", f"{(single_report.wcet_cycles / branchy_report.wcet_cycles - 1) * 100:.0f}%"),
            ("branchy observed (pos/neg/mixed)",
             f"{branchy_times['positive']}/{branchy_times['negative']}/{branchy_times['mixed']}"),
            ("single-path observed (pos/neg/mixed)",
             f"{single_times['positive']}/{single_times['negative']}/{single_times['mixed']}"),
        ],
    )

    # The paper's claim: the single-path variant's WCET is worse.
    assert single_report.wcet_cycles > branchy_report.wcet_cycles
    # The single-path variant's execution time is input independent ...
    assert len(set(single_times.values())) == 1
    # ... while the branchy variant's execution time varies with the input.
    assert len(set(branchy_times.values())) > 1
    # Soundness for both.
    assert branchy_report.wcet_cycles >= max(branchy_times.values())
    assert single_report.wcet_cycles >= max(single_times.values())


def test_benchmark_single_path_analysis(benchmark):
    program = arithmetic_suite.single_path_kernel()
    benchmark(lambda: analyze(program))
