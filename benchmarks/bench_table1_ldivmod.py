"""Experiment T1 — Table 1: iteration-count histogram of lDivMod.

Regenerates the paper's only quantitative table: the distribution of the
number of approximation iterations of the software division routine over a
large set of random 32-bit operand pairs, plus the prose claims around it
("1 iteration in more than 99.8 %", "0, 1 or 2 in more than 99.999 %",
rare inputs two orders of magnitude above the typical count).
"""

from __future__ import annotations

import pytest

from repro.arith import (
    PAPER_TABLE1_ROWS,
    RESTORING_ITERATIONS,
    ldivmod,
    restoring_divmod,
    sample_iteration_histogram,
)
from helpers import table1_samples


@pytest.fixture(scope="module")
def histogram():
    return sample_iteration_histogram(samples=table1_samples())


def test_table1_shape_matches_paper(histogram):
    """The qualitative claims of Table 1 hold for the reimplementation."""
    print()
    print(histogram.format_table())
    print()
    print("Paper's Table 1 (10^8 samples) for comparison:")
    for label, frequency in PAPER_TABLE1_ROWS:
        print(f"  {label:<12s} {frequency:>12d}")

    # > 99.8 % of inputs take exactly one iteration.
    assert histogram.fraction_exactly(1) > 0.998
    # counts 0, 1 or 2 cover > 99.99 % (paper: > 99.999 % at 10^8 samples).
    assert histogram.fraction_at_most(2) > 0.9999
    # the tail exists but is thin: fewer than 0.01 % of samples above 3.
    above_three = 1.0 - histogram.fraction_at_most(3)
    assert above_three < 1e-4


def test_worst_case_is_orders_of_magnitude_above_typical(histogram):
    """Directed worst-case inputs dwarf the typical iteration count."""
    worst = ldivmod(0xFFFF_FFFF, 3).iterations
    print(f"\ndirected worst case ldivmod(0xffffffff, 3): {worst} iterations")
    assert worst >= 100 * 1  # >= two orders of magnitude above the typical 1


def test_restoring_division_iteration_count_is_constant():
    """The predictable baseline always runs exactly 32 iterations."""
    for dividend, divisor in ((0, 1), (123456, 7), (0xFFFFFFFF, 3), (5, 0xFFFFFFFF)):
        assert restoring_divmod(dividend, divisor).iterations == RESTORING_ITERATIONS


def test_benchmark_ldivmod_sampling(benchmark):
    """Micro-benchmark of the sampling harness itself (per 10k samples)."""
    benchmark(lambda: sample_iteration_histogram(samples=10_000))
