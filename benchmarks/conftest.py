"""Make the shared benchmark helpers importable as a plain module."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
