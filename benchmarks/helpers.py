"""Shared helpers for the benchmark harness.

Every benchmark prints the paper-style rows/series it regenerates (so running
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation section)
and asserts the qualitative *shape* of the result — who wins, by roughly what
factor — rather than absolute cycle numbers.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.annotations import AnnotationSet
from repro.hardware.processor import ProcessorConfig, leon2_like, simple_scalar
from repro.ir.program import Program
from repro.wcet import AnalysisOptions, WCETAnalyzer
from repro.wcet.report import WCETReport


def analyze(
    program: Program,
    processor: Optional[ProcessorConfig] = None,
    annotations: Optional[AnnotationSet] = None,
    entry: Optional[str] = None,
    mode: Optional[str] = None,
    error_scenario: Optional[str] = None,
    options: Optional[AnalysisOptions] = None,
) -> WCETReport:
    """Run the WCET analyzer with sensible benchmark defaults."""
    analyzer = WCETAnalyzer(
        program,
        processor or simple_scalar(),
        annotations=annotations,
        options=options,
    )
    return analyzer.analyze(entry=entry, mode=mode, error_scenario=error_scenario)


def table1_samples(default: int = 200_000) -> int:
    """Sample count for the Table 1 reproduction (override with REPRO_T1_SAMPLES)."""
    return int(os.environ.get("REPRO_T1_SAMPLES", default))


def print_comparison(title: str, rows) -> None:
    """Print a small two-column comparison table."""
    print()
    print(title)
    print("-" * len(title))
    width = max(len(str(label)) for label, _ in rows)
    for label, value in rows:
        print(f"  {label:<{width}s} : {value}")
