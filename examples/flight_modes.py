#!/usr/bin/env python3
"""Operating modes (paper Section 4.3): per-mode WCET bounds of a flight task.

The flight-control workload has a ground branch and an air branch guarded by a
mode flag set elsewhere in the system.  Without design-level information the
analyzer must assume either branch can run; with the documented operating
modes it produces one — much tighter — bound per mode.

One facade request with ``all_modes=True`` analyses the mode-unaware case plus
every declared mode through the shared mode pipeline.  The same thing from the
shell::

    python -m repro analyze --workload flight-control --processor leon2 --all-modes
"""

from repro.api import AnalysisRequest, AnalysisService, Project


def main() -> None:
    project = Project.from_workload("flight-control", processor="leon2")
    result = AnalysisService(project).analyze(AnalysisRequest(all_modes=True))

    print("Flight-control task: WCET bound per operating mode")
    print("---------------------------------------------------")
    unaware = result.reports[None].wcet_cycles
    for mode, report in result.reports.items():
        label = mode or "(mode unaware)"
        gain = unaware / report.wcet_cycles
        print(f"  {label:<16s} {report.wcet_cycles:>8d} cycles   ({gain:4.1f}x vs. mode-unaware)")

    print()
    print("The mode-unaware bound is dictated by the most expensive mode —")
    print("documenting the modes costs nothing at run time and recovers the")
    print("difference for every cheaper mode.")


if __name__ == "__main__":
    main()
