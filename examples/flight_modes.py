#!/usr/bin/env python3
"""Operating modes (paper Section 4.3): per-mode WCET bounds of a flight task.

The flight-control workload has a ground branch and an air branch guarded by a
mode flag set elsewhere in the system.  Without design-level information the
analyzer must assume either branch can run; with the documented operating
modes it produces one — much tighter — bound per mode.
"""

from repro.hardware import leon2_like
from repro.wcet import WCETAnalyzer
from repro.workloads import flight_control


def main() -> None:
    program = flight_control.program()
    annotations = flight_control.annotations()
    analyzer = WCETAnalyzer(program, leon2_like(), annotations=annotations)

    print("Flight-control task: WCET bound per operating mode")
    print("---------------------------------------------------")
    results = analyzer.analyze_all_modes()
    unaware = results[None].wcet_cycles
    for mode, report in results.items():
        label = mode or "(mode unaware)"
        gain = unaware / report.wcet_cycles
        print(f"  {label:<16s} {report.wcet_cycles:>8d} cycles   ({gain:4.1f}x vs. mode-unaware)")

    print()
    print("The mode-unaware bound is dictated by the most expensive mode —")
    print("documenting the modes costs nothing at run time and recovers the")
    print("difference for every cheaper mode.")


if __name__ == "__main__":
    main()
