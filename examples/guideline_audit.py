#!/usr/bin/env python3
"""MISRA-C predictability audit (paper Section 4.2) of a problematic source file.

Runs the nine-rule checker on a source file that violates most of the rules
the paper discusses, then compiles it and shows what the WCET analyzer can and
cannot do with it — connecting each source-level finding to the analysis
challenge it causes.
"""

from repro.guidelines import GuidelineChecker, assess_predictability
from repro.annotations import AnnotationSet

PROBLEMATIC_SOURCE = """
int samples[32];
int limits[32];
int event_count;

/* rule 16.2: recursion */
int depth_first(int index) {
    if (index >= 32) {
        return 0;
    }
    return samples[index] + depth_first(index + 1);
}

/* rule 16.1: variadic */
int log_event(int code, ...) {
    event_count = event_count + 1;
    return code;
}

int main(void) {
    int i;
    float gain;
    int acc = 0;

    /* rule 13.4: float-controlled loop */
    for (gain = 0.0; gain < 8.0; gain = gain + 0.5) {
        acc = acc + 1;
    }

    /* rule 13.6: counter modified in the body */
    for (i = 0; i < 32; i++) {
        acc = acc + samples[i];
        if (samples[i] > limits[i]) {
            i = i + 2;
        }
    }

    /* rule 20.4: dynamic allocation */
    int *scratch = malloc(64);
    scratch[0] = acc;

    /* rule 14.4: goto; rule 14.1: dead code after it */
    goto finish;
    acc = acc * 2;

finish:
    /* rule 14.5: continue (harmless for the analysis) */
    for (i = 0; i < 8; i++) {
        if (samples[i] == 0) {
            continue;
        }
        acc = acc + log_event(samples[i]);
    }
    return acc + depth_first(0);
}
"""


def main() -> None:
    report = GuidelineChecker().check_source(PROBLEMATIC_SOURCE)
    print(report.format_text())
    print()

    # A designer who cannot rewrite the code must document its behaviour
    # instead — these are the annotations the paper's Section 4.3 recommends.
    annotations = AnnotationSet()
    annotations.add_loop_bound("main", "loop_27", 16, comment="gain sweeps 0.0..8.0 by 0.5")
    annotations.add_loop_bound("main", "loop_32", 32, comment="sample index can only move forward")
    annotations.add_recursion_bound("depth_first", 33)

    assessment = assess_predictability(PROBLEMATIC_SOURCE, annotations=annotations)
    print(assessment.format_text())


if __name__ == "__main__":
    main()
