#!/usr/bin/env python3
"""MISRA-C predictability audit (paper Section 4.2) of a problematic source file.

Runs the nine-rule checker on ``examples/problematic.c`` (a source file that
violates most of the rules the paper discusses), then compiles it and shows
what the WCET analyzer can and cannot do with it — connecting each
source-level finding to the analysis challenge it causes.

The checker run goes through the :mod:`repro.api` facade; the same check from
the shell::

    python -m repro check examples/problematic.c [--json]
"""

import os

from repro.annotations import AnnotationSet
from repro.api import AnalysisService, Project
from repro.guidelines import assess_predictability

PROBLEMATIC_FILE = os.path.join(os.path.dirname(__file__), "problematic.c")


def main() -> None:
    project = Project.from_file(PROBLEMATIC_FILE, cache="off")
    report = AnalysisService(project).check_guidelines()
    print(report.format_text())
    print()

    # A designer who cannot rewrite the code must document its behaviour
    # instead — these are the annotations the paper's Section 4.3 recommends.
    annotations = AnnotationSet()
    annotations.add_loop_bound("main", "loop_30", 16, comment="gain sweeps 0.0..8.0 by 0.5")
    annotations.add_loop_bound("main", "loop_35", 32, comment="sample index can only move forward")
    annotations.add_recursion_bound("depth_first", 33)

    assessment = assess_predictability(project.source, annotations=annotations)
    print(assessment.format_text())


if __name__ == "__main__":
    main()
