/* A deliberately problematic mini-C source: it violates most of the nine
 * MISRA-C:2004 rules the paper's Section 4.2 examines, one per construct.
 * Used by examples/guideline_audit.py and by CI's `python -m repro check`
 * smoke run. */

int samples[32];
int limits[32];
int event_count;

/* rule 16.2: recursion */
int depth_first(int index) {
    if (index >= 32) {
        return 0;
    }
    return samples[index] + depth_first(index + 1);
}

/* rule 16.1: variadic */
int log_event(int code, ...) {
    event_count = event_count + 1;
    return code;
}

int main(void) {
    int i;
    float gain;
    int acc = 0;

    /* rule 13.4: float-controlled loop */
    for (gain = 0.0; gain < 8.0; gain = gain + 0.5) {
        acc = acc + 1;
    }

    /* rule 13.6: counter modified in the body */
    for (i = 0; i < 32; i++) {
        acc = acc + samples[i];
        if (samples[i] > limits[i]) {
            i = i + 2;
        }
    }

    /* rule 20.4: dynamic allocation */
    int *scratch = malloc(64);
    scratch[0] = acc;

    /* rule 14.4: goto; rule 14.1: dead code after it */
    goto finish;
    acc = acc * 2;

finish:
    /* rule 14.5: continue (harmless for the analysis) */
    for (i = 0; i < 8; i++) {
        if (samples[i] == 0) {
            continue;
        }
        acc = acc + log_event(samples[i]);
    }
    return acc + depth_first(0);
}
