#!/usr/bin/env python3
"""Quickstart: compile a mini-C task, bound its WCET, compare with a measurement.

This walks the full Figure 1 pipeline of the paper on a small task:

1. compile mini-C source to the register IR ("the binary"),
2. run the static WCET analyzer (CFG reconstruction, value & loop-bound
   analysis, cache/pipeline analysis, IPET path analysis),
3. execute the program in the interpreter and replay the trace through the
   concrete caches to get an *observed* execution time,
4. check the soundness invariant: BCET bound <= observed <= WCET bound.
"""

from repro.minic import compile_source
from repro.ir import Interpreter
from repro.hardware import TraceTimer, leon2_like
from repro.wcet import WCETAnalyzer

SOURCE = """
int samples[16];

int smooth(int window) {
    int i;
    int acc = 0;
    for (i = 0; i < 16; i++) {
        acc = acc + samples[i];
    }
    if (window > 0) {
        acc = acc / window;
    }
    return acc;
}

int main(void) {
    int i;
    for (i = 0; i < 16; i++) {
        samples[i] = i * 3;
    }
    return smooth(4);
}
"""


def main() -> None:
    # 1. Source -> IR ("binary").
    program = compile_source(SOURCE)
    print(f"compiled {program.instruction_count()} instructions, "
          f"{len(program.functions)} functions")

    # 2. Static WCET analysis on a LEON2-like platform (I+D caches).
    processor = leon2_like()
    report = WCETAnalyzer(program, processor).analyze()
    print(report.format_text())

    # 3. Measurement: concrete execution + trace-driven cache/pipeline replay.
    execution = Interpreter(program).run()
    observed = TraceTimer(processor, program).time(execution.trace)
    print(f"observed execution : {observed.cycles} cycles "
          f"({observed.instructions} instructions, "
          f"i$ hits {observed.icache_stats.hits}/{observed.icache_stats.accesses})")

    # 4. Soundness invariant.
    assert report.bcet_cycles <= observed.cycles <= report.wcet_cycles
    print("soundness check    : BCET <= observed <= WCET  ✓")
    print(f"over-estimation    : {report.wcet_cycles / observed.cycles:.2f}x "
          "(the gap static analysis pays for safety)")


if __name__ == "__main__":
    main()
