#!/usr/bin/env python3
"""Quickstart: compile a mini-C task, bound its WCET, compare with a measurement.

This walks the full Figure 1 pipeline of the paper on a small task, driven
entirely through the :mod:`repro.api` facade:

1. a :class:`~repro.api.Project` bundles the mini-C source with a processor
   model (compilation to the register IR happens lazily inside it),
2. the :class:`~repro.api.AnalysisService` runs the static WCET analyzer
   (CFG reconstruction, value & loop-bound analysis, cache/pipeline analysis,
   IPET path analysis),
3. the interpreter executes the compiled program and the trace is replayed
   through the concrete caches to get an *observed* execution time,
4. the soundness invariant is checked: BCET bound <= observed <= WCET bound.

The same analysis is available from the shell as::

    python -m repro analyze --source task.c --processor leon2 --json
"""

from repro.api import AnalysisService, Project
from repro.hardware import TraceTimer
from repro.ir import Interpreter

SOURCE = """
int samples[16];

int smooth(int window) {
    int i;
    int acc = 0;
    for (i = 0; i < 16; i++) {
        acc = acc + samples[i];
    }
    if (window > 0) {
        acc = acc / window;
    }
    return acc;
}

int main(void) {
    int i;
    for (i = 0; i < 16; i++) {
        samples[i] = i * 3;
    }
    return smooth(4);
}
"""


def main() -> None:
    # 1. One project = sources + processor + cache config; 2. one service call.
    project = Project.from_source(SOURCE, processor="leon2")
    program = project.build()
    print(f"compiled {program.instruction_count()} instructions, "
          f"{len(program.functions)} functions")

    result = AnalysisService(project).analyze()
    report = result.report
    print(report.format_text())

    # 3. Measurement: concrete execution + trace-driven cache/pipeline replay.
    execution = Interpreter(program).run()
    observed = TraceTimer(project.processor, program).time(execution.trace)
    print(f"observed execution : {observed.cycles} cycles "
          f"({observed.instructions} instructions, "
          f"i$ hits {observed.icache_stats.hits}/{observed.icache_stats.accesses})")

    # 4. Soundness invariant.
    assert report.bcet_cycles <= observed.cycles <= report.wcet_cycles
    print("soundness check    : BCET <= observed <= WCET  ✓")
    print(f"over-estimation    : {report.wcet_cycles / observed.cycles:.2f}x "
          "(the gap static analysis pays for safety)")


if __name__ == "__main__":
    main()
