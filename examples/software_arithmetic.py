#!/usr/bin/env python3
"""Software arithmetic study (paper Section 4.3 + Table 1).

Regenerates the lDivMod iteration histogram at a configurable sample count,
shows the directed worst cases, and contrasts the WCET bounds of the
estimate-and-correct division with the fixed-iteration restoring division on
the HCS12X-like (cache-less) platform the original routine targets.

Both analyses go through the :mod:`repro.api` facade; the workload catalog
supplies the programs, their annotations and their entry points, so no
program-construction boilerplate is needed here.  From the shell::

    python -m repro analyze --workload ldivmod --processor hcs12x
"""

import sys

from repro.api import AnalysisService, Project
from repro.arith import (
    RESTORING_ITERATIONS,
    ldivmod,
    sample_iteration_histogram,
)


def main() -> None:
    samples = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000

    histogram = sample_iteration_histogram(samples=samples)
    print(histogram.format_table())
    print()

    worst = ldivmod(0xFFFFFFFF, 3)
    print(f"directed worst case ldivmod(0xffffffff, 3): {worst.iterations} iterations "
          f"(vs. {RESTORING_ITERATIONS} fixed iterations of restoring division)")
    print()

    ldivmod_report = AnalysisService(
        Project.from_workload("ldivmod", processor="hcs12x")
    ).analyze().report
    restoring_report = AnalysisService(
        Project.from_workload("restoring-division", processor="hcs12x")
    ).analyze().report

    print("Static WCET bounds on the HCS12X-like platform:")
    print(f"  ldivmod (needs worst-case annotation) : {ldivmod_report.wcet_cycles:>10d} cycles")
    print(f"  restoring division (automatic)        : {restoring_report.wcet_cycles:>10d} cycles")
    print(f"  ratio                                  : "
          f"{ldivmod_report.wcet_cycles / restoring_report.wcet_cycles:10.0f}x")
    print()
    print("The average-case-optimised routine is faster in almost every run,")
    print("but a static analysis that knows nothing about the operands has to")
    print("assume the rare worst case every time it is called.")


if __name__ == "__main__":
    main()
