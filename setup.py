"""Setup shim.

The offline environment has no ``wheel`` package, so PEP 660 editable installs
(``pip install -e .``) cannot build; this shim lets ``python setup.py develop``
(or ``pip install -e . --no-build-isolation`` on machines with wheel) work.

An installed package also gets a ``repro`` console script equivalent to the
``python -m repro`` unified CLI (see :mod:`repro.api.cli`).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={"console_scripts": ["repro = repro.api.cli:main"]},
)
