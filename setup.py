"""Setup shim.

The offline environment has no ``wheel`` package, so PEP 660 editable installs
(``pip install -e .``) cannot build; this shim lets ``python setup.py develop``
(or ``pip install -e . --no-build-isolation`` on machines with wheel) work.
"""

from setuptools import setup

setup()
