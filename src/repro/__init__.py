"""repro — reproduction of "Software Structure and WCET Predictability" (PPES 2011).

The package provides a complete, self-contained static WCET analysis stack and
the surrounding tooling the paper's discussion is built on:

* :mod:`repro.api` — the unified facade: Project/AnalysisService, serialisable
  reports, and the single ``python -m repro`` command line.
* :mod:`repro.server` — the persistent analysis service: job queue with
  content-addressed dedup, warm worker pool, HTTP/JSON front end and typed
  client (``python -m repro serve`` / ``repro analyze --remote``).
* :mod:`repro.ir` — register-level IR ("the binary"), assembler, interpreter.
* :mod:`repro.cfg` — control-flow reconstruction, loops, call graph.
* :mod:`repro.analysis` — abstract-interpretation value & loop-bound analyses.
* :mod:`repro.hardware` — memory map, caches, pipeline timing model.
* :mod:`repro.wcet` — IPET path analysis and the top-level WCET analyzer.
* :mod:`repro.minic` — mini-C frontend and code generator.
* :mod:`repro.guidelines` — MISRA-C:2004 predictability rule checker.
* :mod:`repro.annotations` — design-level information (modes, flow facts, ...).
* :mod:`repro.arith` — software arithmetic (lDivMod study, soft-float, fixed-point).
* :mod:`repro.workloads` — workload programs used by examples and benchmarks.
"""

__version__ = "1.0.0"

__all__ = [
    "api",
    "server",
    "ir",
    "cfg",
    "analysis",
    "hardware",
    "wcet",
    "minic",
    "guidelines",
    "annotations",
    "arith",
    "workloads",
    "errors",
]
