"""Loop/value analysis — the abstract-interpretation phase of Figure 1.

This package provides:

* numeric abstract domains (:mod:`repro.analysis.domains`): intervals with
  widening, congruences (stride information);
* a generic worklist fixpoint solver (:mod:`repro.analysis.fixpoint`);
* the register/memory value analysis (:mod:`repro.analysis.value`) that
  computes abstract register contents, abstract addresses of every memory
  access and branch-condition refinements;
* the data-flow based loop bound analysis (:mod:`repro.analysis.loopbounds`),
  modelled on the counter-loop detection the paper relies on (rules 13.4 and
  13.6 discussion);
* unreachable-code detection (:mod:`repro.analysis.reachability`, rule 14.1);
* classic liveness analysis (:mod:`repro.analysis.liveness`).
"""

from repro.analysis.domains.interval import Interval
from repro.analysis.domains.congruence import Congruence
from repro.analysis.domains.memstate import AbstractValue, AbstractMemory, AbstractState
from repro.analysis.value import ValueAnalysis, ValueAnalysisResult
from repro.analysis.loopbounds import LoopBound, LoopBoundAnalysis, LoopBoundResult
from repro.analysis.reachability import ReachabilityResult, find_unreachable_code
from repro.analysis.liveness import LivenessResult, compute_liveness

__all__ = [
    "Interval",
    "Congruence",
    "AbstractValue",
    "AbstractMemory",
    "AbstractState",
    "ValueAnalysis",
    "ValueAnalysisResult",
    "LoopBound",
    "LoopBoundAnalysis",
    "LoopBoundResult",
    "ReachabilityResult",
    "find_unreachable_code",
    "LivenessResult",
    "compute_liveness",
]
