"""Abstract domains used by the value and loop-bound analyses."""

from repro.analysis.domains.interval import Interval
from repro.analysis.domains.congruence import Congruence
from repro.analysis.domains.memstate import AbstractValue, AbstractMemory, AbstractState

__all__ = [
    "Interval",
    "Congruence",
    "AbstractValue",
    "AbstractMemory",
    "AbstractState",
]
