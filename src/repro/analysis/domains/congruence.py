"""Congruence (stride) abstract domain.

Values are described as ``offset + modulus * Z`` — e.g. a loop counter stepping
by 4 from 8 is ``8 + 4Z``.  The domain complements the interval domain: the
loop-bound analysis uses stride information to tighten iteration counts of
loops whose counters step by more than one, and the cache analysis uses it to
reason about the addresses touched by array traversals.

``modulus == 0`` denotes a constant (only ``offset``); ``modulus == 1`` with
``offset == 0`` is top (all integers).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Optional


@dataclass(frozen=True)
class Congruence:
    """The congruence class ``offset + modulus * Z`` (or bottom)."""

    modulus: int = 1
    offset: int = 0
    is_bottom: bool = False

    def __post_init__(self) -> None:
        if self.is_bottom:
            return
        modulus = abs(self.modulus)
        offset = self.offset % modulus if modulus else self.offset
        object.__setattr__(self, "modulus", modulus)
        object.__setattr__(self, "offset", offset)

    # ------------------------------------------------------------------ #
    @staticmethod
    def top() -> "Congruence":
        return Congruence(1, 0)

    @staticmethod
    def bottom() -> "Congruence":
        return Congruence(0, 0, is_bottom=True)

    @staticmethod
    def const(value: int) -> "Congruence":
        return Congruence(0, value)

    @property
    def is_top(self) -> bool:
        return not self.is_bottom and self.modulus == 1

    @property
    def is_constant(self) -> bool:
        return not self.is_bottom and self.modulus == 0

    @property
    def constant_value(self) -> Optional[int]:
        return self.offset if self.is_constant else None

    def contains(self, value: int) -> bool:
        if self.is_bottom:
            return False
        if self.modulus == 0:
            return value == self.offset
        return (value - self.offset) % self.modulus == 0

    # ------------------------------------------------------------------ #
    # Lattice
    # ------------------------------------------------------------------ #
    def join(self, other: "Congruence") -> "Congruence":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        if self.is_constant and other.is_constant:
            if self.offset == other.offset:
                return self
            return Congruence(abs(self.offset - other.offset), self.offset)
        modulus = gcd(gcd(self.modulus, other.modulus), abs(self.offset - other.offset))
        if modulus == 0:
            return Congruence.const(self.offset)
        return Congruence(modulus, self.offset)

    def meet(self, other: "Congruence") -> "Congruence":
        if self.is_bottom or other.is_bottom:
            return Congruence.bottom()
        if self.is_top:
            return other
        if other.is_top:
            return self
        if self.is_constant:
            return self if other.contains(self.offset) else Congruence.bottom()
        if other.is_constant:
            return other if self.contains(other.offset) else Congruence.bottom()
        # General meet via CRT when compatible.
        g = gcd(self.modulus, other.modulus)
        if (self.offset - other.offset) % g != 0:
            return Congruence.bottom()
        lcm = self.modulus // g * other.modulus
        # Find a common representative by scanning one congruence class.
        for k in range(other.modulus // g):
            candidate = self.offset + k * self.modulus
            if other.contains(candidate):
                return Congruence(lcm, candidate)
        return Congruence.bottom()

    def includes(self, other: "Congruence") -> bool:
        """True if every concrete value of ``other`` is contained in ``self``."""
        if other.is_bottom:
            return True
        if self.is_bottom:
            return False
        if other.is_constant:
            return self.contains(other.offset)
        if self.is_constant:
            return False
        return other.modulus % self.modulus == 0 and self.contains(other.offset)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def add(self, other: "Congruence") -> "Congruence":
        if self.is_bottom or other.is_bottom:
            return Congruence.bottom()
        return Congruence(gcd(self.modulus, other.modulus), self.offset + other.offset)

    def neg(self) -> "Congruence":
        if self.is_bottom:
            return self
        return Congruence(self.modulus, -self.offset)

    def sub(self, other: "Congruence") -> "Congruence":
        return self.add(other.neg())

    def mul(self, other: "Congruence") -> "Congruence":
        if self.is_bottom or other.is_bottom:
            return Congruence.bottom()
        if self.is_constant and other.is_constant:
            return Congruence.const(self.offset * other.offset)
        if self.is_constant:
            return Congruence(other.modulus * abs(self.offset), other.offset * self.offset)
        if other.is_constant:
            return Congruence(self.modulus * abs(other.offset), self.offset * other.offset)
        modulus = gcd(
            self.modulus * other.modulus,
            gcd(self.modulus * other.offset, other.modulus * self.offset),
        )
        return Congruence(modulus, self.offset * other.offset)

    def shift_left(self, amount: "Congruence") -> "Congruence":
        if self.is_bottom or amount.is_bottom:
            return Congruence.bottom()
        if amount.is_constant and 0 <= amount.offset <= 31:
            return self.mul(Congruence.const(1 << amount.offset))
        return Congruence.top()

    # ------------------------------------------------------------------ #
    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥"
        if self.is_constant:
            return str(self.offset)
        return f"{self.offset} + {self.modulus}Z"
