"""Interval abstract domain.

The classic integer interval domain ``[lo, hi]`` with the operations needed by
the value analysis: arithmetic transfer functions, lattice join/meet, widening
(to the 32-bit bounds) and condition-based refinement.  ``None`` bounds denote
-∞ / +∞; the domain is deliberately unbounded internally and is clamped to the
32-bit range only by :meth:`Interval.clamp32`, so tests can check arithmetic
precision independently of machine-width effects.

The paper's rule 13.4 discussion ("loop analyzers work well with integer
arithmetic but do not cope with floating point values") is reflected one level
up: floating-point producing instructions map to :meth:`Interval.top`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

#: Smallest / largest signed 32-bit values (used for widening and clamping).
INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1
UINT32_MAX = 2**32 - 1


def _wrap_signed32(value: int) -> int:
    """Interpret a 32-bit pattern as the signed value the machine stores.

    Constant folding in the transfer functions must agree with the concrete
    interpreter, whose registers hold signed two's-complement words — e.g.
    ``-4 ^ 0`` is ``-4``, not ``4294967292``.
    """
    value &= UINT32_MAX
    return value - 0x1_0000_0000 if value > INT32_MAX else value


@dataclass(frozen=True, slots=True)
class Interval:
    """A (possibly unbounded) integer interval ``[lo, hi]``.

    ``lo is None`` means -∞ and ``hi is None`` means +∞.  The empty interval
    (bottom) is represented by the singleton :meth:`bottom` with the
    ``is_bottom`` flag set.
    """

    lo: Optional[int] = None
    hi: Optional[int] = None
    is_bottom: bool = False

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    # The constructors below hand out *interned* instances for the values the
    # value analysis produces constantly: top, bottom, small constants and a
    # few tiny ranges (the comparison results).  Interval is frozen, so a
    # shared instance is indistinguishable from a fresh one except by ``is`` —
    # which is exactly the point: lattice operations and AbstractState
    # comparisons gain identity fast paths, and the per-transfer allocation
    # churn of `Interval.const` drops to a dict lookup.
    @staticmethod
    def top() -> "Interval":
        return _TOP

    @staticmethod
    def bottom() -> "Interval":
        return _BOTTOM

    @staticmethod
    def const(value: int) -> "Interval":
        cached = _CONST_POOL.get(value)
        if cached is not None:
            return cached
        return Interval(value, value)

    @staticmethod
    def range(lo: Optional[int], hi: Optional[int]) -> "Interval":
        if lo is not None and hi is not None and lo > hi:
            return _BOTTOM
        if lo == hi and lo is not None:
            cached = _CONST_POOL.get(lo)
            if cached is not None:
                return cached
        return Interval(lo, hi)

    @staticmethod
    def of(values: Iterable[int]) -> "Interval":
        values = list(values)
        if not values:
            return Interval.bottom()
        return Interval(min(values), max(values))

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    @property
    def is_top(self) -> bool:
        return not self.is_bottom and self.lo is None and self.hi is None

    @property
    def is_constant(self) -> bool:
        return (
            not self.is_bottom
            and self.lo is not None
            and self.hi is not None
            and self.lo == self.hi
        )

    @property
    def constant_value(self) -> Optional[int]:
        return self.lo if self.is_constant else None

    @property
    def is_finite(self) -> bool:
        return not self.is_bottom and self.lo is not None and self.hi is not None

    def contains(self, value: int) -> bool:
        if self.is_bottom:
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def includes(self, other: "Interval") -> bool:
        """True if ``other`` ⊆ ``self``."""
        if other.is_bottom:
            return True
        if self.is_bottom:
            return False
        lo_ok = self.lo is None or (other.lo is not None and other.lo >= self.lo)
        hi_ok = self.hi is None or (other.hi is not None and other.hi <= self.hi)
        return lo_ok and hi_ok

    def width(self) -> Optional[int]:
        """Number of integers in the interval (``None`` if unbounded)."""
        if self.is_bottom:
            return 0
        if self.lo is None or self.hi is None:
            return None
        return self.hi - self.lo + 1

    def is_nonnegative(self) -> bool:
        return not self.is_bottom and self.lo is not None and self.lo >= 0

    # ------------------------------------------------------------------ #
    # Lattice operations
    # ------------------------------------------------------------------ #
    def join(self, other: "Interval") -> "Interval":
        if self is other:
            return self
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        # Return an operand when it already equals the result: downstream
        # identity fast paths (AbstractValue.join, state comparisons) then
        # short-circuit without comparing bounds again.
        if lo == self.lo and hi == self.hi:
            return self
        if lo == other.lo and hi == other.hi:
            return other
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        if self is other:
            return self
        if self.is_bottom or other.is_bottom:
            return _BOTTOM
        if self.lo is None:
            lo = other.lo
        elif other.lo is None:
            lo = self.lo
        else:
            lo = max(self.lo, other.lo)
        if self.hi is None:
            hi = other.hi
        elif other.hi is None:
            hi = self.hi
        else:
            hi = min(self.hi, other.hi)
        if lo is not None and hi is not None and lo > hi:
            return _BOTTOM
        if lo == self.lo and hi == self.hi:
            return self
        if lo == other.lo and hi == other.hi:
            return other
        return Interval(lo, hi)

    def widen(self, other: "Interval") -> "Interval":
        """Standard widening: bounds that grew jump to ±∞ (clamped later)."""
        if self is other:
            return self
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        lo = self.lo
        if other.lo is None or (lo is not None and other.lo < lo):
            lo = None
        hi = self.hi
        if other.hi is None or (hi is not None and other.hi > hi):
            hi = None
        if lo is self.lo and hi is self.hi:
            return self
        return Interval(lo, hi)

    def narrow(self, other: "Interval") -> "Interval":
        """Standard narrowing: infinite bounds are refined from ``other``."""
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        lo = other.lo if self.lo is None else self.lo
        hi = other.hi if self.hi is None else self.hi
        return Interval.range(lo, hi)

    def clamp32(self) -> "Interval":
        """Clamp unbounded ends to the signed 32-bit range."""
        if self.is_bottom:
            return self
        lo = INT32_MIN if self.lo is None else max(self.lo, INT32_MIN)
        hi = INT32_MAX if self.hi is None else min(self.hi, INT32_MAX)
        return Interval.range(lo, hi)

    # ------------------------------------------------------------------ #
    # Arithmetic transfer functions
    # ------------------------------------------------------------------ #
    def add(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return Interval(lo, hi)

    def neg(self) -> "Interval":
        if self.is_bottom:
            return self
        lo = None if self.hi is None else -self.hi
        hi = None if self.lo is None else -self.lo
        return Interval(lo, hi)

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.neg())

    def mul(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if self.is_constant and other.is_constant:
            return Interval.const(self.lo * other.lo)  # type: ignore[operator]
        # General case: if any bound is infinite the product is unbounded
        # unless the other operand is exactly zero.
        if self.is_constant and self.lo == 0:
            return Interval.const(0)
        if other.is_constant and other.lo == 0:
            return Interval.const(0)
        if not (self.is_finite and other.is_finite):
            return Interval.top()
        products = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        return Interval(min(products), max(products))

    def divide(self, other: "Interval") -> "Interval":
        """C-style truncating signed division (conservative)."""
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if other.is_constant and other.lo == 0:
            # Division by a guaranteed zero traps at run time; the abstract
            # result is bottom (no normal successor value).
            return Interval.bottom()
        if not (self.is_finite and other.is_finite):
            return Interval.top()
        candidates = []
        divisors = [d for d in (other.lo, other.hi, -1, 1) if d is not None and d != 0]
        divisors = [d for d in divisors if other.contains(d)]
        if not divisors:
            return Interval.top()
        for a in (self.lo, self.hi):
            for b in divisors:
                quotient = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    quotient = -quotient
                candidates.append(quotient)
        # When the divisor interval crosses +-1 the quotient can be as large as
        # |a|, which the candidate set covers because 1/-1 were included.
        return Interval(min(candidates), max(candidates))

    def remainder(self, other: "Interval") -> "Interval":
        """Conservative modulo: result magnitude below the divisor magnitude."""
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if not other.is_finite:
            return Interval.top()
        max_div = max(abs(other.lo), abs(other.hi))
        if max_div == 0:
            return Interval.bottom()
        if self.is_nonnegative():
            return Interval(0, max_div - 1)
        return Interval(-(max_div - 1), max_div - 1)

    def shift_left(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if other.is_constant and self.is_finite and 0 <= other.lo <= 31:
            lo = self.lo << other.lo
            hi = self.hi << other.lo
            # The machine wraps to signed 32 bits; an interval that leaves
            # that range no longer covers the wrapped concrete value.
            if INT32_MIN <= lo and hi <= INT32_MAX:
                return Interval(lo, hi)
        return Interval.top()

    def shift_right_logical(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if (
            other.is_constant
            and self.is_finite
            and self.is_nonnegative()
            and 0 <= other.lo <= 31
        ):
            return Interval(self.lo >> other.lo, self.hi >> other.lo)
        if other.is_constant and 0 <= other.lo <= 31 and other.lo > 0:
            # Logical shift of a possibly-negative 32-bit value is non-negative.
            return Interval(0, UINT32_MAX >> other.lo)
        return Interval.top()

    def shift_right_arith(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if other.is_constant and self.is_finite and 0 <= other.lo <= 31:
            return Interval(self.lo >> other.lo, self.hi >> other.lo)
        return Interval.top()

    def bit_and(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if self.is_constant and other.is_constant:
            return Interval.const(
                _wrap_signed32((self.lo & 0xFFFFFFFF) & (other.lo & 0xFFFFFFFF))
            )
        # x & mask is within [0, mask] for non-negative mask.
        if other.is_constant and other.lo >= 0:
            return Interval(0, other.lo)
        if self.is_constant and self.lo >= 0:
            return Interval(0, self.lo)
        if self.is_nonnegative() and other.is_nonnegative() and self.is_finite and other.is_finite:
            return Interval(0, min(self.hi, other.hi))
        return Interval.top()

    def bit_or(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if self.is_constant and other.is_constant:
            return Interval.const(
                _wrap_signed32((self.lo & 0xFFFFFFFF) | (other.lo & 0xFFFFFFFF))
            )
        if (
            self.is_finite
            and other.is_finite
            and self.is_nonnegative()
            and other.is_nonnegative()
        ):
            # The OR of two non-negative values is bounded by the next power of
            # two above the larger maximum, minus one (and OR cannot set the
            # sign bit when both operands are non-negative 32-bit values).
            bound = max(self.hi, other.hi)
            result_max = (1 << bound.bit_length()) - 1 if bound > 0 else 0
            return Interval(0, min(result_max, INT32_MAX))
        return Interval.top()

    def bit_xor(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if self.is_constant and other.is_constant:
            return Interval.const(
                _wrap_signed32((self.lo & 0xFFFFFFFF) ^ (other.lo & 0xFFFFFFFF))
            )
        return self.bit_or(other)

    def bit_not(self) -> "Interval":
        if self.is_bottom:
            return self
        return self.neg().sub(Interval.const(1))

    # ------------------------------------------------------------------ #
    # Comparison transfer functions (producing {0}, {1} or {0,1})
    # ------------------------------------------------------------------ #
    def compare_lt(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return _BOTTOM
        if self.hi is not None and other.lo is not None and self.hi < other.lo:
            return Interval.const(1)
        if self.lo is not None and other.hi is not None and self.lo >= other.hi:
            return Interval.const(0)
        return _ZERO_ONE

    def compare_le(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return _BOTTOM
        if self.hi is not None and other.lo is not None and self.hi <= other.lo:
            return Interval.const(1)
        if self.lo is not None and other.hi is not None and self.lo > other.hi:
            return Interval.const(0)
        return _ZERO_ONE

    def compare_eq(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return _BOTTOM
        if self.is_constant and other.is_constant:
            return Interval.const(int(self.lo == other.lo))
        if self.meet(other).is_bottom:
            return Interval.const(0)
        return _ZERO_ONE

    # ------------------------------------------------------------------ #
    # Refinement (used for branch conditions)
    # ------------------------------------------------------------------ #
    def refine_lt(self, other: "Interval") -> "Interval":
        """Refine ``self`` assuming ``self < other`` holds."""
        if other.hi is None:
            return self
        return self.meet(Interval(None, other.hi - 1))

    def refine_le(self, other: "Interval") -> "Interval":
        if other.hi is None:
            return self
        return self.meet(Interval(None, other.hi))

    def refine_gt(self, other: "Interval") -> "Interval":
        if other.lo is None:
            return self
        return self.meet(Interval(other.lo + 1, None))

    def refine_ge(self, other: "Interval") -> "Interval":
        if other.lo is None:
            return self
        return self.meet(Interval(other.lo, None))

    def refine_eq(self, other: "Interval") -> "Interval":
        return self.meet(other)

    def refine_ne(self, other: "Interval") -> "Interval":
        if other.is_constant and self.is_finite:
            if self.lo == other.lo:
                return Interval.range(self.lo + 1, self.hi)
            if self.hi == other.lo:
                return Interval.range(self.lo, self.hi - 1)
        return self

    # ------------------------------------------------------------------ #
    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


#: Interned instances handed out by the constructors above.  The pool covers
#: the constants the analysis materialises constantly (immediates, loop steps,
#: comparison results, byte offsets); anything outside it allocates as before.
_TOP = Interval(None, None)
_BOTTOM = Interval(0, 0, is_bottom=True)
_ZERO_ONE = Interval(0, 1)
_CONST_POOL = {value: Interval(value, value) for value in range(-1024, 4097)}
