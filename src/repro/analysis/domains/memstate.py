"""Abstract machine state: register values, memory cells and branch facts.

The value analysis (:mod:`repro.analysis.value`) interprets instructions over
:class:`AbstractState`, which combines

* :class:`AbstractValue` per register — an interval plus the set of symbol
  bases the value may be an address of (data objects, the stack, functions);
* :class:`AbstractMemory` — a finite map of known memory cells addressed by
  ``(base symbol, byte offset)``; every cell absent from the map is unknown.
  A store through an unknown pointer *clobbers the whole memory map*, which is
  precisely the precision disaster the paper describes for imprecise memory
  accesses ("any write access to an unknown memory location destroys all known
  information about memory during the value analysis phase");
* predicate facts — which register currently holds the result of which
  comparison, so conditional branches can refine operand intervals on their
  outgoing edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Optional, Tuple, Union

from repro.analysis.domains.interval import Interval
from repro.ir.instructions import Opcode

#: Symbolic base representing the incoming stack pointer of the analysed function.
STACK_BASE = "__sp__"


@dataclass(frozen=True, slots=True)
class AbstractValue:
    """Abstract content of a register or memory cell.

    ``interval`` describes the numeric value (or the offset relative to each
    base in ``bases`` when the value is an address).  ``is_float`` marks values
    produced by floating-point instructions: such values carry a top interval,
    which is what makes float-controlled loops unboundable for the analysis
    (MISRA rule 13.4 discussion).
    """

    interval: Interval = field(default_factory=Interval.top)
    bases: FrozenSet[str] = frozenset()
    is_float: bool = False

    # ------------------------------------------------------------------ #
    # Like :class:`~repro.analysis.domains.interval.Interval`, the common
    # values are interned: top/bottom/float are singletons and small constants
    # come from a pool, so repeated reads and constant immediates share one
    # frozen instance and the lattice operations below can answer by identity.
    @staticmethod
    def top() -> "AbstractValue":
        return _TOP_VALUE

    @staticmethod
    def bottom() -> "AbstractValue":
        return _BOTTOM_VALUE

    @staticmethod
    def const(value: int) -> "AbstractValue":
        cached = _CONST_VALUES.get(value)
        if cached is not None:
            return cached
        return AbstractValue(Interval.const(value))

    @staticmethod
    def float_value() -> "AbstractValue":
        return _FLOAT_VALUE

    @staticmethod
    def address(base: str, offset: Interval = None) -> "AbstractValue":  # type: ignore[assignment]
        if offset is None:
            offset = Interval.const(0)
        return AbstractValue(offset, frozenset({base}))

    # ------------------------------------------------------------------ #
    @property
    def is_top(self) -> bool:
        return self.interval.is_top and not self.bases and not self.is_float

    @property
    def is_bottom(self) -> bool:
        return self.interval.is_bottom

    @property
    def is_constant(self) -> bool:
        return not self.bases and not self.is_float and self.interval.is_constant

    @property
    def constant_value(self) -> Optional[int]:
        return self.interval.constant_value if self.is_constant else None

    @property
    def is_address(self) -> bool:
        return bool(self.bases)

    @property
    def single_base(self) -> Optional[str]:
        if len(self.bases) == 1:
            return next(iter(self.bases))
        return None

    # ------------------------------------------------------------------ #
    # Lattice
    # ------------------------------------------------------------------ #
    def join(self, other: "AbstractValue") -> "AbstractValue":
        if self is other:
            # Copy-on-write states share AbstractValue instances, so joining a
            # value with itself is the norm at join points; both operands are
            # frozen, making the identity answer exact.
            return self
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        interval = self.interval.join(other.interval)
        if other.bases <= self.bases:
            bases = self.bases
        elif self.bases <= other.bases:
            bases = other.bases
        else:
            bases = self.bases | other.bases
        is_float = self.is_float or other.is_float
        # Hand back an operand when it already equals the result, so chains of
        # joins over shared interned values allocate nothing.
        if interval is self.interval and bases is self.bases and is_float == self.is_float:
            return self
        if interval is other.interval and bases is other.bases and is_float == other.is_float:
            return other
        return AbstractValue(interval, bases, is_float)

    def widen(self, other: "AbstractValue") -> "AbstractValue":
        if self is other:
            return self
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        interval = self.interval.widen(other.interval)
        if other.bases <= self.bases:
            bases = self.bases
        elif self.bases <= other.bases:
            bases = other.bases
        else:
            bases = self.bases | other.bases
        is_float = self.is_float or other.is_float
        if interval is self.interval and bases is self.bases and is_float == self.is_float:
            return self
        return AbstractValue(interval, bases, is_float)

    def includes(self, other: "AbstractValue") -> bool:
        if self is other:
            return True
        if other.is_bottom:
            return True
        if self.is_bottom:
            return False
        if other.is_float and not self.is_float:
            return False
        if not other.bases <= self.bases:
            return False
        return self.interval.includes(other.interval)

    # ------------------------------------------------------------------ #
    # Arithmetic (address-aware)
    # ------------------------------------------------------------------ #
    def add(self, other: "AbstractValue") -> "AbstractValue":
        if self.is_float or other.is_float:
            return AbstractValue.float_value()
        return AbstractValue(
            self.interval.add(other.interval), self.bases | other.bases
        )

    def sub(self, other: "AbstractValue") -> "AbstractValue":
        if self.is_float or other.is_float:
            return AbstractValue.float_value()
        if self.bases and other.bases:
            # pointer difference: numeric, no base survives
            return AbstractValue(self.interval.sub(other.interval))
        return AbstractValue(self.interval.sub(other.interval), self.bases)

    def numeric(self, interval: Interval) -> "AbstractValue":
        """Helper: a pure numeric value with the given interval."""
        return AbstractValue(interval)

    def with_interval(self, interval: Interval) -> "AbstractValue":
        return replace(self, interval=interval)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_float:
            return "float⊤"
        text = str(self.interval)
        if self.bases:
            text = "+".join(sorted(self.bases)) + text
        return text


#: Shared top value — AbstractValue is frozen, so one instance serves all
#: "unknown register" reads without a fresh allocation per lookup.
_TOP_VALUE = AbstractValue(Interval.top())
_BOTTOM_VALUE = AbstractValue(Interval.bottom())
_FLOAT_VALUE = AbstractValue(Interval.top(), is_float=True)
#: Pooled small constants (same span as the interval constant pool).
_CONST_VALUES = {value: AbstractValue(Interval.const(value)) for value in range(-1024, 4097)}

#: A predicate fact operand: a register name or an integer constant.
FactOperand = Tuple[str, Union[str, int]]


@dataclass(frozen=True, slots=True)
class PredicateFact:
    """``register := lhs <relation> rhs`` — recorded at compare instructions."""

    relation: Opcode
    lhs: FactOperand
    rhs: FactOperand

    def mentions_register(self, register: str) -> bool:
        return (self.lhs[0] == "reg" and self.lhs[1] == register) or (
            self.rhs[0] == "reg" and self.rhs[1] == register
        )


class AbstractMemory:
    """A finite map of known memory cells; everything else is unknown.

    Cells are addressed by ``(base, offset)`` where ``base`` is a data-object
    name, a function name or :data:`STACK_BASE` and ``offset`` is a byte
    offset that must be a known constant for a strong update.

    The cell map is *copy-on-write*: :meth:`copy` shares it between the
    original and the clone in O(1), and the first mutation of either side
    materialises a private dict.  The value analysis copies the whole state
    on every block transfer, branch split and predicated instruction, but
    mutates memory far more rarely — sharing turns the dominant cost of those
    copies (O(cells) dict duplication) into a pointer assignment.
    """

    __slots__ = ("_cells", "_owned")

    def __init__(self, cells: Optional[Dict[Tuple[str, int], AbstractValue]] = None):
        self._cells: Dict[Tuple[str, int], AbstractValue] = dict(cells or {})
        self._owned = True

    # ------------------------------------------------------------------ #
    def copy(self) -> "AbstractMemory":
        clone = AbstractMemory.__new__(AbstractMemory)
        clone._cells = self._cells
        clone._owned = False
        self._owned = False
        return clone

    def _materialize(self) -> None:
        if not self._owned:
            self._cells = dict(self._cells)
            self._owned = True

    def cells(self) -> Dict[Tuple[str, int], AbstractValue]:
        return dict(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    # ------------------------------------------------------------------ #
    def load(self, base: Optional[str], offset: Optional[int]) -> AbstractValue:
        """Read a cell; unknown base or offset yields top."""
        if base is None or offset is None:
            return AbstractValue.top()
        return self._cells.get((base, offset), AbstractValue.top())

    def store_strong(self, base: str, offset: int, value: AbstractValue) -> None:
        self._materialize()
        self._cells[(base, offset)] = value

    def store_weak(self, base: str, value: AbstractValue) -> None:
        """Weak update: the store may hit any cell of ``base``."""
        keys = [key for key in self._cells if key[0] == base]
        if not keys:
            return
        self._materialize()
        for key in keys:
            self._cells[key] = self._cells[key].join(value)

    def clobber_base(self, base: str) -> None:
        """Forget everything known about cells of ``base``."""
        if not any(key[0] == base for key in self._cells):
            return
        self._cells = {
            key: value for key, value in self._cells.items() if key[0] != base
        }
        self._owned = True

    def clobber_all(self, keep_bases: Iterable[str] = ()) -> None:
        """Forget all cells except those with a base in ``keep_bases``."""
        keep = set(keep_bases)
        if all(key[0] in keep for key in self._cells):
            return
        self._cells = {
            key: value for key, value in self._cells.items() if key[0] in keep
        }
        self._owned = True

    # ------------------------------------------------------------------ #
    @staticmethod
    def _adopt(cells: Dict[Tuple[str, int], AbstractValue]) -> "AbstractMemory":
        """Wrap an already-private cell dict without copying it."""
        memory = AbstractMemory.__new__(AbstractMemory)
        memory._cells = cells
        memory._owned = True
        return memory

    def join(self, other: "AbstractMemory") -> "AbstractMemory":
        if self._cells is other._cells:
            # Shared (copy-on-write) cell map: joining it with itself is the
            # identity; hand out another sharing wrapper.
            return self.copy()
        result: Dict[Tuple[str, int], AbstractValue] = {}
        other_cells = other._cells
        for key, value in self._cells.items():
            if key in other_cells:
                result[key] = value.join(other_cells[key])
        return AbstractMemory._adopt(result)

    def widen(self, other: "AbstractMemory") -> "AbstractMemory":
        result: Dict[Tuple[str, int], AbstractValue] = {}
        other_cells = other._cells
        for key, value in self._cells.items():
            if key in other_cells:
                result[key] = value.widen(other_cells[key])
        return AbstractMemory._adopt(result)

    def includes(self, other: "AbstractMemory") -> bool:
        """True if ``other`` is at least as precise as ``self`` on self's cells."""
        if self._cells is other._cells:
            return True
        for key, value in self._cells.items():
            if key not in other._cells:
                return False
            if not value.includes(other._cells[key]):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractMemory):
            return NotImplemented
        return self._cells == other._cells

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [
            f"{base}+{offset}: {value}"
            for (base, offset), value in sorted(self._cells.items())
        ]
        return "{" + ", ".join(parts) + "}"


class AbstractState:
    """Register file + memory + predicate facts at one program point.

    Like :class:`AbstractMemory`, the register and fact maps are
    copy-on-write: :meth:`copy` is O(1) and the first mutation of either copy
    materialises a private dict.  All mutation goes through the methods below
    — never assign into :attr:`registers`/:attr:`facts` directly.
    """

    __slots__ = ("_registers", "_facts", "memory", "reachable", "_regs_owned", "_facts_owned")

    def __init__(
        self,
        registers: Optional[Dict[str, AbstractValue]] = None,
        memory: Optional[AbstractMemory] = None,
        facts: Optional[Dict[str, PredicateFact]] = None,
        reachable: bool = True,
    ):
        self._registers: Dict[str, AbstractValue] = dict(registers or {})
        self._regs_owned = True
        self.memory: AbstractMemory = memory if memory is not None else AbstractMemory()
        self._facts: Dict[str, PredicateFact] = dict(facts or {})
        self._facts_owned = True
        #: False for the unreachable (bottom) state.
        self.reachable = reachable

    # ------------------------------------------------------------------ #
    @property
    def registers(self) -> Dict[str, AbstractValue]:
        """The register map (read-only: mutate through :meth:`set`)."""
        return self._registers

    @property
    def facts(self) -> Dict[str, PredicateFact]:
        """The predicate-fact map (read-only: mutate through :meth:`set_fact`)."""
        return self._facts

    @staticmethod
    def unreachable() -> "AbstractState":
        return AbstractState(reachable=False)

    def copy(self) -> "AbstractState":
        clone = AbstractState.__new__(AbstractState)
        clone._registers = self._registers
        clone._regs_owned = False
        self._regs_owned = False
        clone._facts = self._facts
        clone._facts_owned = False
        self._facts_owned = False
        clone.memory = self.memory.copy()
        clone.reachable = self.reachable
        return clone

    def _own_registers(self) -> None:
        if not self._regs_owned:
            self._registers = dict(self._registers)
            self._regs_owned = True

    def _own_facts(self) -> None:
        if not self._facts_owned:
            self._facts = dict(self._facts)
            self._facts_owned = True

    # ------------------------------------------------------------------ #
    def get(self, register: str) -> AbstractValue:
        return self._registers.get(register, _TOP_VALUE)

    def set(self, register: str, value: AbstractValue) -> None:
        # Redefining a register kills every predicate fact that mentions it
        # and the fact stored for the register itself.
        self._own_registers()
        self._registers[register] = value
        facts = self._facts
        if facts:
            self._own_facts()
            facts = self._facts
            facts.pop(register, None)
            for holder in list(facts):
                if facts[holder].mentions_register(register):
                    del facts[holder]

    def replace_value(self, register: str, value: AbstractValue) -> None:
        """Overwrite a register *without* killing predicate facts.

        Used by branch refinement, which narrows a register's interval while
        the facts mentioning it remain valid (refinement only shrinks the
        concretisation, it does not redefine the register).
        """
        self._own_registers()
        self._registers[register] = value

    def set_fact(self, register: str, fact: PredicateFact) -> None:
        self._own_facts()
        self._facts[register] = fact

    def havoc_registers(self, registers: Iterable[str]) -> None:
        for register in registers:
            self.set(register, _TOP_VALUE)

    # ------------------------------------------------------------------ #
    # Lattice operations
    # ------------------------------------------------------------------ #
    @staticmethod
    def _adopt(
        registers: Dict[str, AbstractValue],
        memory: AbstractMemory,
        facts: Dict[str, PredicateFact],
    ) -> "AbstractState":
        """Wrap already-private dicts without copying them."""
        state = AbstractState.__new__(AbstractState)
        state._registers = registers
        state._regs_owned = True
        state.memory = memory
        state._facts = facts
        state._facts_owned = True
        state.reachable = True
        return state

    def join(self, other: "AbstractState") -> "AbstractState":
        if not self.reachable:
            return other.copy()
        if not other.reachable:
            return self.copy()
        self_registers = self._registers
        other_registers = other._registers
        registers: Dict[str, AbstractValue] = {}
        if self_registers is other_registers:
            # Copy-on-write copies share the register dict; joining a state
            # with (a copy of) itself reduces to duplicating the mapping.
            registers = dict(self_registers)
        else:
            for name, value in self_registers.items():
                other_value = other_registers.get(name, _TOP_VALUE)
                registers[name] = value.join(other_value)
            for name, value in other_registers.items():
                if name not in self_registers:
                    registers[name] = _TOP_VALUE.join(value)
        other_facts = other._facts
        if self._facts is other_facts:
            facts = dict(self._facts)
        else:
            facts = {
                reg: fact
                for reg, fact in self._facts.items()
                if other_facts.get(reg) == fact
            }
        return AbstractState._adopt(registers, self.memory.join(other.memory), facts)

    @staticmethod
    def join_all(states: Iterable["AbstractState"]) -> "AbstractState":
        """Least upper bound of many states, computed in one pass.

        Equivalent to folding :meth:`join` over ``states`` pairwise, but each
        register, memory cell and fact is visited once instead of once per
        operand pair — this is what callers merging all predecessor
        edge-states of a block should use.
        """
        live = [state for state in states if state.reachable]
        if not live:
            return AbstractState.unreachable()
        first = live[0]
        if len(live) == 1:
            return first.copy()
        rest = live[1:]

        # Registers: visit names in first-seen order (deterministic), joining
        # the value across every operand; absent means top.
        names = list(first._registers)
        seen = set(names)
        for state in rest:
            for name in state._registers:
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        registers: Dict[str, AbstractValue] = {}
        for name in names:
            value = first._registers.get(name, _TOP_VALUE)
            for state in rest:
                value = value.join(state._registers.get(name, _TOP_VALUE))
            registers[name] = value

        # Memory: only cells known in every operand survive.
        cells: Dict[Tuple[str, int], AbstractValue] = {}
        for key, value in first.memory._cells.items():
            known_everywhere = True
            for state in rest:
                other_value = state.memory._cells.get(key)
                if other_value is None:
                    known_everywhere = False
                    break
                value = value.join(other_value)
            if known_everywhere:
                cells[key] = value

        # Facts: kept only when every operand agrees.
        facts = {
            register: fact
            for register, fact in first._facts.items()
            if all(state._facts.get(register) == fact for state in rest)
        }
        return AbstractState._adopt(registers, AbstractMemory._adopt(cells), facts)

    def widen(self, other: "AbstractState") -> "AbstractState":
        if not self.reachable:
            return other.copy()
        if not other.reachable:
            return self.copy()
        self_registers = self._registers
        other_registers = other._registers
        registers: Dict[str, AbstractValue] = {}
        for name, value in self_registers.items():
            other_value = other_registers.get(name, _TOP_VALUE)
            registers[name] = value.widen(other_value)
        for name, value in other_registers.items():
            if name not in self_registers:
                registers[name] = _TOP_VALUE.widen(value)
        other_facts = other._facts
        facts = {
            reg: fact
            for reg, fact in self._facts.items()
            if other_facts.get(reg) == fact
        }
        return AbstractState._adopt(registers, self.memory.widen(other.memory), facts)

    def includes(self, other: "AbstractState") -> bool:
        """True if ``self`` over-approximates ``other`` (fixpoint check)."""
        if not other.reachable:
            return True
        if not self.reachable:
            return False
        if (
            self._registers is other._registers
            and self._facts is other._facts
            and self.memory._cells is other.memory._cells
        ):
            # Copy-on-write copies of one state: trivially equal.
            return True
        for name, value in self._registers.items():
            if not value.includes(other.get(name)):
                # self constrains `name` more than other does -> not an
                # over-approximation
                return False
        # Registers not mentioned in self are top there, always including other.
        if not set(self._facts.items()) <= set(other._facts.items()):
            return False
        return self.memory.includes(other.memory)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if not self.reachable:
            return "<unreachable>"
        regs = ", ".join(
            f"{name}={value}"
            for name, value in sorted(self.registers.items())
            if not value.is_top
        )
        return f"regs[{regs}] mem{self.memory}"
