"""Generic worklist fixpoint solver over control-flow graphs.

The solver is parameterised over the abstract domain through three callbacks
(transfer, join, widen) plus an inclusion check, and is shared by the value
analysis and by the abstract cache analyses.  Widening is applied at the
designated *widening points* (loop headers) once a node has been revisited
``widen_after`` times, which guarantees termination for infinite-height
domains such as intervals.

Scheduling
----------

Pending nodes are kept in a binary heap keyed by their position in a
Bourdoncle-style weak topological order (:mod:`repro.analysis.wto`), so every
pop selects the earliest unstable node in O(log n).  Because inner-loop nodes
precede everything after the loop in the linearization, an unstable inner
component is re-iterated to its local fixpoint before any of its states
propagate outward — the recommended chaotic-iteration strategy for
interval-style domains.  (The seed implementation achieved the same
evaluation *order* by re-sorting the whole worklist on every pop, at
O(n log n) per pop; the heap keeps the order, and therefore all results,
bit-identical while removing the re-sort.)
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Iterable, List, Optional, Set, TypeVar

from repro.errors import AnalysisError
from repro.analysis.wto import WeakTopologicalOrder
from repro.cfg.graph import ENTRY, EXIT, ControlFlowGraph
from repro.obs import metrics as obs_metrics

_M_ITERATIONS = obs_metrics.REGISTRY.counter(
    "repro_fixpoint_iterations_total", "Worklist iterations across fixpoint solves."
)
_M_JOINS = obs_metrics.REGISTRY.counter(
    "repro_fixpoint_joins_total", "Pairwise joins at merge points."
)
_M_WIDENS = obs_metrics.REGISTRY.counter(
    "repro_fixpoint_widens_total", "Widenings applied at loop heads."
)

State = TypeVar("State")


@dataclass
class FixpointResult(Generic[State]):
    """Result of a forward fixpoint computation."""

    #: Abstract state at the entry of each block.
    block_in: Dict[int, State] = field(default_factory=dict)
    #: Abstract state at the exit of each block (per outgoing edge).
    edge_out: Dict[tuple, State] = field(default_factory=dict)
    #: Number of worklist iterations performed.
    iterations: int = 0
    #: Number of pairwise joins performed at merge points.
    joins: int = 0
    #: Number of widenings applied at loop heads.
    widens: int = 0


class ForwardSolver(Generic[State]):
    """Forward worklist solver with widening at selected nodes.

    Parameters
    ----------
    cfg:
        The control-flow graph to solve over.
    transfer:
        ``transfer(block_id, in_state) -> Dict[successor_id, out_state]``:
        computes the state propagated along each outgoing edge (this lets
        clients refine states differently on branch outcomes).
    join:
        Binary least-upper-bound on states.
    widen:
        Widening operator on states (old, new) -> widened.
    includes:
        ``includes(old, new)`` must return True when ``old`` already
        over-approximates ``new`` (fixpoint reached for that node).
    bottom:
        Factory for the unreachable state.
    widening_points:
        Node ids at which widening (rather than join) is applied after
        ``widen_after`` visits — typically the loop headers.  Defaults to the
        WTO component heads when a WTO is supplied.
    wto:
        Precomputed weak topological order used as the scheduling priority;
        computed from the CFG when omitted.
    max_iterations:
        Hard safety limit on total node evaluations.
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        transfer: Callable[[int, State], Dict[int, State]],
        join: Callable[[State, State], State],
        widen: Callable[[State, State], State],
        includes: Callable[[State, State], bool],
        bottom: Callable[[], State],
        widening_points: Optional[Iterable[int]] = None,
        widen_after: int = 2,
        max_iterations: int = 100_000,
        wto: Optional[WeakTopologicalOrder] = None,
    ):
        self.cfg = cfg
        self.transfer = transfer
        self.join = join
        self.widen = widen
        self.includes = includes
        self.bottom = bottom
        self.wto = wto
        if widening_points is None and wto is not None:
            widening_points = wto.heads
        self.widening_points: Set[int] = set(widening_points or ())
        self.widen_after = widen_after
        self.max_iterations = max_iterations

    def solve(self, entry_state: State) -> FixpointResult[State]:
        cfg = self.cfg
        result: FixpointResult[State] = FixpointResult()
        visits: Dict[int, int] = {}

        block_in: Dict[int, State] = {}
        entry_block = cfg.entry_block
        block_in[entry_block] = entry_state

        # Scheduling priority: WTO position (reverse postorder linearization).
        if self.wto is not None:
            position = self.wto.positions
        else:
            position = {
                node: index for index, node in enumerate(cfg.reverse_postorder())
            }
        fallback = len(position)

        # Min-heap of (position, node); `pending` mirrors heap membership so a
        # node is never queued twice.
        heap: List[tuple] = [(position.get(entry_block, fallback), entry_block)]
        pending: Set[int] = {entry_block}

        widening_points = self.widening_points
        widen_after = self.widen_after
        includes = self.includes
        transfer = self.transfer
        edge_out = result.edge_out

        iterations = 0
        joins = 0
        widens = 0
        while heap:
            _, block = heapq.heappop(heap)
            pending.discard(block)

            iterations += 1
            if iterations > self.max_iterations:
                raise AnalysisError(
                    f"fixpoint did not stabilise after {self.max_iterations} "
                    f"iterations in function {cfg.function_name!r}"
                )

            in_state = block_in.get(block)
            if in_state is None:
                continue
            out_states = transfer(block, in_state)

            for successor, out_state in out_states.items():
                edge_out[(block, successor)] = out_state
                if successor == EXIT:
                    continue
                old = block_in.get(successor)
                if old is None:
                    block_in[successor] = out_state
                    changed = True
                else:
                    if includes(old, out_state):
                        changed = False
                    else:
                        visits[successor] = visits.get(successor, 0) + 1
                        if (
                            successor in widening_points
                            and visits[successor] >= widen_after
                        ):
                            new_state = self.widen(old, out_state)
                            widens += 1
                        else:
                            new_state = self.join(old, out_state)
                            joins += 1
                        block_in[successor] = new_state
                        changed = True
                if changed and successor not in pending:
                    heapq.heappush(
                        heap, (position.get(successor, fallback), successor)
                    )
                    pending.add(successor)

        result.block_in = block_in
        result.iterations = iterations
        result.joins = joins
        result.widens = widens
        if iterations:
            _M_ITERATIONS.inc(iterations)
        if joins:
            _M_JOINS.inc(joins)
        if widens:
            _M_WIDENS.inc(widens)
        return result


def solve_backward(
    cfg: ControlFlowGraph,
    transfer: Callable[[int, State], State],
    join: Callable[[State, State], State],
    equal: Callable[[State, State], bool],
    initial: Callable[[], State],
    max_iterations: int = 100_000,
) -> Dict[int, State]:
    """Simple backward fixpoint (used by liveness); returns per-block IN states."""
    block_in: Dict[int, State] = {node: initial() for node in cfg.node_ids()}
    worklist = deque(reversed(cfg.reverse_postorder()))
    in_worklist = set(worklist)
    iterations = 0
    while worklist:
        block = worklist.popleft()
        in_worklist.discard(block)
        iterations += 1
        if iterations > max_iterations:
            raise AnalysisError("backward fixpoint did not stabilise")
        out_state = initial()
        for successor in cfg.successors(block):
            if successor == EXIT:
                continue
            out_state = join(out_state, block_in[successor])
        new_in = transfer(block, out_state)
        if not equal(new_in, block_in[block]):
            block_in[block] = new_in
            for predecessor in cfg.predecessors(block):
                if predecessor != ENTRY and predecessor not in in_worklist:
                    worklist.append(predecessor)
                    in_worklist.add(predecessor)
    return block_in
