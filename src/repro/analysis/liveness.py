"""Backward register liveness analysis.

Liveness is not itself a WCET analysis, but it supports two users in this
reproduction:

* the mini-C code generator's register allocator sanity checks, and
* the guideline/predictability reports, which flag dead stores (values
  computed but never used) as a source of needless analysis work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analysis.fixpoint import solve_backward
from repro.cfg.graph import ControlFlowGraph
from repro.ir.instructions import Instruction


@dataclass
class LivenessResult:
    """Live registers at block boundaries plus dead-store information."""

    function_name: str
    live_in: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    live_out: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: Instructions whose defined register is never used afterwards.
    dead_stores: List[Instruction] = field(default_factory=list)

    def is_live_at_entry(self, block_id: int, register: str) -> bool:
        return register in self.live_in.get(block_id, frozenset())


def _block_use_def(block) -> Tuple[Set[str], Set[str]]:
    uses: Set[str] = set()
    defs: Set[str] = set()
    for instr in block.instructions:
        for register in instr.used_registers():
            if register not in defs:
                uses.add(register)
        defined = instr.defined_register()
        if defined is not None:
            defs.add(defined)
    return uses, defs


def compute_liveness(cfg: ControlFlowGraph) -> LivenessResult:
    """Compute per-block live-in/live-out register sets and dead stores."""
    use_def = {block_id: _block_use_def(cfg.block(block_id)) for block_id in cfg.node_ids()}

    def transfer(block_id: int, out_state: FrozenSet[str]) -> FrozenSet[str]:
        uses, defs = use_def[block_id]
        return frozenset(uses | (set(out_state) - defs))

    live_in = solve_backward(
        cfg,
        transfer=transfer,
        join=lambda a, b: a | b,
        equal=lambda a, b: a == b,
        initial=frozenset,
    )

    result = LivenessResult(function_name=cfg.function_name)
    result.live_in = dict(live_in)
    for block_id in cfg.node_ids():
        out: Set[str] = set()
        for successor in cfg.successors(block_id):
            out |= set(live_in.get(successor, frozenset()))
        result.live_out[block_id] = frozenset(out)

    # Dead stores: walk each block backwards tracking locally-live registers.
    for block_id in cfg.node_ids():
        block = cfg.block(block_id)
        live = set(result.live_out[block_id])
        for instr in reversed(block.instructions):
            defined = instr.defined_register()
            if defined is not None:
                if defined not in live and not instr.is_call and not instr.is_load:
                    result.dead_stores.append(instr)
                live.discard(defined)
            live.update(instr.used_registers())
    return result
