"""Data-flow based loop bound analysis.

Implements the counter-loop detection that state-of-the-art WCET analyzers
rely on (cf. the Cullmann/Martin and Ermedahl et al. approaches the paper
cites): a loop gets an automatic bound when it has

* an exit test comparing a *counter* register against a loop-invariant limit,
* counter updates that are constant-step additions/subtractions executed on
  every iteration, and
* integer (not floating point) arithmetic throughout.

Every way this pattern can break corresponds to a discussion in the paper and
is reported as a distinct :class:`LoopBoundFailure` reason:

============================  ====================================================
reason                        paper reference
============================  ====================================================
``irreducible``               Section 3.2, irreducible loops (goto / rule 14.4)
``float-condition``           MISRA rule 13.4 (float loop conditions)
``complex-update``            MISRA rule 13.6 (counter modified in loop body)
``predicated-update``         single-path transformation discussion (Section 2)
``data-dependent-limit``      Section 4.3, data-dependent algorithms
``unknown-initial-value``     Section 4.3, data-dependent algorithms
``diverging``                 counter moves away from the limit
``no-exit-condition``         no analysable exit test found
``unsigned-range``            unsigned comparison over possibly-negative range
============================  ====================================================

Bounds are expressed as the maximum number of times the loop's *back edges*
can be taken per entry of the loop, which is the quantity the IPET path
analysis constrains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.domains.interval import Interval
from repro.analysis.value import ValueAnalysisResult
from repro.cfg.dominators import DominatorInfo, compute_dominators
from repro.cfg.graph import ControlFlowGraph, EdgeKind
from repro.cfg.loops import Loop, LoopForest
from repro.ir.instructions import Imm, Instruction, Opcode, Reg


@dataclass(frozen=True)
class LoopBound:
    """A derived (or annotated) iteration bound for one loop.

    ``max_back_edges`` bounds how often the loop's back edges may be taken per
    entry into the loop; the loop header therefore executes at most
    ``max_back_edges + 1`` times per entry.
    """

    max_back_edges: int
    source: str = "analysis"
    counter_register: Optional[str] = None
    detail: str = ""

    @property
    def max_header_executions(self) -> int:
        return self.max_back_edges + 1


@dataclass(frozen=True)
class LoopBoundFailure:
    """Explanation of why no automatic bound could be derived for a loop."""

    reason: str
    message: str


@dataclass
class LoopBoundResult:
    """Loop bounds (and failures) for all loops of one function."""

    function_name: str
    bounds: Dict[int, LoopBound] = field(default_factory=dict)
    failures: Dict[int, LoopBoundFailure] = field(default_factory=dict)

    def bound_for(self, header: int) -> Optional[LoopBound]:
        return self.bounds.get(header)

    def failure_for(self, header: int) -> Optional[LoopBoundFailure]:
        return self.failures.get(header)

    @property
    def all_bounded(self) -> bool:
        return not self.failures

    def unbounded_headers(self) -> List[int]:
        return sorted(self.failures)

    def add_annotation(self, header: int, max_back_edges: int, detail: str = "") -> None:
        """Install a designer-supplied bound, overriding an analysis failure."""
        self.bounds[header] = LoopBound(
            max_back_edges=max_back_edges, source="annotation", detail=detail
        )
        self.failures.pop(header, None)


#: Relations in canonical "counter REL limit" form.
_REL_LT, _REL_LE, _REL_GT, _REL_GE, _REL_EQ, _REL_NE = "<", "<=", ">", ">=", "==", "!="

_NEGATION = {
    _REL_LT: _REL_GE,
    _REL_LE: _REL_GT,
    _REL_GT: _REL_LE,
    _REL_GE: _REL_LT,
    _REL_EQ: _REL_NE,
    _REL_NE: _REL_EQ,
}

_SWAP = {
    _REL_LT: _REL_GT,
    _REL_LE: _REL_GE,
    _REL_GT: _REL_LT,
    _REL_GE: _REL_LE,
    _REL_EQ: _REL_EQ,
    _REL_NE: _REL_NE,
}

_SIGNED_RELATIONS = {
    Opcode.SLT: _REL_LT,
    Opcode.SLE: _REL_LE,
    Opcode.SGT: _REL_GT,
    Opcode.SGE: _REL_GE,
    Opcode.SEQ: _REL_EQ,
    Opcode.SNE: _REL_NE,
}

_UNSIGNED_RELATIONS = {
    Opcode.SLTU: _REL_LT,
    Opcode.SGEU: _REL_GE,
}

_FLOAT_COMPARES = {Opcode.FSEQ, Opcode.FSNE, Opcode.FSLT, Opcode.FSLE}


@dataclass
class _CounterUpdate:
    instruction: Instruction
    block: int
    step: int
    predicated: bool


class LoopBoundAnalysis:
    """Derive iteration bounds for all loops of one function."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        loops: LoopForest,
        values: ValueAnalysisResult,
        dominators: Optional[DominatorInfo] = None,
    ):
        self.cfg = cfg
        self.loops = loops
        self.values = values
        self.dominators = dominators or compute_dominators(cfg)

    # ------------------------------------------------------------------ #
    def run(self) -> LoopBoundResult:
        result = LoopBoundResult(function_name=self.cfg.function_name)
        for loop in self.loops.loops:
            header = loop.header
            if loop.irreducible:
                result.failures[header] = LoopBoundFailure(
                    "irreducible",
                    "loop has multiple entry points; no automatic bound is possible "
                    "(manual annotation required, cf. MISRA rules 14.4/16.2/20.7)",
                )
                continue
            outcome = self._bound_loop(loop)
            if isinstance(outcome, LoopBound):
                result.bounds[header] = outcome
            else:
                result.failures[header] = outcome
        return result

    # ------------------------------------------------------------------ #
    def _bound_loop(self, loop: Loop):
        exit_tests = self._exit_tests(loop)
        if not exit_tests:
            return LoopBoundFailure(
                "no-exit-condition",
                "no conditional exit test comparing a register against a limit "
                "was found in the loop",
            )
        failures: List[LoopBoundFailure] = []
        bounds: List[LoopBound] = []
        for block_id, branch, compare, continue_when_true in exit_tests:
            outcome = self._bound_from_test(loop, block_id, branch, compare, continue_when_true)
            if isinstance(outcome, LoopBound):
                bounds.append(outcome)
            else:
                failures.append(outcome)
        if bounds:
            return min(bounds, key=lambda b: b.max_back_edges)
        # Report the most informative failure (prefer specific reasons over
        # the generic missing-exit one).
        priority = {
            "float-condition": 0,
            "complex-update": 1,
            "predicated-update": 2,
            "data-dependent-limit": 3,
            "unknown-initial-value": 4,
            "diverging": 5,
            "unsigned-range": 6,
            "no-exit-condition": 7,
        }
        failures.sort(key=lambda f: priority.get(f.reason, 99))
        return failures[0]

    # ------------------------------------------------------------------ #
    def _exit_tests(
        self, loop: Loop
    ) -> List[Tuple[int, Instruction, Optional[Instruction], bool]]:
        """Find conditional branches in the loop with one successor outside.

        Returns tuples ``(block, branch, compare, continue_when_true)`` where
        ``compare`` is the instruction defining the branch condition (if found
        inside the same block) and ``continue_when_true`` tells whether the
        loop keeps running when the comparison evaluates to true.
        """
        tests = []
        for block_id in sorted(loop.blocks):
            block = self.cfg.block(block_id)
            last = block.last
            if not last.is_conditional_branch:
                continue
            successors = self.cfg.out_edges(block_id)
            inside = [e for e in successors if e.target in loop.blocks]
            outside = [e for e in successors if e.target not in loop.blocks]
            if not inside or not outside:
                continue
            taken_edge = next((e for e in successors if e.kind is EdgeKind.TAKEN), None)
            if taken_edge is None:
                continue
            taken_stays = taken_edge.target in loop.blocks
            # For `bt`: condition true -> take the branch.  The loop continues
            # on the edge that stays inside.
            if last.opcode is Opcode.BT:
                continue_when_true = taken_stays
            else:  # BF: condition false -> take the branch
                continue_when_true = not taken_stays
            condition_reg = last.operands[0]
            compare = self._defining_compare(block, condition_reg)
            tests.append((block_id, last, compare, continue_when_true))
        return tests

    @staticmethod
    def _defining_compare(block, condition_reg) -> Optional[Instruction]:
        for instr in reversed(block.instructions[:-1]):
            if instr.defined_register() == condition_reg.name:
                if instr.is_compare:
                    return instr
                return None
        return None

    # ------------------------------------------------------------------ #
    def _bound_from_test(
        self,
        loop: Loop,
        block_id: int,
        branch: Instruction,
        compare: Optional[Instruction],
        continue_when_true: bool,
    ):
        if compare is None:
            return LoopBoundFailure(
                "no-exit-condition",
                f"the exit branch at {branch.address:#x} is not fed by a "
                "comparison in the same basic block",
            )
        if compare.opcode in _FLOAT_COMPARES:
            return LoopBoundFailure(
                "float-condition",
                f"the loop exit test at {compare.address:#x} compares floating-"
                "point values; interval-based loop analysis cannot bound it "
                "(MISRA rule 13.4)",
            )
        relation = _SIGNED_RELATIONS.get(compare.opcode) or _UNSIGNED_RELATIONS.get(
            compare.opcode
        )
        if relation is None:
            return LoopBoundFailure(
                "no-exit-condition",
                f"unsupported comparison {compare.opcode.value!r} in loop exit test",
            )
        unsigned = compare.opcode in _UNSIGNED_RELATIONS
        if not continue_when_true:
            relation = _NEGATION[relation]

        lhs, rhs = compare.operands
        lhs_updates = self._counter_updates(loop, lhs) if isinstance(lhs, Reg) else None
        rhs_updates = self._counter_updates(loop, rhs) if isinstance(rhs, Reg) else None

        lhs_is_counter = bool(lhs_updates)
        rhs_is_counter = bool(rhs_updates)
        if lhs_is_counter and rhs_is_counter:
            return LoopBoundFailure(
                "complex-update",
                "both comparison operands are modified inside the loop; no "
                "simple counter pattern (MISRA rule 13.6)",
            )
        if not lhs_is_counter and not rhs_is_counter:
            # Neither side changes in the loop: the exit test is loop
            # invariant, so it either exits immediately or never does.
            return LoopBoundFailure(
                "data-dependent-limit",
                "the exit test does not involve any register modified in the "
                "loop; the loop is either not taken or unbounded",
            )
        if rhs_is_counter:
            lhs, rhs = rhs, lhs
            relation = _SWAP[relation]
            updates = rhs_updates
        else:
            updates = lhs_updates
        assert updates is not None
        counter = lhs
        limit = rhs

        # Validate the updates (rule 13.6 / single-path discussion).
        if any(u.step is None for u in updates):
            return LoopBoundFailure(
                "complex-update",
                f"register {counter.name} is modified by a non-constant-step "
                "operation inside the loop (MISRA rule 13.6)",
            )
        if any(u.predicated for u in updates):
            return LoopBoundFailure(
                "predicated-update",
                f"register {counter.name} is only updated under a predicate; "
                "progress towards the loop exit cannot be guaranteed",
            )
        steps = [u.step for u in updates]
        if any(s == 0 for s in steps):
            return LoopBoundFailure(
                "complex-update", f"register {counter.name} has a zero-step update"
            )
        if any((s > 0) != (steps[0] > 0) for s in steps):
            return LoopBoundFailure(
                "complex-update",
                f"register {counter.name} is both incremented and decremented "
                "inside the loop (MISRA rule 13.6)",
            )
        step = min(abs(s) for s in steps) * (1 if steps[0] > 0 else -1)

        # At least one update must execute on every iteration: some update's
        # block has to dominate every latch block.
        latches = loop.latch_blocks()
        if not any(
            all(self.dominators.dominates(u.block, latch) for latch in latches)
            for u in updates
        ):
            return LoopBoundFailure(
                "complex-update",
                f"no update of {counter.name} is executed on every loop "
                "iteration; the counter may stall",
            )

        # The limit must be loop invariant.
        if isinstance(limit, Reg) and self._is_modified_in_loop(loop, limit.name):
            return LoopBoundFailure(
                "data-dependent-limit",
                f"the comparison limit {limit.name} is itself modified inside "
                "the loop",
            )

        init = self._value_at_loop_entry(loop, counter.name)
        limit_interval = self._limit_interval(loop, limit)

        if unsigned and not (init.is_nonnegative() and limit_interval.is_nonnegative()):
            return LoopBoundFailure(
                "unsigned-range",
                "the exit test uses an unsigned comparison but the operands may "
                "be negative when read as signed integers",
            )

        return self._compute_bound(counter.name, relation, step, init, limit_interval)

    # ------------------------------------------------------------------ #
    def _counter_updates(self, loop: Loop, reg: Reg) -> List[_CounterUpdate]:
        updates: List[_CounterUpdate] = []
        for block_id in loop.blocks:
            block = self.cfg.block(block_id)
            for instr in block.instructions:
                if instr.defined_register() != reg.name:
                    continue
                step = self._constant_step(instr, reg.name)
                updates.append(
                    _CounterUpdate(
                        instruction=instr,
                        block=block_id,
                        step=step,
                        predicated=instr.is_predicated,
                    )
                )
        return updates

    @staticmethod
    def _constant_step(instr: Instruction, register: str) -> Optional[int]:
        """Step of ``register += c`` / ``register -= c`` updates, else None."""
        if instr.opcode not in (Opcode.ADD, Opcode.SUB):
            return None
        a, b = instr.operands
        if instr.opcode is Opcode.ADD:
            if isinstance(a, Reg) and a.name == register and isinstance(b, Imm) and isinstance(b.value, int):
                return b.value
            if isinstance(b, Reg) and b.name == register and isinstance(a, Imm) and isinstance(a.value, int):
                return a.value
            return None
        # SUB: only register - constant keeps the counter pattern.
        if isinstance(a, Reg) and a.name == register and isinstance(b, Imm) and isinstance(b.value, int):
            return -b.value
        return None

    def _is_modified_in_loop(self, loop: Loop, register: str) -> bool:
        for block_id in loop.blocks:
            for instr in self.cfg.block(block_id).instructions:
                if instr.defined_register() == register:
                    return True
        return False

    def _loop_entry_edges(self, loop: Loop) -> List[Tuple[int, int]]:
        return [
            (pred, loop.header)
            for pred in self.cfg.predecessors(loop.header)
            if pred not in loop.blocks
        ]

    def _value_at_loop_entry(self, loop: Loop, register: str) -> Interval:
        # One batched join of every entry edge, cached on the value-analysis
        # result; each per-register probe then reads the merged state directly.
        state = self.values.joined_edge_state(tuple(self._loop_entry_edges(loop)))
        if not state.reachable:
            return Interval.bottom()
        value = state.get(register)
        if value.is_float:
            return Interval.top()
        return value.interval

    def _limit_interval(self, loop: Loop, limit) -> Interval:
        if isinstance(limit, Imm) and isinstance(limit.value, int):
            return Interval.const(limit.value)
        if isinstance(limit, Imm):
            return Interval.top()
        assert isinstance(limit, Reg)
        return self._value_at_loop_entry(loop, limit.name)

    # ------------------------------------------------------------------ #
    def _compute_bound(
        self, counter: str, relation: str, step: int, init: Interval, limit: Interval
    ):
        def failure_unknown(what: str) -> LoopBoundFailure:
            return LoopBoundFailure(
                "data-dependent-limit" if what == "limit" else "unknown-initial-value",
                f"the {what} of loop counter {counter} is not statically known "
                f"(init={init}, limit={limit}); the loop is input-data dependent",
            )

        if init.is_bottom:
            # The loop entry is unreachable according to the value analysis.
            return LoopBound(0, counter_register=counter, detail="loop entry unreachable")

        if relation in (_REL_LT, _REL_LE):
            if step < 0:
                return LoopBoundFailure(
                    "diverging",
                    f"loop counter {counter} decreases but the loop continues "
                    f"while it is below the limit; it may never terminate",
                )
            if limit.hi is None:
                return failure_unknown("limit")
            if init.lo is None:
                return failure_unknown("initial value")
            distance = limit.hi - init.lo
            if relation == _REL_LT:
                iterations = _ceil_div(distance, step)
            else:
                iterations = distance // step + 1
            return LoopBound(
                max(0, iterations),
                counter_register=counter,
                detail=f"{counter} from {init} by {step:+} while {relation} {limit}",
            )

        if relation in (_REL_GT, _REL_GE):
            if step > 0:
                return LoopBoundFailure(
                    "diverging",
                    f"loop counter {counter} increases but the loop continues "
                    f"while it is above the limit; it may never terminate",
                )
            if limit.lo is None:
                return failure_unknown("limit")
            if init.hi is None:
                return failure_unknown("initial value")
            distance = init.hi - limit.lo
            if relation == _REL_GT:
                iterations = _ceil_div(distance, -step)
            else:
                iterations = distance // (-step) + 1
            return LoopBound(
                max(0, iterations),
                counter_register=counter,
                detail=f"{counter} from {init} by {step:+} while {relation} {limit}",
            )

        if relation == _REL_NE:
            if not (init.is_constant and limit.is_constant):
                return failure_unknown("limit")
            difference = limit.constant_value - init.constant_value
            if difference % step != 0 or (difference > 0) != (step > 0) and difference != 0:
                return LoopBoundFailure(
                    "diverging",
                    f"loop counter {counter} steps by {step:+} but can skip over "
                    f"the != limit; the loop may wrap around",
                )
            return LoopBound(
                abs(difference // step),
                counter_register=counter,
                detail=f"{counter} from {init} by {step:+} until == {limit}",
            )

        if relation == _REL_EQ:
            # The loop only continues while counter == limit; a non-zero step
            # leaves that value after one iteration.
            return LoopBound(
                1,
                counter_register=counter,
                detail=f"{counter} must stay equal to {limit}; one iteration at most",
            )

        return LoopBoundFailure("no-exit-condition", f"unsupported relation {relation!r}")


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)
