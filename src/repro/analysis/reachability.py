"""Unreachable-code detection (MISRA-C rule 14.1).

Two notions of unreachability are reported:

* *structural*: basic blocks with no path from the function entry in the CFG —
  classic dead code that rule 14.1 requires to be removed;
* *semantic*: blocks that are structurally connected but whose entry state
  never becomes reachable in the value analysis (e.g. guarded by a condition
  that is statically false).  The paper notes that a static analysis
  over-approximates the control flow, so removing such code (or excluding it
  via annotations) removes a source of over-estimation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.value import ValueAnalysisResult
from repro.cfg.graph import ControlFlowGraph


@dataclass
class ReachabilityResult:
    """Unreachable blocks of one function."""

    function_name: str
    structurally_unreachable: List[int] = field(default_factory=list)
    semantically_unreachable: List[int] = field(default_factory=list)
    #: Number of instructions in unreachable blocks (for reporting).
    dead_instruction_count: int = 0

    @property
    def has_unreachable_code(self) -> bool:
        return bool(self.structurally_unreachable or self.semantically_unreachable)

    def all_unreachable(self) -> List[int]:
        return sorted(set(self.structurally_unreachable) | set(self.semantically_unreachable))


def find_unreachable_code(
    cfg: ControlFlowGraph, values: Optional[ValueAnalysisResult] = None
) -> ReachabilityResult:
    """Detect structurally and semantically unreachable blocks of ``cfg``."""
    result = ReachabilityResult(function_name=cfg.function_name)

    reachable: Set[int] = cfg.reachable_from_entry()
    for block_id in cfg.node_ids():
        if block_id not in reachable:
            result.structurally_unreachable.append(block_id)

    if values is not None:
        for block_id in cfg.node_ids():
            if block_id in result.structurally_unreachable:
                continue
            state = values.state_at_block_entry(block_id)
            if not state.reachable:
                result.semantically_unreachable.append(block_id)

    result.structurally_unreachable.sort()
    result.semantically_unreachable.sort()
    result.dead_instruction_count = sum(
        len(cfg.block(block_id)) for block_id in result.all_unreachable()
    )
    return result
