"""Content-addressed function-summary cache (Section 4.3 made structural).

The paper's core observation is that the *same* code is analysed over and
over — per call-site context, per operating mode, per error scenario, per
sweep worker.  This module makes that repetition free: the complete analysis
outcome of one function in one context (its :class:`FunctionSummary`) is
memoised under a key that digests **every input the result depends on**:

* the laid-out program content (:meth:`repro.ir.program.Program.content_digest`
  — instruction stream with addresses, data objects with addresses/initial
  values, entry point),
* the processor configuration (latencies, branch penalty, memory map, cache
  geometry),
* the analysis options,
* the annotation facts visible to the function and its transitive callees
  (plus all control-flow hints),
* the :class:`~repro.wcet.contexts.CallContext`, and
* an engine version stamp (bumped whenever analysis semantics change).

Equal key ⟹ bit-identical result, so serving a summary can never change a
bound — only skip recomputing it.  The cache has two tiers: an in-process
dictionary (shared across ``analyze()`` runs, operating modes and batch
requests inside one process) and an optional on-disk
:class:`~repro.cache.store.SummaryStore` shared across processes and runs.

A summary is a *closure* over the function's analysis subtree: besides the
:class:`~repro.wcet.report.FunctionReport` it records the challenge messages
emitted and the callee contexts registered while the subtree was analysed, so
replaying a hit reconstructs exactly the run state a cold analysis would have
produced (same report set, same challenge lists, same context-cap bookkeeping).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.obs import metrics as obs_metrics

_M_CACHE = obs_metrics.REGISTRY.counter(
    "repro_summary_cache_requests_total",
    "Summary-cache lookups by tier (1 = in-process, 2 = disk) and result.",
    labelnames=("tier", "result"),
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.annotations.registry import AnnotationSet
    from repro.cache.store import SummaryStore
    from repro.cfg.callgraph import CallGraph
    from repro.hardware.processor import ProcessorConfig
    from repro.wcet.contexts import CallContext
    from repro.wcet.report import FunctionReport

#: Bump when analysis semantics change: stale on-disk summaries from an older
#: engine must read as misses, never as results.
ENGINE_VERSION = "3"


def _hexdigest(*parts: str) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:32]


# --------------------------------------------------------------------------- #
# Key derivation
# --------------------------------------------------------------------------- #
def processor_digest(processor: "ProcessorConfig") -> str:
    """Canonical digest of everything timing-relevant in the platform model."""
    latencies = ",".join(
        f"{op.value}={cycles}"
        for op, cycles in sorted(
            processor.op_latencies.items(), key=lambda item: item[0].value
        )
    )
    modules = ";".join(str(module) for module in processor.memory_map)
    return _hexdigest(
        processor.name,
        latencies,
        f"bp={processor.branch_penalty}",
        f"ihit={processor.icache_hit_cycles},dhit={processor.dcache_hit_cycles}",
        f"icache={processor.icache!r}",
        f"dcache={processor.dcache!r}",
        modules,
    )


def options_digest(options) -> str:
    """Digest of the :class:`~repro.wcet.analyzer.AnalysisOptions` knobs."""
    fields = sorted(vars(options).items())
    return _hexdigest(";".join(f"{name}={value!r}" for name, value in fields))


def hints_digest(annotations: "AnnotationSet") -> str:
    hints = annotations.control_flow_hints
    calls = ";".join(
        f"{address:#x}->{targets}"
        for address, targets in sorted(hints.indirect_call_targets.items())
    )
    branches = ";".join(
        f"{address:#x}->{targets}"
        for address, targets in sorted(hints.indirect_branch_targets.items())
    )
    return _hexdigest(calls, branches)


def function_annotation_digest(
    annotations: "AnnotationSet",
    closure: Set[str],
    hints: str,
) -> str:
    """Digest of every annotation fact a function's summary can depend on.

    ``closure`` is the function itself plus its transitive callees: a callee's
    loop bound or argument range changes the caller's callee-cost table, so
    the whole closure's facts are part of the key.  Facts are serialised via
    their dataclass ``repr`` (strings, ints and tuples only — deterministic
    across processes).
    """
    parts: List[str] = [hints]
    for name in sorted(closure):
        parts.append(f"fn {name}")
        parts.append(repr(annotations.loop_bounds_for(name)))
        parts.append(repr(annotations.flow_constraints_for(name)))
        parts.append(repr(annotations.infeasible_for(name)))
        parts.append(repr(annotations.argument_ranges_for(name)))
        parts.append(repr(annotations.memory_regions_for(name)))
        parts.append(repr(annotations.recursion_bound_for(name)))
    return _hexdigest(*parts)


def bucket_digest(
    program_digest: str, processor: "ProcessorConfig", options
) -> str:
    """Bucket key: one on-disk file per (program, platform, options) triple."""
    return _hexdigest(
        ENGINE_VERSION, program_digest, processor_digest(processor), options_digest(options)
    )


def summary_item_key(
    function: str, context: "CallContext", annotation_digest: str
) -> str:
    return _hexdigest(
        function, repr(context.argument_summary), annotation_digest
    )


def callee_closure(callgraph: "CallGraph", function: str) -> Set[str]:
    """The function plus its transitive callees (the summary's input scope)."""
    closure: Set[str] = set()
    frontier = [function]
    while frontier:
        name = frontier.pop()
        if name in closure:
            continue
        closure.add(name)
        frontier.extend(callgraph.callees(name))
    return closure


# --------------------------------------------------------------------------- #
# Summaries and the two-tier cache
# --------------------------------------------------------------------------- #
@dataclass
class FunctionSummary:
    """The complete, replayable outcome of one function-analysis subtree."""

    report: "FunctionReport"
    #: Default-context reports of callees first analysed inside this subtree
    #: (name -> report); replayed into ``run.reports`` on a hit.
    subtree_reports: Dict[str, "FunctionReport"] = field(default_factory=dict)
    #: Callee (context, report) registrations made inside this subtree, in
    #: registration order — replayed so the ``max_contexts_per_function``
    #: bookkeeping sees the same population a cold run would build.
    contexts: Tuple = ()
    #: Challenge messages emitted inside this subtree.
    tier_one: Tuple[str, ...] = ()
    tier_two: Tuple[str, ...] = ()


class SummaryCache:
    """Two-tier lookup: in-process dictionary over an optional on-disk store."""

    def __init__(self, store: Optional["SummaryStore"] = None):
        self.store = store
        self._memory: Dict[Tuple[str, str], FunctionSummary] = {}
        self.tier1_hits = 0
        self.tier1_misses = 0
        self.tier2_hits = 0
        self.tier2_misses = 0
        self.puts = 0

    # ------------------------------------------------------------------ #
    def get(self, bucket: str, item: str) -> Optional[FunctionSummary]:
        summary = self._memory.get((bucket, item))
        if summary is not None:
            self.tier1_hits += 1
            _M_CACHE.inc(tier="1", result="hit")
            return summary
        self.tier1_misses += 1
        _M_CACHE.inc(tier="1", result="miss")
        if self.store is not None:
            summary = self.store.get(bucket, item)
            if summary is not None:
                self.tier2_hits += 1
                _M_CACHE.inc(tier="2", result="hit")
                self._memory[(bucket, item)] = summary
                return summary
            self.tier2_misses += 1
            _M_CACHE.inc(tier="2", result="miss")
        return None

    def put(self, bucket: str, item: str, summary: FunctionSummary) -> None:
        self.puts += 1
        self._memory[(bucket, item)] = summary
        if self.store is not None:
            self.store.put(bucket, item, summary)

    def flush(self) -> None:
        if self.store is not None:
            self.store.flush()

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        stats = {
            "tier1_hits": self.tier1_hits,
            "tier1_misses": self.tier1_misses,
            "tier2_hits": self.tier2_hits,
            "tier2_misses": self.tier2_misses,
            "puts": self.puts,
        }
        if self.store is not None and getattr(self.store, "corruptions", 0):
            # Quarantined bucket files — flows through the per-job stat
            # deltas into the server's /healthz cache block.
            stats["store_corruptions"] = self.store.corruptions
        return stats

    def __len__(self) -> int:
        return len(self._memory)


def merge_stats(total: Dict[str, int], delta: Dict[str, int]) -> Dict[str, int]:
    """Accumulate per-worker/per-analyzer stat dictionaries."""
    for key, value in delta.items():
        total[key] = total.get(key, 0) + value
    return total
