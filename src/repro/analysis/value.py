"""Register/memory value analysis by abstract interpretation.

This is the "Loop/Value Analysis" box of Figure 1: a forward abstract
interpretation of one function over the combined interval/address domain of
:mod:`repro.analysis.domains.memstate`.  Its products feed every later phase:

* abstract register contents and memory cells (loop-bound analysis,
  feasibility of branches),
* the abstract *address* of every load and store (data-cache analysis and
  memory-module classification — the "imprecise memory accesses" discussion of
  Section 4.3),
* per-edge refined states, so that branch conditions exclude impossible paths.

Calls are handled conservatively (caller-saved registers and non-stack memory
are forgotten) because the analysis is intraprocedural; the WCET analyzer
composes per-function results bottom-up over the call graph.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.analysis.domains.interval import Interval
from repro.analysis.domains.memstate import (
    STACK_BASE,
    AbstractMemory,
    AbstractState,
    AbstractValue,
    PredicateFact,
)
from repro.analysis.fixpoint import ForwardSolver
from repro.analysis.wto import compute_wto
from repro.cfg.graph import EXIT, BasicBlock, ControlFlowGraph
from repro.cfg.loops import LoopForest, find_loops
from repro.ir.instructions import (
    CALLER_SAVED_REGISTERS,
    Imm,
    Instruction,
    Label,
    Opcode,
    Reg,
    Sym,
)
from repro.ir.program import Program, STACK_SIZE, STACK_TOP, WORD_SIZE
from repro.obs import metrics as obs_metrics


@dataclass
class AccessInfo:
    """Abstract description of one memory-access instruction.

    ``absolute`` is the interval of byte addresses the access may touch; when
    nothing is known about the pointer it spans the whole address space, which
    forces the timing analysis to assume the slowest memory module and to
    invalidate the abstract data cache — exactly the penalty the paper
    attributes to imprecise memory accesses.
    """

    instruction_address: int
    is_load: bool
    size: int
    bases: FrozenSet[str]
    offset: Interval
    absolute: Interval
    #: True when the pointer value was completely unknown.
    unknown: bool = False

    @property
    def is_precise(self) -> bool:
        return self.absolute.is_constant

    def span(self) -> Optional[int]:
        return self.absolute.width()


@dataclass
class ValueAnalysisResult:
    """Outcome of :class:`ValueAnalysis.run` for one function."""

    function_name: str
    block_in: Dict[int, AbstractState] = field(default_factory=dict)
    edge_out: Dict[Tuple[int, int], AbstractState] = field(default_factory=dict)
    accesses: Dict[int, AccessInfo] = field(default_factory=dict)
    iterations: int = 0
    # Query caches: entry states are immutable once the fixpoint is done, so
    # repeated lookups (loop-bound queries probe one register at a time) reuse
    # one shared unreachable state, one joined state per edge set and one
    # interval per (block, register) instead of rebuilding them per call.
    _unreachable: Optional[AbstractState] = field(
        default=None, init=False, repr=False, compare=False
    )
    _edge_join_cache: Dict[Tuple[Tuple[int, int], ...], AbstractState] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _entry_interval_cache: Dict[Tuple[int, str], Interval] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    def _unreachable_state(self) -> AbstractState:
        state = self._unreachable
        if state is None:
            state = AbstractState.unreachable()
            self._unreachable = state
        return state

    def state_at_block_entry(self, block_id: int) -> AbstractState:
        state = self.block_in.get(block_id)
        if state is None:
            return self._unreachable_state()
        return state

    def edge_state(self, source: int, target: int) -> AbstractState:
        state = self.edge_out.get((source, target))
        if state is None:
            return self._unreachable_state()
        return state

    def joined_edge_state(self, edges: Tuple[Tuple[int, int], ...]) -> AbstractState:
        """The join of the states flowing along ``edges``, in one batched pass.

        Unreachable and missing edges contribute nothing; an empty or fully
        unreachable edge set yields an unreachable state.  The result is
        cached per edge tuple, so per-register queries against the same merge
        point (loop-entry probes) pay for the join once.
        """
        key = tuple(edges)
        cached = self._edge_join_cache.get(key)
        if cached is None:
            states = []
            for edge in key:
                state = self.edge_out.get(edge)
                if state is not None:
                    states.append(state)
            cached = AbstractState.join_all(states)
            self._edge_join_cache[key] = cached
        return cached

    def edge_is_feasible(self, source: int, target: int) -> bool:
        state = self.edge_out.get((source, target))
        return state is not None and state.reachable

    def infeasible_edges(self) -> List[Tuple[int, int]]:
        return [
            edge for edge, state in self.edge_out.items() if not state.reachable
        ]

    def semantically_unreachable_blocks(self) -> List[int]:
        """Blocks whose entry state never became reachable during the analysis."""
        return [
            block
            for block, state in self.block_in.items()
            if not state.reachable
        ]

    def access_for(self, instruction_address: int) -> Optional[AccessInfo]:
        return self.accesses.get(instruction_address)

    def register_interval_at_block_entry(self, block_id: int, register: str) -> Interval:
        key = (block_id, register)
        cached = self._entry_interval_cache.get(key)
        if cached is None:
            cached = self.state_at_block_entry(block_id).get(register).interval
            self._entry_interval_cache[key] = cached
        return cached


#: Names of the two execution engines of the analysis core.
ENGINES = ("fused", "reference")


def default_engine() -> str:
    """Engine used when none is requested: ``$REPRO_ENGINE`` or ``"fused"``.

    ``"fused"`` runs the block-compiled transfer kernels below (plus the
    array-backed simplex rows in :mod:`repro.wcet.simplex`); ``"reference"``
    runs the instruction-at-a-time closures that serve as the bit-identity
    oracle.  Both produce identical results — CI runs the suite under each.
    """
    engine = os.environ.get("REPRO_ENGINE", "").strip() or "fused"
    if engine not in ENGINES:
        raise AnalysisError(
            f"REPRO_ENGINE={engine!r} is not a known engine (expected one of {ENGINES})"
        )
    return engine


#: Compiled per-block transfer kernels, shared process-wide and keyed by
#: (program content digest, function name).  Kernels close over instruction
#: operands and interned abstract constants only — everything program- or
#: run-specific (memory resolution, access recording) is reached through the
#: analysis instance passed at call time — so two ValueAnalysis instances
#: over byte-identical code (different call contexts, different modes, the
#: summary-cache replay path) reuse one compilation.  Each entry is a
#: ``(kernels, run_counts)`` pair: a block is first interpreted through the
#: per-instruction appliers and only compiled into a fused kernel once its
#: program-wide run count crosses ``_KERNEL_JIT_THRESHOLD`` — CPython's
#: ``compile()`` costs ~15µs per generated line, so eagerly compiling blocks
#: that run two or three times is a net loss on one-shot analyses, while hot
#: loop bodies and repeatedly-analysed functions amortise it many times over.
_KERNEL_CACHE: Dict[Tuple[str, str], Tuple[Dict[int, object], Dict[int, int]]] = {}
_KERNEL_CACHE_LIMIT = 4096
_KERNEL_JIT_THRESHOLD = 8

_M_COMPILES = obs_metrics.REGISTRY.counter(
    "repro_kernel_jit_compiles_total",
    "Basic blocks compiled into fused value-analysis kernels.",
)
_M_INTERPRETED = obs_metrics.REGISTRY.counter(
    "repro_kernel_interpreted_blocks_total",
    "Tiered-execution block runs served by the interpreter.",
)

#: Generated-source -> code-object cache.  Blocks with identical instruction
#: shapes (constants are bound by positional name, so only the shape matters)
#: compile once per process; each use still gets its own exec() with its own
#: constant environment.
_CODE_CACHE: Dict[str, object] = {}
_CODE_CACHE_LIMIT = 16384


class ValueAnalysis:
    """Abstract interpretation of one function.

    Parameters
    ----------
    program:
        The laid-out program (for symbol addresses and data objects).
    cfg:
        The function's control-flow graph.
    loops:
        Loop forest (for widening points); computed if omitted.
    initial_registers:
        Abstract values of registers at function entry (e.g. argument ranges
        supplied by an annotation); unspecified registers start as top.
    assume_initial_globals:
        If True, mutable global data objects are assumed to still hold their
        initial values on entry (valid only when analysing the reset entry
        task); read-only objects are always preloaded.
    """

    def __init__(
        self,
        program: Program,
        cfg: ControlFlowGraph,
        loops: Optional[LoopForest] = None,
        initial_registers: Optional[Dict[str, AbstractValue]] = None,
        assume_initial_globals: bool = False,
        widen_after: int = 2,
        max_iterations: int = 50_000,
        engine: Optional[str] = None,
    ):
        program.ensure_layout()
        self.program = program
        self.cfg = cfg
        self.loops = loops if loops is not None else find_loops(cfg)
        self.initial_registers = dict(initial_registers or {})
        self.assume_initial_globals = assume_initial_globals
        self.widen_after = widen_after
        self.max_iterations = max_iterations
        self.engine = default_engine() if engine is None else engine
        if self.engine not in ENGINES:
            raise AnalysisError(
                f"unknown analysis engine {self.engine!r} (expected one of {ENGINES})"
            )
        self._recording: Optional[Dict[int, AccessInfo]] = None
        # Per-instruction transfer closures, compiled on first use.  A block
        # is re-interpreted once per fixpoint visit (typically 10-30 times),
        # so resolving opcode dispatch, operand kinds and immediate abstract
        # values once per instruction instead of once per application pays for
        # itself many times over.
        self._appliers_by_block: Dict[int, list] = {}
        self._applier_by_address: Dict[int, object] = {}
        # Fused engine: one compiled kernel per basic block, memoised on the
        # function's content digest so repeated analyses (per-context runs,
        # modes, cache replays) skip recompilation entirely.
        self._kernels: Optional[Dict[int, object]] = None
        self._kernel_runs: Optional[Dict[int, int]] = None
        if self.engine == "fused":
            key = (program.content_digest(), cfg.function_name)
            entry = _KERNEL_CACHE.get(key)
            if entry is None:
                if len(_KERNEL_CACHE) >= _KERNEL_CACHE_LIMIT:
                    _KERNEL_CACHE.clear()
                entry = ({}, {})
                _KERNEL_CACHE[key] = entry
            self._kernels, self._kernel_runs = entry

    # ------------------------------------------------------------------ #
    # Entry state
    # ------------------------------------------------------------------ #
    def entry_state(self) -> AbstractState:
        state = AbstractState()
        state.set("r29", AbstractValue.address(STACK_BASE, Interval.const(0)))
        state.set("r30", AbstractValue.address(STACK_BASE, Interval.const(0)))
        for register, value in self.initial_registers.items():
            state.set(register, value)
        memory = state.memory
        for obj in self.program.data_objects.values():
            if not obj.initial:
                continue
            if obj.readonly or self.assume_initial_globals:
                for index, word in enumerate(obj.initial):
                    memory.store_strong(obj.name, index * WORD_SIZE, AbstractValue.const(word))
        return state

    # ------------------------------------------------------------------ #
    def run(self) -> ValueAnalysisResult:
        solver = ForwardSolver(
            cfg=self.cfg,
            transfer=self._transfer,
            join=lambda a, b: a.join(b),
            widen=lambda a, b: a.widen(b),
            includes=lambda old, new: old.includes(new),
            bottom=AbstractState.unreachable,
            widening_points=self.loops.headers(),
            widen_after=self.widen_after,
            max_iterations=self.max_iterations,
            wto=compute_wto(self.cfg, self.loops),
        )
        fixpoint = solver.solve(self.entry_state())

        result = ValueAnalysisResult(function_name=self.cfg.function_name)
        result.block_in = fixpoint.block_in
        result.edge_out = fixpoint.edge_out
        result.iterations = fixpoint.iterations

        # Final recording pass: replay each block on its converged entry state
        # to collect the abstract addresses of all memory accesses.  Only the
        # instruction effects matter here — edge propagation (branch
        # refinement, per-successor copies) is skipped.
        self._recording = result.accesses
        for block_id, in_state in fixpoint.block_in.items():
            if in_state.reachable:
                self._run_block(block_id, in_state.copy())
        self._recording = None

        # Blocks never reached get explicit unreachable entry states.
        for block_id in self.cfg.node_ids():
            result.block_in.setdefault(block_id, AbstractState.unreachable())
        return result

    # ------------------------------------------------------------------ #
    # Replay (used by the analyzer to inspect states at call sites)
    # ------------------------------------------------------------------ #
    def state_before(
        self, result: ValueAnalysisResult, block_id: int, address: int
    ) -> AbstractState:
        """Abstract state immediately before the instruction at ``address``.

        The block's converged entry state is replayed instruction by
        instruction up to (but excluding) ``address`` — the WCET analyzer uses
        this to read argument register values at call sites for context-
        sensitive callee analysis.
        """
        state = result.state_at_block_entry(block_id).copy()
        if not state.reachable:
            return state
        for instr in self.cfg.block(block_id).instructions:
            if instr.address == address:
                break
            state = self._apply_instruction(instr, state)
        return state

    # ------------------------------------------------------------------ #
    # Block transfer
    # ------------------------------------------------------------------ #
    def _transfer(self, block_id: int, in_state: AbstractState) -> Dict[int, AbstractState]:
        state = in_state.copy()
        if not state.reachable:
            return {succ: AbstractState.unreachable() for succ in self.cfg.successors(block_id)}

        state = self._run_block(block_id, state)

        return self._propagate(self.cfg.block(block_id), state)

    def _run_block(self, block_id: int, state: AbstractState) -> AbstractState:
        """Apply every instruction effect of one block to ``state``."""
        kernels = self._kernels
        if kernels is None:
            for apply_instruction in self._appliers(block_id):
                state = apply_instruction(state)
            return state
        kernel = kernels.get(block_id)
        if kernel is None:
            # Tiered execution: interpret through the appliers until the
            # block's program-wide run count (shared across analysis
            # instances via the kernel cache) shows the compile will pay off.
            # Both paths are value-identical, so the switch point is purely a
            # performance decision.
            runs = self._kernel_runs
            count = runs.get(block_id, 0) + 1
            if count < _KERNEL_JIT_THRESHOLD:
                runs[block_id] = count
                _M_INTERPRETED.inc()
                for apply_instruction in self._appliers(block_id):
                    state = apply_instruction(state)
                return state
            kernel = _compile_block_kernel(
                self.cfg.block(block_id), self.cfg.function_name
            )
            kernels[block_id] = kernel
            _M_COMPILES.inc()
        return kernel(self, state)

    def _appliers(self, block_id: int) -> list:
        appliers = self._appliers_by_block.get(block_id)
        if appliers is None:
            instructions = self.cfg.block(block_id).instructions
            appliers = [self._compile_instruction(instr) for instr in instructions]
            self._appliers_by_block[block_id] = appliers
            for instr, applier in zip(instructions, appliers):
                self._applier_by_address[instr.address] = applier
        return appliers

    # ------------------------------------------------------------------ #
    def _abstract_getter(self, operand):
        """Compile one operand into a ``state -> AbstractValue`` accessor."""
        if isinstance(operand, Reg):
            name = operand.name
            return lambda state: state.get(name)
        if isinstance(operand, Imm):
            if isinstance(operand.value, float):
                constant = AbstractValue.float_value()
            else:
                constant = AbstractValue.const(int(operand.value))
            return lambda state: constant
        if isinstance(operand, Sym):
            constant = AbstractValue.address(operand.name, Interval.const(0))
            return lambda state: constant
        raise AnalysisError(f"unexpected operand {operand!r} in value analysis")

    @staticmethod
    def _fact_operand(operand) -> Tuple[str, object]:
        if isinstance(operand, Reg):
            return ("reg", operand.name)
        if isinstance(operand, Imm) and isinstance(operand.value, int):
            return ("const", operand.value)
        return ("other", None)

    def _apply_instruction(self, instr: Instruction, state: AbstractState) -> AbstractState:
        applier = self._applier_by_address.get(instr.address)
        if applier is None:
            applier = self._compile_instruction(instr)
            self._applier_by_address[instr.address] = applier
        return applier(state)

    def _compile_instruction(self, instr: Instruction):
        """Compile one instruction into a ``state -> state`` transfer closure."""
        apply_unpredicated = self._compile_unpredicated(instr)
        if instr.pred is not None:
            # A predicated instruction may or may not take effect: the result
            # is the join of both outcomes.
            def apply_predicated(state: AbstractState) -> AbstractState:
                skipped = state.copy()
                taken = apply_unpredicated(state.copy())
                return skipped.join(taken)
            return apply_predicated
        return apply_unpredicated

    def _compile_unpredicated(self, instr: Instruction):
        op = instr.opcode
        if op in _NO_EFFECT_OPCODES:
            return _identity
        if op in (Opcode.CALL, Opcode.ICALL):
            return self._apply_call

        dest = instr.dest.name if instr.dest is not None else None

        if op is Opcode.MOV:
            get = self._abstract_getter(instr.operands[0])

            def apply_mov(state: AbstractState) -> AbstractState:
                state.set(dest, get(state))
                return state
            return apply_mov

        if op is Opcode.LA:
            constant = AbstractValue.address(instr.operands[0].name, Interval.const(0))

            def apply_la(state: AbstractState) -> AbstractState:
                state.set(dest, constant)
                return state
            return apply_la

        if op in _ARITH_HANDLERS:
            compute = _ARITH_HANDLERS[op]
            get_a = self._abstract_getter(instr.operands[0])
            get_b = self._abstract_getter(instr.operands[1])

            def apply_arith(state: AbstractState) -> AbstractState:
                state.set(dest, compute(get_a(state), get_b(state)))
                return state
            return apply_arith

        if op in (Opcode.NOT, Opcode.NEG):
            get = self._abstract_getter(instr.operands[0])
            negate = op is Opcode.NEG

            def apply_unary(state: AbstractState) -> AbstractState:
                interval = get(state).interval
                state.set(
                    dest,
                    AbstractValue(interval.neg() if negate else interval.bit_not()),
                )
                return state
            return apply_unary

        if op in _COMPARE_HANDLERS:
            compute = _COMPARE_HANDLERS[op]
            get_a = self._abstract_getter(instr.operands[0])
            get_b = self._abstract_getter(instr.operands[1])
            lhs = self._fact_operand(instr.operands[0])
            rhs = self._fact_operand(instr.operands[1])
            fact = None
            if lhs[0] != "other" and rhs[0] != "other":
                fact = PredicateFact(op, lhs, rhs)

            def apply_compare(state: AbstractState) -> AbstractState:
                a = get_a(state)
                b = get_b(state)
                state.set(dest, AbstractValue(compute(a, b)))
                if fact is not None and not (a.is_float or b.is_float):
                    state.set_fact(dest, fact)
                return state
            return apply_compare

        if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG, Opcode.ITOF):
            constant = AbstractValue.float_value()
        elif op is Opcode.FTOI:
            constant = AbstractValue.top()
        elif op in (Opcode.FSEQ, Opcode.FSNE, Opcode.FSLT, Opcode.FSLE):
            constant = AbstractValue(Interval(0, 1))
        else:
            constant = None
        if constant is not None:
            def apply_constant(state: AbstractState) -> AbstractState:
                state.set(dest, constant)
                return state
            return apply_constant

        if op in (Opcode.LOAD, Opcode.LOADB):
            get_pointer = self._abstract_getter(instr.operands[0])

            def apply_load(state: AbstractState) -> AbstractState:
                return self._apply_load(instr, get_pointer(state), state)
            return apply_load
        if op in (Opcode.STORE, Opcode.STOREB):
            get_value = self._abstract_getter(instr.operands[0])
            get_pointer = self._abstract_getter(instr.operands[1])

            def apply_store(state: AbstractState) -> AbstractState:
                return self._apply_store(
                    instr, get_value(state), get_pointer(state), state
                )
            return apply_store

        raise AnalysisError(f"value analysis: unhandled opcode {op.value!r}")

    # ------------------------------------------------------------------ #
    def _apply_call(self, state: AbstractState) -> AbstractState:
        state.havoc_registers(CALLER_SAVED_REGISTERS)
        # Callees may modify any global memory; only the caller's stack frame
        # slots (addressed relative to the incoming stack pointer) survive.
        state.memory.clobber_all(keep_bases={STACK_BASE})
        return state

    # ------------------------------------------------------------------ #
    def _resolve_access(
        self, pointer: AbstractValue, byte_offset: int
    ) -> Tuple[FrozenSet[str], Interval, Interval, bool]:
        """Return (bases, per-base offset interval, absolute interval, unknown)."""
        if byte_offset:
            offset = pointer.interval.add(Interval.const(byte_offset))
        else:
            offset = pointer.interval
        if pointer.bases:
            absolute = Interval.bottom()
            for base in pointer.bases:
                if base == STACK_BASE:
                    base_abs = _STACK_ABSOLUTE
                elif self.program.has_data(base):
                    base_abs = offset.add(Interval.const(self.program.data(base).address))
                elif self.program.has_function(base):
                    base_abs = offset.add(
                        Interval.const(self.program.function(base).entry_address)
                    )
                else:
                    base_abs = Interval.top()
                absolute = absolute.join(base_abs)
            return pointer.bases, offset, absolute, False
        if offset.is_constant:
            address = offset.constant_value
            obj = self.program.data_object_at(address) if address is not None else None
            if obj is not None:
                return (
                    frozenset({obj.name}),
                    Interval.const(address - obj.address),
                    offset,
                    False,
                )
            return frozenset(), offset, offset, False
        if offset.is_finite:
            return frozenset(), offset, offset, False
        return frozenset(), offset, Interval.top(), True

    def _record_access(
        self, instr: Instruction, bases, offset, absolute, unknown
    ) -> None:
        if self._recording is None:
            return
        self._recording[instr.address] = AccessInfo(
            instruction_address=instr.address,
            is_load=instr.is_load,
            size=WORD_SIZE if instr.opcode in (Opcode.LOAD, Opcode.STORE) else 1,
            bases=frozenset(bases),
            offset=offset,
            absolute=absolute,
            unknown=unknown,
        )

    def _apply_load(
        self, instr: Instruction, pointer: AbstractValue, state: AbstractState
    ) -> AbstractState:
        bases, offset, absolute, unknown = self._resolve_access(pointer, instr.offset)
        self._record_access(instr, bases, offset, absolute, unknown)
        value = AbstractValue.top()
        single = next(iter(bases)) if len(bases) == 1 else None
        if single is not None and offset.is_constant:
            value = state.memory.load(single, offset.constant_value)
        if instr.opcode is Opcode.LOADB:
            value = AbstractValue(value.interval.meet(Interval(0, 255)))
            if value.interval.is_bottom:
                value = AbstractValue(Interval(0, 255))
        state.set(instr.dest.name, value)
        return state

    def _apply_store(
        self,
        instr: Instruction,
        value: AbstractValue,
        pointer: AbstractValue,
        state: AbstractState,
    ) -> AbstractState:
        bases, offset, absolute, unknown = self._resolve_access(pointer, instr.offset)
        self._record_access(instr, bases, offset, absolute, unknown)
        if instr.opcode is Opcode.STOREB:
            # Byte stores only partially update a word cell; treat as weak.
            value = AbstractValue.top()
        if unknown or not bases:
            if offset.is_constant and bases:
                pass  # handled below
            elif unknown:
                # A write through a completely unknown pointer destroys all
                # knowledge about memory (Section 4.3, imprecise accesses).
                state.memory.clobber_all()
                return state
        if len(bases) == 1 and offset.is_constant:
            state.memory.store_strong(next(iter(bases)), offset.constant_value, value)
            return state
        if bases:
            for base in bases:
                state.memory.store_weak(base, value)
                if offset.is_constant:
                    continue
                # Unknown offset within the object: existing knowledge about
                # the object's cells can no longer be trusted to be precise,
                # but joining the stored value in keeps soundness.
            return state
        # No symbolic base but a finite numeric address range: weak-update any
        # data object the range may intersect.
        for obj in self.program.data_objects.values():
            object_range = Interval(obj.address, obj.address + obj.size - 1)
            if not absolute.meet(object_range).is_bottom:
                state.memory.store_weak(obj.name, value)
        return state

    # ------------------------------------------------------------------ #
    # Edge propagation with branch refinement
    # ------------------------------------------------------------------ #
    def _propagate(self, block: BasicBlock, state: AbstractState) -> Dict[int, AbstractState]:
        successors = self.cfg.successors(block.id)
        result: Dict[int, AbstractState] = {}
        last = block.last if block.instructions else None

        if last is None or not last.is_conditional_branch or len(successors) < 2:
            for successor in successors:
                result[successor] = state.copy() if len(successors) > 1 else state
            return result

        condition = last.operands[0]
        assert isinstance(condition, Reg)
        target_label = last.branch_target()
        taken_target = None
        fallthrough_target = None
        for edge in self.cfg.out_edges(block.id):
            if edge.kind.value == "taken":
                taken_target = edge.target
            else:
                fallthrough_target = edge.target

        cond_value = state.get(condition.name)
        branch_on_true = last.opcode is Opcode.BT

        taken_state = state.copy()
        fall_state = state.copy()

        # Constant conditions make one edge infeasible outright.
        if cond_value.is_constant and not cond_value.is_float:
            is_zero = cond_value.constant_value == 0
            taken_feasible = (not is_zero) if branch_on_true else is_zero
            if not taken_feasible:
                taken_state = AbstractState.unreachable()
            else:
                fall_state = AbstractState.unreachable()
        else:
            fact = state.facts.get(condition.name)
            if fact is not None:
                self._refine_with_fact(taken_state, fact, positive=branch_on_true)
                self._refine_with_fact(fall_state, fact, positive=not branch_on_true)
            # The condition register itself is non-zero on the "true" side and
            # zero on the "false" side (when its interval allows refinement).
            true_state = taken_state if branch_on_true else fall_state
            false_state = fall_state if branch_on_true else taken_state
            if true_state.reachable:
                refined = true_state.get(condition.name).interval.refine_ne(Interval.const(0))
                true_state.replace_value(
                    condition.name,
                    true_state.get(condition.name).with_interval(refined),
                )
            if false_state.reachable:
                refined = false_state.get(condition.name).interval.meet(Interval.const(0))
                if refined.is_bottom:
                    false_state.reachable = False
                else:
                    false_state.replace_value(
                        condition.name,
                        false_state.get(condition.name).with_interval(refined),
                    )

        if taken_target is not None:
            result[taken_target] = taken_state
        if fallthrough_target is not None:
            result[fallthrough_target] = fall_state
        for successor in successors:
            result.setdefault(successor, state.copy())
        return result

    def _refine_with_fact(
        self, state: AbstractState, fact: PredicateFact, positive: bool
    ) -> None:
        if not state.reachable:
            return

        def value_of(operand) -> Interval:
            kind, payload = operand
            if kind == "reg":
                return state.get(payload).interval
            if kind == "const":
                return Interval.const(payload)
            return Interval.top()

        def set_value(operand, interval: Interval) -> None:
            kind, payload = operand
            if kind != "reg":
                return
            if interval.is_bottom:
                state.reachable = False
                return
            state.replace_value(payload, state.get(payload).with_interval(interval))

        lhs = value_of(fact.lhs)
        rhs = value_of(fact.rhs)
        relation = fact.relation

        # Reduce every relation to one of lt / le / eq / ne between lhs and rhs
        # under the branch polarity.
        swapped = {
            Opcode.SGT: Opcode.SLT,
            Opcode.SGE: Opcode.SLE,
        }
        lhs_op, rhs_op = fact.lhs, fact.rhs
        if relation in swapped:
            relation = swapped[relation]
            lhs, rhs = rhs, lhs
            lhs_op, rhs_op = rhs_op, lhs_op
        if relation is Opcode.SGEU:
            # a >=u b  <=>  not (a <u b)
            relation = Opcode.SLTU
            positive = not positive

        unsigned = relation is Opcode.SLTU
        if unsigned:
            if not (lhs.is_nonnegative() and rhs.is_nonnegative()):
                return
            relation = Opcode.SLT

        if relation is Opcode.SLT:
            if positive:
                set_value(lhs_op, lhs.refine_lt(rhs))
                set_value(rhs_op, value_of(rhs_op).refine_gt(lhs))
            else:
                set_value(lhs_op, lhs.refine_ge(rhs))
                set_value(rhs_op, value_of(rhs_op).refine_le(lhs))
        elif relation is Opcode.SLE:
            if positive:
                set_value(lhs_op, lhs.refine_le(rhs))
                set_value(rhs_op, value_of(rhs_op).refine_ge(lhs))
            else:
                set_value(lhs_op, lhs.refine_gt(rhs))
                set_value(rhs_op, value_of(rhs_op).refine_lt(lhs))
        elif relation is Opcode.SEQ:
            if positive:
                meet = lhs.meet(rhs)
                set_value(lhs_op, meet)
                set_value(rhs_op, meet)
            else:
                set_value(lhs_op, lhs.refine_ne(rhs))
                set_value(rhs_op, rhs.refine_ne(lhs))
        elif relation is Opcode.SNE:
            if positive:
                set_value(lhs_op, lhs.refine_ne(rhs))
                set_value(rhs_op, rhs.refine_ne(lhs))
            else:
                meet = lhs.meet(rhs)
                set_value(lhs_op, meet)
                set_value(rhs_op, meet)


def _unsigned_ok(a: AbstractValue, b: AbstractValue) -> bool:
    return a.interval.is_nonnegative() and b.interval.is_nonnegative()


#: Absolute address interval of the stack region (shared constant).
_STACK_ABSOLUTE = Interval.range(STACK_TOP - STACK_SIZE, STACK_TOP)

#: Opcodes with no effect on the abstract state (control flow is handled by
#: edge propagation, not by the instruction transfer).
_NO_EFFECT_OPCODES = frozenset(
    {Opcode.NOP, Opcode.HALT, Opcode.RET, Opcode.BR, Opcode.IBR, Opcode.BT, Opcode.BF}
)


def _identity(state: AbstractState) -> AbstractState:
    return state


_ARITH_HANDLERS = {
    Opcode.ADD: lambda a, b: a.add(b),
    Opcode.SUB: lambda a, b: a.sub(b),
    Opcode.MUL: lambda a, b: AbstractValue(a.interval.mul(b.interval)),
    Opcode.DIVS: lambda a, b: AbstractValue(a.interval.divide(b.interval)),
    Opcode.DIVU: lambda a, b: AbstractValue(
        a.interval.divide(b.interval) if _unsigned_ok(a, b) else Interval.top()
    ),
    Opcode.REMS: lambda a, b: AbstractValue(a.interval.remainder(b.interval)),
    Opcode.REMU: lambda a, b: AbstractValue(
        a.interval.remainder(b.interval) if _unsigned_ok(a, b) else Interval.top()
    ),
    Opcode.AND: lambda a, b: AbstractValue(a.interval.bit_and(b.interval)),
    Opcode.OR: lambda a, b: AbstractValue(a.interval.bit_or(b.interval)),
    Opcode.XOR: lambda a, b: AbstractValue(a.interval.bit_xor(b.interval)),
    Opcode.SHL: lambda a, b: AbstractValue(a.interval.shift_left(b.interval)),
    Opcode.SHR: lambda a, b: AbstractValue(a.interval.shift_right_logical(b.interval)),
    Opcode.SRA: lambda a, b: AbstractValue(a.interval.shift_right_arith(b.interval)),
}

_COMPARE_HANDLERS = {
    Opcode.SEQ: lambda a, b: a.interval.compare_eq(b.interval),
    Opcode.SNE: lambda a, b: _negate_bool(a.interval.compare_eq(b.interval)),
    Opcode.SLT: lambda a, b: a.interval.compare_lt(b.interval),
    Opcode.SLE: lambda a, b: a.interval.compare_le(b.interval),
    Opcode.SGT: lambda a, b: b.interval.compare_lt(a.interval),
    Opcode.SGE: lambda a, b: b.interval.compare_le(a.interval),
    Opcode.SLTU: lambda a, b: (
        a.interval.compare_lt(b.interval) if _unsigned_ok(a, b) else Interval(0, 1)
    ),
    Opcode.SGEU: lambda a, b: (
        b.interval.compare_le(a.interval) if _unsigned_ok(a, b) else Interval(0, 1)
    ),
}


def _negate_bool(interval: Interval) -> Interval:
    if interval.is_constant:
        return Interval.const(1 - interval.constant_value)
    return Interval(0, 1)


# --------------------------------------------------------------------------- #
# Fused engine: per-basic-block transfer kernel compiler
# --------------------------------------------------------------------------- #
#
# The reference engine interprets one closure per instruction, paying for a
# call, a ``state.get``/``state.set`` pair and a copy-on-write ownership check
# per register write.  The fused engine compiles each basic block into a
# single Python function that takes ownership of the register and fact dicts
# once, then applies every instruction effect with direct dict operations.
# The generated code mirrors ``_compile_unpredicated`` operation for
# operation — the same lattice calls in the same order on the same interned
# constants — so the resulting states are bit-identical to the reference
# engine; tests/test_fused_engine.py enforces this across the fuzz presets.

_TOP = AbstractValue.top()


def _kill_facts(facts: Dict[str, PredicateFact], register: str) -> None:
    """The fact invalidation of ``AbstractState.set``, on an owned fact dict."""
    facts.pop(register, None)
    for holder in list(facts):
        if facts[holder].mentions_register(register):
            del facts[holder]


def _identity_kernel(analysis: "ValueAnalysis", state: AbstractState) -> AbstractState:
    return state


class _KernelBuilder:
    """Accumulates generated source lines plus their closed-over constants.

    The generated function has the shape::

        def _kernel(A, state):        # A = the calling ValueAnalysis
            state._own_registers()    # one COW materialisation per block
            state._own_facts()
            regs = state._registers
            facts = state._facts
            ...straight-line instruction effects...
            return state

    Register reads/writes go straight to ``regs``; memory and call effects go
    through ``A`` so kernels stay reusable across analysis instances.
    """

    def __init__(self):
        self.lines: List[str] = []
        self.env: Dict[str, object] = {
            "AV": AbstractValue,
            "_TOP": _TOP,
            "KF": _kill_facts,
        }
        self._serial = 0

    def bind(self, prefix: str, value) -> str:
        self._serial += 1
        name = f"{prefix}{self._serial}"
        self.env[name] = value
        return name

    # ------------------------------------------------------------------ #
    def operand(self, operand) -> str:
        """Expression yielding the operand's AbstractValue (cf. _abstract_getter)."""
        if isinstance(operand, Reg):
            return f"regs.get({operand.name!r}, _TOP)"
        if isinstance(operand, Imm):
            if isinstance(operand.value, float):
                constant = AbstractValue.float_value()
            else:
                constant = AbstractValue.const(int(operand.value))
            return self.bind("c", constant)
        if isinstance(operand, Sym):
            return self.bind("c", AbstractValue.address(operand.name, Interval.const(0)))
        raise AnalysisError(f"unexpected operand {operand!r} in value analysis")

    def set_register(self, dest: str, expression: str) -> None:
        """Inline ``state.set``: direct write plus fact invalidation."""
        self.lines.append(f"    regs[{dest!r}] = {expression}")
        self.lines.append(f"    if facts: KF(facts, {dest!r})")

    # ------------------------------------------------------------------ #
    def emit(self, instr: Instruction) -> None:
        op = instr.opcode
        if op in _NO_EFFECT_OPCODES:
            return
        if instr.pred is not None:
            # Predicated effect: the join of the skipped and taken outcomes,
            # exactly as the reference wrapper in _compile_instruction.  The
            # join produces a fresh state, so re-own and rebind the locals.
            sub = self.bind("q", _compile_single_kernel(instr))
            self.lines.append("    _skipped = state.copy()")
            self.lines.append(f"    _taken = {sub}(A, state.copy())")
            self.lines.append("    state = _skipped.join(_taken)")
            self.lines.append("    state._own_registers()")
            self.lines.append("    state._own_facts()")
            self.lines.append("    regs = state._registers")
            self.lines.append("    facts = state._facts")
            return
        self.emit_unpredicated(instr)

    def emit_unpredicated(self, instr: Instruction) -> None:
        op = instr.opcode
        if op in (Opcode.CALL, Opcode.ICALL):
            self.lines.append("    A._apply_call(state)")
            return

        dest = instr.dest.name if instr.dest is not None else None

        if op is Opcode.MOV:
            self.set_register(dest, self.operand(instr.operands[0]))
            return
        if op is Opcode.LA:
            constant = AbstractValue.address(instr.operands[0].name, Interval.const(0))
            self.set_register(dest, self.bind("c", constant))
            return
        if op in _ARITH_HANDLERS:
            handler = self.bind("h", _ARITH_HANDLERS[op])
            a = self.operand(instr.operands[0])
            b = self.operand(instr.operands[1])
            self.set_register(dest, f"{handler}({a}, {b})")
            return
        if op in (Opcode.NOT, Opcode.NEG):
            method = "neg" if op is Opcode.NEG else "bit_not"
            a = self.operand(instr.operands[0])
            self.set_register(dest, f"AV(({a}).interval.{method}())")
            return
        if op in _COMPARE_HANDLERS:
            handler = self.bind("h", _COMPARE_HANDLERS[op])
            self.lines.append(f"    _a = {self.operand(instr.operands[0])}")
            self.lines.append(f"    _b = {self.operand(instr.operands[1])}")
            self.set_register(dest, f"AV({handler}(_a, _b))")
            lhs = ValueAnalysis._fact_operand(instr.operands[0])
            rhs = ValueAnalysis._fact_operand(instr.operands[1])
            if lhs[0] != "other" and rhs[0] != "other":
                fact = self.bind("f", PredicateFact(op, lhs, rhs))
                self.lines.append("    if not (_a.is_float or _b.is_float):")
                self.lines.append(f"        facts[{dest!r}] = {fact}")
            return

        if op in (Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG, Opcode.ITOF):
            constant = AbstractValue.float_value()
        elif op is Opcode.FTOI:
            constant = AbstractValue.top()
        elif op in (Opcode.FSEQ, Opcode.FSNE, Opcode.FSLT, Opcode.FSLE):
            constant = AbstractValue(Interval(0, 1))
        else:
            constant = None
        if constant is not None:
            self.set_register(dest, self.bind("c", constant))
            return

        if op in (Opcode.LOAD, Opcode.LOADB):
            pointer = self.operand(instr.operands[0])
            name = self.bind("i", instr)
            self.lines.append(f"    A._apply_load({name}, {pointer}, state)")
            return
        if op in (Opcode.STORE, Opcode.STOREB):
            value = self.operand(instr.operands[0])
            pointer = self.operand(instr.operands[1])
            name = self.bind("i", instr)
            self.lines.append(f"    A._apply_store({name}, {value}, {pointer}, state)")
            return

        raise AnalysisError(f"value analysis: unhandled opcode {op.value!r}")

    # ------------------------------------------------------------------ #
    def build(self):
        if not self.lines:
            return _identity_kernel
        header = [
            "def _kernel(A, state):",
            "    state._own_registers()",
            "    state._own_facts()",
            "    regs = state._registers",
            "    facts = state._facts",
        ]
        source = "\n".join(header + self.lines + ["    return state"]) + "\n"
        # Constants are referenced by positional binding names, so the source
        # text of a block depends only on its instruction shape — blocks with
        # identical shapes (extremely common across generated programs and
        # unrolled code) share one code object and differ only in the
        # environment handed to exec().
        code = _CODE_CACHE.get(source)
        if code is None:
            if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
                _CODE_CACHE.clear()
            code = compile(source, "<fused-kernel>", "exec")
            _CODE_CACHE[source] = code
        namespace: Dict[str, object] = {}
        exec(code, self.env, namespace)
        return namespace["_kernel"]


def _compile_block_kernel(block: BasicBlock, function_name: str):
    """Compile one basic block into a fused ``(analysis, state) -> state`` kernel."""
    builder = _KernelBuilder()
    for instr in block.instructions:
        builder.emit(instr)
    return builder.build()


def _compile_single_kernel(instr: Instruction):
    """Kernel for one unpredicated instruction (the predicated 'taken' leg)."""
    builder = _KernelBuilder()
    builder.emit_unpredicated(instr)
    return builder.build()
