"""Bourdoncle-style weak topological order (WTO) for fixpoint scheduling.

A weak topological order of a CFG is a linearization of its nodes together
with a hierarchy of *components* (the loops) such that every edge ``u -> v``
either goes forward in the linearization or enters the *head* of a component
containing ``u`` (Bourdoncle, "Efficient chaotic iteration strategies with
widenings", 1993).  Scheduling a worklist by WTO position makes the solver
iterate an inner component until it stabilises before any state propagates
outward — the iteration strategy with the best known convergence behaviour
for interval-style domains.

We derive the WTO from structures the analyzer already owns instead of
re-running Bourdoncle's recursive SCC decomposition:

* the **linearization** is the CFG's reverse postorder.  For a reducible CFG
  this *is* a valid WTO linearization: every retreating edge targets a natural
  loop header that dominates (and whose loop contains) its source.  For
  irreducible CFGs the SCC pseudo-loops of :mod:`repro.cfg.loops` provide the
  component heads, and reverse postorder remains the canonical order the
  solver has always used — keeping results bit-identical by construction;
* the **components** and their heads come from the existing
  :class:`~repro.cfg.loops.LoopForest` — one component per loop, nested
  exactly as the loops nest.

The heads double as the widening points of the fixpoint iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import LoopForest, find_loops


@dataclass
class WeakTopologicalOrder:
    """A WTO of one CFG: linear positions plus the component hierarchy."""

    function_name: str
    #: Node id -> position in the linearization (0 = first to evaluate).
    positions: Dict[int, int] = field(default_factory=dict)
    #: Component head -> all member blocks (including the head).
    components: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    #: Heads ordered outermost-first (stable order for widening-point setup).
    heads: Tuple[int, ...] = ()

    # ------------------------------------------------------------------ #
    def position(self, node: int) -> int:
        """Scheduling priority of ``node`` (unknown nodes sort last)."""
        return self.positions.get(node, len(self.positions))

    def is_head(self, node: int) -> bool:
        return node in self.components

    def component_of(self, node: int) -> Optional[int]:
        """Head of the innermost component containing ``node`` (or ``None``)."""
        best: Optional[int] = None
        best_size = None
        for head, members in self.components.items():
            if node in members and (best_size is None or len(members) < best_size):
                best, best_size = head, len(members)
        return best

    def __len__(self) -> int:
        return len(self.positions)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        """Render the classic parenthesised WTO notation."""
        ordered = sorted(self.positions, key=self.positions.__getitem__)
        opened: List[int] = []
        parts: List[str] = []
        for node in ordered:
            while opened and node not in self.components[opened[-1]]:
                parts.append(")")
                opened.pop()
            if node in self.components:
                parts.append(f"({node:#x}")
                opened.append(node)
            else:
                parts.append(f"{node:#x}")
        parts.extend(")" for _ in opened)
        return " ".join(parts)


def compute_wto(
    cfg: ControlFlowGraph, loops: Optional[LoopForest] = None
) -> WeakTopologicalOrder:
    """Compute the WTO of ``cfg`` from its (possibly precomputed) loop forest."""
    loops = loops if loops is not None else find_loops(cfg)
    order = cfg.reverse_postorder()
    positions = {node: index for index, node in enumerate(order)}
    components = {
        loop.header: frozenset(loop.blocks) for loop in loops.loops
    }
    heads = tuple(
        loop.header
        for loop in sorted(loops.loops, key=lambda l: (l.depth, positions.get(l.header, 0)))
    )
    return WeakTopologicalOrder(
        function_name=cfg.function_name,
        positions=positions,
        components=components,
        heads=heads,
    )
