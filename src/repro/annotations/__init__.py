"""Design-level information for the WCET analysis (Section 4.3 of the paper).

The paper's central recommendation is to capture system knowledge that the
binary alone cannot provide — operating modes, data-buffer sizes, memory
regions accessed by drivers, error-handling scenarios — early, and to feed it
to the timing analysis.  This package is that machinery:

* :mod:`repro.annotations.flowfacts` — loop bounds, linear flow constraints,
  infeasible blocks, recursion depths, argument value ranges;
* :mod:`repro.annotations.modes` — operating modes bundling mode-specific facts;
* :mod:`repro.annotations.memregions` — per-function memory-region access
  annotations for otherwise unknown pointer accesses;
* :mod:`repro.annotations.errors_model` — error-handling scenarios that either
  exclude error paths or bound how many error handlers can run per activation;
* :mod:`repro.annotations.registry` — the :class:`AnnotationSet` aggregating
  everything, resolvable per operating mode;
* :mod:`repro.annotations.parser` — a small text format so annotations can be
  maintained next to the source code, as the paper recommends.
"""

from repro.annotations.flowfacts import (
    ArgumentRange,
    FlowConstraint,
    InfeasiblePath,
    LoopBoundAnnotation,
    RecursionBound,
)
from repro.annotations.memregions import MemoryRegionAnnotation
from repro.annotations.modes import OperatingMode
from repro.annotations.errors_model import ErrorScenario
from repro.annotations.registry import AnnotationSet
from repro.annotations.parser import parse_annotations

__all__ = [
    "LoopBoundAnnotation",
    "FlowConstraint",
    "InfeasiblePath",
    "RecursionBound",
    "ArgumentRange",
    "MemoryRegionAnnotation",
    "OperatingMode",
    "ErrorScenario",
    "AnnotationSet",
    "parse_annotations",
]
