"""Error-handling scenarios.

Section 4.3 ("Error Handling") distinguishes three treatments of error-handling
code during WCET analysis:

1. the error case is *not relevant* for the worst case — all error paths can be
   excluded (large bound reduction, but needs a documented justification);
2. errors are relevant, but the assumption that *all* errors fire at once is
   unrealistic — a scenario bounds how many handlers can run per activation;
3. nothing is documented — the analysis has to assume every handler runs,
   which is safe but very pessimistic.

:class:`ErrorScenario` expresses cases 1 and 2 and lowers them onto ordinary
flow facts (infeasible paths / flow constraints) that the IPET system consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import AnnotationError
from repro.annotations.flowfacts import FlowConstraint, InfeasiblePath, Location


@dataclass(frozen=True)
class ErrorHandlerRef:
    """Reference to one error-handling block: function + label/address."""

    function: str
    location: Location
    description: str = ""


@dataclass
class ErrorScenario:
    """A documented error-handling scenario.

    ``max_simultaneous`` is the maximum number of the listed handlers that can
    execute in one activation of the task; ``0`` means the error case has been
    argued out of the worst case entirely (all handlers infeasible).
    """

    name: str
    handlers: List[ErrorHandlerRef] = field(default_factory=list)
    max_simultaneous: int = 0
    justification: str = ""

    def __post_init__(self) -> None:
        if self.max_simultaneous < 0:
            raise AnnotationError("max_simultaneous must be >= 0")

    def add_handler(
        self, function: str, location: Location, description: str = ""
    ) -> "ErrorScenario":
        self.handlers.append(ErrorHandlerRef(function, location, description))
        return self

    # ------------------------------------------------------------------ #
    def to_flow_facts(self) -> Tuple[List[InfeasiblePath], List[FlowConstraint]]:
        """Lower the scenario to infeasible paths / flow constraints."""
        if not self.handlers:
            return [], []
        if self.max_simultaneous == 0:
            infeasible = [
                InfeasiblePath(
                    function=handler.function,
                    location=handler.location,
                    reason=f"error scenario {self.name!r}: error case excluded "
                    f"({self.justification})",
                )
                for handler in self.handlers
            ]
            return infeasible, []
        constraints: List[FlowConstraint] = []
        by_function: dict = {}
        for handler in self.handlers:
            by_function.setdefault(handler.function, []).append(handler)
        for function, handlers in by_function.items():
            constraints.append(
                FlowConstraint(
                    function=function,
                    terms=tuple((handler.location, 1) for handler in handlers),
                    relation="<=",
                    bound=self.max_simultaneous,
                    name=f"error-scenario:{self.name}",
                )
            )
        return [], constraints
