"""Flow facts: loop bounds, flow constraints, infeasible paths, value ranges.

Locations are given symbolically — by a code *label* inside a function or by an
instruction address — and are resolved against the reconstructed CFG by the
WCET analyzer.  All counts are *per invocation* of the surrounding function,
matching how the IPET system of :mod:`repro.wcet.ipet` normalises frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import AnnotationError

#: A code location: either a label name or an absolute instruction address.
Location = Union[str, int]


@dataclass(frozen=True)
class LoopBoundAnnotation:
    """Designer-supplied iteration bound for one loop.

    ``max_iterations`` bounds the number of loop-body executions per entry into
    the loop (equivalently: how often the loop's back edges may be taken).
    ``location`` identifies the loop by a label on (or an address inside) its
    header block.
    """

    function: str
    location: Location
    max_iterations: int
    mode: Optional[str] = None
    comment: str = ""

    def __post_init__(self) -> None:
        if self.max_iterations < 0:
            raise AnnotationError(
                f"loop bound for {self.function}/{self.location} must be >= 0"
            )


@dataclass(frozen=True)
class FlowConstraint:
    """A linear constraint over block execution counts.

    ``terms`` is a list of ``(location, coefficient)`` pairs; the constraint is

        sum(coefficient * count(location))  <relation>  bound * count(function entry)

    with ``relation`` one of ``<=``, ``==``, ``>=``.  Scaling by the entry count
    makes the constraint meaningful both for a single invocation and when the
    function is inlined into a larger IPET system.  A mutual-exclusion fact such
    as "the read path and the write path of the message handler can never
    execute in the same cycle" (Section 4.3) is expressed as
    ``read + write <= 1``.
    """

    function: str
    terms: Tuple[Tuple[Location, int], ...]
    relation: str
    bound: int
    mode: Optional[str] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.relation not in ("<=", "==", ">="):
            raise AnnotationError(f"bad flow-constraint relation {self.relation!r}")
        if not self.terms:
            raise AnnotationError("flow constraint needs at least one term")
        object.__setattr__(self, "terms", tuple((loc, int(c)) for loc, c in self.terms))


@dataclass(frozen=True)
class InfeasiblePath:
    """Marks a block (by label/address) as never executed.

    Used for mode exclusions ("in ground mode the in-air branch is infeasible")
    and for excluding error handling from the worst-case when the designer has
    established that the error case is not relevant (Section 4.3).
    """

    function: str
    location: Location
    mode: Optional[str] = None
    reason: str = ""


@dataclass(frozen=True)
class RecursionBound:
    """Maximum recursion depth for a (directly or indirectly) recursive function.

    MISRA rule 16.2 forbids recursion precisely because this number cannot be
    derived automatically; the annotation lets the analyzer handle legacy code
    that still uses it.
    """

    function: str
    max_depth: int
    mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise AnnotationError(
                f"recursion bound for {self.function} must be at least 1"
            )


@dataclass(frozen=True)
class ArgumentRange:
    """Value range of an argument register at function entry.

    This is the "design-level information about data values" used e.g. to bound
    the amount of data a message handler transfers (Section 4.3): knowing that
    ``r3`` (the length argument) is in ``[0, 16]`` lets the loop-bound analysis
    bound the copy loop automatically.
    """

    function: str
    register: str
    low: int
    high: int
    mode: Optional[str] = None

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise AnnotationError(
                f"argument range for {self.function}:{self.register} is empty"
            )
