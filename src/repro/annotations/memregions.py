"""Per-function memory-region access annotations.

Section 4.3 ("Imprecise Memory Accesses") proposes documenting, per function,
which memory areas its pointer accesses may touch: device-driver routines may
access the memory-mapped I/O region, but ordinary control code only touches
RAM.  With that annotation the timing analysis no longer has to charge the
slowest module (and invalidate the abstract data cache) for every unresolved
access.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import AnnotationError


@dataclass(frozen=True)
class MemoryRegionAnnotation:
    """Restricts unknown-address accesses of ``function`` to ``regions``.

    ``regions`` contains memory-module names of the processor's memory map
    (e.g. ``("ram",)`` or ``("ram", "device")``).  Accesses whose abstract
    address interval is already precise are unaffected — the annotation only
    caps the damage done by imprecise ones.
    """

    function: str
    regions: Tuple[str, ...]
    mode: Optional[str] = None
    comment: str = ""

    def __post_init__(self) -> None:
        if not self.regions:
            raise AnnotationError(
                f"memory-region annotation for {self.function} lists no regions"
            )
        object.__setattr__(self, "regions", tuple(self.regions))
