"""Operating modes.

Many embedded control systems have distinct operating modes (the paper's
example: *plane is on ground* vs. *plane is in air*) whose behaviours — and
therefore worst-case paths — are mutually exclusive.  A mode bundles the
annotations that hold only in that mode; the analyzer computes one (much
tighter) bound per mode instead of a single bound that mixes all modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.annotations.flowfacts import (
    ArgumentRange,
    FlowConstraint,
    InfeasiblePath,
    LoopBoundAnnotation,
)
from repro.annotations.memregions import MemoryRegionAnnotation

ModeFact = Union[
    LoopBoundAnnotation,
    FlowConstraint,
    InfeasiblePath,
    ArgumentRange,
    MemoryRegionAnnotation,
]


@dataclass
class OperatingMode:
    """A named operating mode with its mode-specific facts."""

    name: str
    description: str = ""
    facts: List[ModeFact] = field(default_factory=list)

    def add(self, fact: ModeFact) -> "OperatingMode":
        self.facts.append(fact)
        return self

    def infeasible_paths(self) -> List[InfeasiblePath]:
        return [fact for fact in self.facts if isinstance(fact, InfeasiblePath)]

    def loop_bounds(self) -> List[LoopBoundAnnotation]:
        return [fact for fact in self.facts if isinstance(fact, LoopBoundAnnotation)]

    def flow_constraints(self) -> List[FlowConstraint]:
        return [fact for fact in self.facts if isinstance(fact, FlowConstraint)]

    def argument_ranges(self) -> List[ArgumentRange]:
        return [fact for fact in self.facts if isinstance(fact, ArgumentRange)]

    def memory_regions(self) -> List[MemoryRegionAnnotation]:
        return [fact for fact in self.facts if isinstance(fact, MemoryRegionAnnotation)]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"mode {self.name!r} ({len(self.facts)} facts)"
