"""Textual annotation format.

The paper recommends that developers "instantly document the relevant source
code parts" — this module provides the file format for doing so.  Example::

    # loop bounds:  function.label  max-iterations
    loopbound handle_message.copy_loop 16

    # linear flow constraints over block execution counts (per invocation)
    flow handle_message: read_path + write_path <= 1

    # blocks that can never execute
    infeasible main.debug_dump

    # recursion depth, argument value ranges, memory regions
    recursion traverse 4
    argrange handle_message r3 0 16
    memregions can_driver ram,device

    # resolution of function pointers / computed gotos
    calltargets 0x1040 handler_a,handler_b
    branchtargets 0x1080 case0,case1,case2

    # operating modes group mode-specific facts
    mode ground {
        infeasible flight_task.airborne_branch
        loopbound flight_task.gear_loop 3
    }

    # error-handling scenarios
    errorscenario single_fault max=1 {
        handler monitor.handle_overvoltage
        handler monitor.handle_undervoltage
    }

Lines starting with ``#`` (or ``;``) are comments.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.annotations.errors_model import ErrorScenario
from repro.annotations.flowfacts import Location
from repro.annotations.modes import OperatingMode
from repro.annotations.registry import AnnotationSet

_TERM_RE = re.compile(r"^(?:(\d+)\s*\*\s*)?([A-Za-z_.][\w.]*)$")


def _parse_location(text: str, line_no: int) -> Tuple[str, Location]:
    """Split ``function.label`` or ``function.0xADDR`` into its parts."""
    if "." not in text:
        raise ParseError(
            f"expected function.label or function.0xADDR, got {text!r}", line_no
        )
    function, _, location = text.partition(".")
    if not function or not location:
        raise ParseError(f"bad location {text!r}", line_no)
    if location.startswith("0x") or location.isdigit():
        return function, int(location, 0)
    return function, location


def _parse_int(text: str, line_no: int) -> int:
    try:
        return int(text, 0)
    except ValueError as exc:
        raise ParseError(f"expected an integer, got {text!r}", line_no) from exc


class _Parser:
    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.annotations = AnnotationSet()

    def parse(self) -> AnnotationSet:
        index = 0
        while index < len(self.lines):
            index = self._parse_statement(index, self.annotations, mode=None)
        return self.annotations

    # ------------------------------------------------------------------ #
    def _clean(self, index: int) -> str:
        line = self.lines[index]
        for marker in ("#", ";"):
            position = line.find(marker)
            if position >= 0:
                line = line[:position]
        return line.strip()

    def _parse_statement(
        self, index: int, target: AnnotationSet, mode: Optional[OperatingMode]
    ) -> int:
        line_no = index + 1
        line = self._clean(index)
        if not line:
            return index + 1

        tokens = line.split()
        keyword = tokens[0].lower()

        if keyword == "mode":
            return self._parse_mode_block(index)
        if keyword == "errorscenario":
            return self._parse_error_block(index)

        if keyword == "loopbound":
            if len(tokens) < 3:
                raise ParseError("loopbound needs a location and a bound", line_no)
            function, location = _parse_location(tokens[1], line_no)
            bound = _parse_int(tokens[2], line_no)
            from repro.annotations.flowfacts import LoopBoundAnnotation

            fact = LoopBoundAnnotation(function, location, bound)
            if mode is not None:
                mode.add(fact)
            else:
                target.loop_bounds.append(fact)
        elif keyword == "infeasible":
            if len(tokens) < 2:
                raise ParseError("infeasible needs a location", line_no)
            function, location = _parse_location(tokens[1], line_no)
            from repro.annotations.flowfacts import InfeasiblePath

            fact = InfeasiblePath(function, location, reason=" ".join(tokens[2:]))
            if mode is not None:
                mode.add(fact)
            else:
                target.infeasible_paths.append(fact)
        elif keyword == "flow":
            fact = self._parse_flow(line, line_no)
            if mode is not None:
                mode.add(fact)
            else:
                target.flow_constraints.append(fact)
        elif keyword == "recursion":
            if len(tokens) != 3:
                raise ParseError("recursion needs a function and a depth", line_no)
            target.add_recursion_bound(tokens[1], _parse_int(tokens[2], line_no))
        elif keyword == "argrange":
            if len(tokens) != 5:
                raise ParseError(
                    "argrange needs: function register low high", line_no
                )
            from repro.annotations.flowfacts import ArgumentRange

            fact = ArgumentRange(
                tokens[1],
                tokens[2],
                _parse_int(tokens[3], line_no),
                _parse_int(tokens[4], line_no),
            )
            if mode is not None:
                mode.add(fact)
            else:
                target.argument_ranges.append(fact)
        elif keyword == "memregions":
            if len(tokens) != 3:
                raise ParseError("memregions needs a function and a region list", line_no)
            from repro.annotations.memregions import MemoryRegionAnnotation

            fact = MemoryRegionAnnotation(tokens[1], tuple(tokens[2].split(",")))
            if mode is not None:
                mode.add(fact)
            else:
                target.memory_regions.append(fact)
        elif keyword == "calltargets":
            if len(tokens) != 3:
                raise ParseError("calltargets needs an address and a function list", line_no)
            target.add_call_targets(_parse_int(tokens[1], line_no), tokens[2].split(","))
        elif keyword == "branchtargets":
            if len(tokens) != 3:
                raise ParseError("branchtargets needs an address and a label list", line_no)
            target.add_branch_targets(_parse_int(tokens[1], line_no), tokens[2].split(","))
        else:
            raise ParseError(f"unknown annotation keyword {keyword!r}", line_no)
        return index + 1

    # ------------------------------------------------------------------ #
    def _parse_flow(self, line: str, line_no: int):
        from repro.annotations.flowfacts import FlowConstraint

        # flow <function>: <terms> <relation> <bound>
        body = line[len("flow"):].strip()
        if ":" not in body:
            raise ParseError("flow constraint needs 'function: terms rel bound'", line_no)
        function, _, rest = body.partition(":")
        function = function.strip()
        rest = rest.strip()
        match = re.search(r"(<=|>=|==)", rest)
        if not match:
            raise ParseError("flow constraint needs a relation (<=, >=, ==)", line_no)
        relation = match.group(1)
        terms_text, bound_text = rest.split(relation, 1)
        bound = _parse_int(bound_text.strip(), line_no)
        terms: List[Tuple[Location, int]] = []
        for part in terms_text.split("+"):
            part = part.strip()
            if not part:
                continue
            term_match = _TERM_RE.match(part)
            if not term_match:
                raise ParseError(f"bad flow-constraint term {part!r}", line_no)
            coefficient = int(term_match.group(1) or 1)
            location: Location = term_match.group(2)
            if isinstance(location, str) and (location.startswith("0x") or location.isdigit()):
                location = int(location, 0)
            terms.append((location, coefficient))
        return FlowConstraint(function, tuple(terms), relation, bound)

    # ------------------------------------------------------------------ #
    def _parse_mode_block(self, index: int) -> int:
        line_no = index + 1
        line = self._clean(index)
        match = re.match(r"^mode\s+(\w+)\s*\{\s*$", line)
        if not match:
            raise ParseError("mode block must look like: mode NAME {", line_no)
        mode = OperatingMode(name=match.group(1))
        index += 1
        while index < len(self.lines):
            line = self._clean(index)
            if line == "}":
                self.annotations.add_mode(mode)
                return index + 1
            if not line:
                index += 1
                continue
            index = self._parse_statement(index, self.annotations, mode=mode)
        raise ParseError(f"mode block {mode.name!r} is not closed", line_no)

    def _parse_error_block(self, index: int) -> int:
        line_no = index + 1
        line = self._clean(index)
        match = re.match(r"^errorscenario\s+(\w+)\s+max=(\d+)\s*\{\s*$", line)
        if not match:
            raise ParseError(
                "error scenario must look like: errorscenario NAME max=N {", line_no
            )
        scenario = ErrorScenario(name=match.group(1), max_simultaneous=int(match.group(2)))
        index += 1
        while index < len(self.lines):
            inner_no = index + 1
            line = self._clean(index)
            if line == "}":
                self.annotations.add_error_scenario(scenario)
                return index + 1
            if not line:
                index += 1
                continue
            tokens = line.split()
            if tokens[0].lower() != "handler" or len(tokens) < 2:
                raise ParseError(
                    "error scenario blocks only contain 'handler function.label' lines",
                    inner_no,
                )
            function, location = _parse_location(tokens[1], inner_no)
            scenario.add_handler(function, location, " ".join(tokens[2:]))
            index += 1
        raise ParseError(f"error scenario {scenario.name!r} is not closed", line_no)


def parse_annotations(text: str) -> AnnotationSet:
    """Parse the textual annotation format into an :class:`AnnotationSet`."""
    return _Parser(text).parse()
