"""The :class:`AnnotationSet`: everything the designer told the analyzer.

The set aggregates flow facts, memory-region annotations, control-flow hints
for indirect branches/calls, operating modes and error scenarios, and can be
*resolved for a mode*: :meth:`AnnotationSet.for_mode` returns a new set in
which the selected mode's facts are merged into the base facts, which is how
the analyzer produces one bound per operating mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import AnnotationError
from repro.annotations.errors_model import ErrorScenario
from repro.annotations.flowfacts import (
    ArgumentRange,
    FlowConstraint,
    InfeasiblePath,
    Location,
    LoopBoundAnnotation,
    RecursionBound,
)
from repro.annotations.memregions import MemoryRegionAnnotation
from repro.annotations.modes import OperatingMode
from repro.cfg.reconstruct import ControlFlowHints


@dataclass
class AnnotationSet:
    """All design-level information available to one analysis run."""

    loop_bounds: List[LoopBoundAnnotation] = field(default_factory=list)
    flow_constraints: List[FlowConstraint] = field(default_factory=list)
    infeasible_paths: List[InfeasiblePath] = field(default_factory=list)
    recursion_bounds: List[RecursionBound] = field(default_factory=list)
    argument_ranges: List[ArgumentRange] = field(default_factory=list)
    memory_regions: List[MemoryRegionAnnotation] = field(default_factory=list)
    modes: Dict[str, OperatingMode] = field(default_factory=dict)
    error_scenarios: List[ErrorScenario] = field(default_factory=list)
    control_flow_hints: ControlFlowHints = field(default_factory=ControlFlowHints)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def add_loop_bound(
        self,
        function: str,
        location: Location,
        max_iterations: int,
        comment: str = "",
    ) -> "AnnotationSet":
        self.loop_bounds.append(
            LoopBoundAnnotation(function, location, max_iterations, comment=comment)
        )
        return self

    def add_flow_constraint(
        self,
        function: str,
        terms: Sequence[Tuple[Location, int]],
        relation: str,
        bound: int,
        name: str = "",
    ) -> "AnnotationSet":
        self.flow_constraints.append(
            FlowConstraint(function, tuple(terms), relation, bound, name=name)
        )
        return self

    def add_infeasible(
        self, function: str, location: Location, reason: str = ""
    ) -> "AnnotationSet":
        self.infeasible_paths.append(InfeasiblePath(function, location, reason=reason))
        return self

    def add_recursion_bound(self, function: str, max_depth: int) -> "AnnotationSet":
        self.recursion_bounds.append(RecursionBound(function, max_depth))
        return self

    def add_argument_range(
        self, function: str, register: str, low: int, high: int
    ) -> "AnnotationSet":
        self.argument_ranges.append(ArgumentRange(function, register, low, high))
        return self

    def add_memory_regions(
        self, function: str, regions: Sequence[str], comment: str = ""
    ) -> "AnnotationSet":
        self.memory_regions.append(
            MemoryRegionAnnotation(function, tuple(regions), comment=comment)
        )
        return self

    def add_mode(self, mode: OperatingMode) -> "AnnotationSet":
        if mode.name in self.modes:
            raise AnnotationError(f"duplicate operating mode {mode.name!r}")
        self.modes[mode.name] = mode
        return self

    def add_error_scenario(self, scenario: ErrorScenario) -> "AnnotationSet":
        self.error_scenarios.append(scenario)
        return self

    def add_call_targets(
        self, address: int, functions: Sequence[str]
    ) -> "AnnotationSet":
        self.control_flow_hints.add_call_targets(address, functions)
        return self

    def add_branch_targets(self, address: int, labels: Sequence[str]) -> "AnnotationSet":
        self.control_flow_hints.add_branch_targets(address, labels)
        return self

    # ------------------------------------------------------------------ #
    # Queries (used by the WCET analyzer)
    # ------------------------------------------------------------------ #
    def loop_bounds_for(self, function: str) -> List[LoopBoundAnnotation]:
        return [a for a in self.loop_bounds if a.function == function]

    def flow_constraints_for(self, function: str) -> List[FlowConstraint]:
        return [a for a in self.flow_constraints if a.function == function]

    def infeasible_for(self, function: str) -> List[InfeasiblePath]:
        return [a for a in self.infeasible_paths if a.function == function]

    def recursion_bound_for(self, function: str) -> Optional[RecursionBound]:
        for annotation in self.recursion_bounds:
            if annotation.function == function:
                return annotation
        return None

    def argument_ranges_for(self, function: str) -> List[ArgumentRange]:
        return [a for a in self.argument_ranges if a.function == function]

    def memory_regions_for(self, function: str) -> Optional[MemoryRegionAnnotation]:
        for annotation in self.memory_regions:
            if annotation.function == function:
                return annotation
        return None

    def mode_names(self) -> List[str]:
        return sorted(self.modes)

    # ------------------------------------------------------------------ #
    # Mode resolution & error-scenario lowering
    # ------------------------------------------------------------------ #
    def for_mode(self, mode_name: Optional[str]) -> "AnnotationSet":
        """Return a copy with the selected mode's facts merged in.

        ``None`` returns a copy of the base annotations (the mode-unaware
        analysis the paper calls pessimistic).
        """
        merged = AnnotationSet(
            loop_bounds=list(self.loop_bounds),
            flow_constraints=list(self.flow_constraints),
            infeasible_paths=list(self.infeasible_paths),
            recursion_bounds=list(self.recursion_bounds),
            argument_ranges=list(self.argument_ranges),
            memory_regions=list(self.memory_regions),
            modes=dict(self.modes),
            error_scenarios=list(self.error_scenarios),
            control_flow_hints=self.control_flow_hints,
        )
        if mode_name is None:
            return merged
        if mode_name not in self.modes:
            raise AnnotationError(f"unknown operating mode {mode_name!r}")
        mode = self.modes[mode_name]
        merged.loop_bounds.extend(mode.loop_bounds())
        merged.flow_constraints.extend(mode.flow_constraints())
        merged.infeasible_paths.extend(mode.infeasible_paths())
        merged.argument_ranges.extend(mode.argument_ranges())
        merged.memory_regions.extend(mode.memory_regions())
        return merged

    def with_error_scenario(self, scenario_name: str) -> "AnnotationSet":
        """Return a copy with one error scenario lowered into flow facts."""
        for scenario in self.error_scenarios:
            if scenario.name == scenario_name:
                merged = self.for_mode(None)
                infeasible, constraints = scenario.to_flow_facts()
                merged.infeasible_paths.extend(infeasible)
                merged.flow_constraints.extend(constraints)
                return merged
        raise AnnotationError(f"unknown error scenario {scenario_name!r}")

    # ------------------------------------------------------------------ #
    def merge(self, other: "AnnotationSet") -> "AnnotationSet":
        """Union of two annotation sets (modes must not collide)."""
        result = self.for_mode(None)
        result.loop_bounds.extend(other.loop_bounds)
        result.flow_constraints.extend(other.flow_constraints)
        result.infeasible_paths.extend(other.infeasible_paths)
        result.recursion_bounds.extend(other.recursion_bounds)
        result.argument_ranges.extend(other.argument_ranges)
        result.memory_regions.extend(other.memory_regions)
        result.error_scenarios.extend(other.error_scenarios)
        for name, mode in other.modes.items():
            result.add_mode(mode)
        for address, targets in other.control_flow_hints.indirect_call_targets.items():
            result.control_flow_hints.add_call_targets(address, targets)
        for address, targets in other.control_flow_hints.indirect_branch_targets.items():
            result.control_flow_hints.add_branch_targets(address, targets)
        return result

    def summary(self) -> Dict[str, int]:
        return {
            "loop_bounds": len(self.loop_bounds),
            "flow_constraints": len(self.flow_constraints),
            "infeasible_paths": len(self.infeasible_paths),
            "recursion_bounds": len(self.recursion_bounds),
            "argument_ranges": len(self.argument_ranges),
            "memory_regions": len(self.memory_regions),
            "modes": len(self.modes),
            "error_scenarios": len(self.error_scenarios),
        }
