"""Unified analysis facade: one request/result API for every front end.

The paper's workflow (Figure 1) is one pipeline — source → annotations →
decoding → analyses → report.  This package is that pipeline as a stable,
typed, serialisable API:

* :class:`Project` (:mod:`repro.api.project`) — the analysable unit: sources
  (mini-C, assembly or a built program), annotations, processor model, and
  the cache configuration, resolved through one documented precedence order;
* :class:`AnalysisService` (:mod:`repro.api.service`) — serves typed
  :class:`AnalysisRequest`\\ s and returns :class:`AnalysisResult`\\ s bundling
  per-mode WCET reports, guideline findings and cache statistics;
* :mod:`repro.api.serialize` — the versioned JSON schema every report type
  round-trips through exactly (``to_json``/``from_json``);
* :mod:`repro.api.cli` — the single ``python -m repro`` command line
  (``analyze``, ``check``, ``sweep``, ``bench``, ``report``), with
  machine-readable ``--json`` output everywhere.

Quick start::

    from repro.api import AnalysisRequest, AnalysisService, Project

    project = Project.from_workload("flight-control", processor="leon2")
    result = AnalysisService(project).analyze(AnalysisRequest(all_modes=True))
    print(result.report.wcet_cycles)
    payload = result.to_json()          # crosses process/machine boundaries

Every other entry point — :func:`repro.wcet.batch.analyze_batch`, the
differential oracle behind :func:`repro.testing.sweep.run_sweep`, the
benchmarks — is a thin consumer of this layer; new workloads and back ends
plug in here instead of growing another bespoke surface.
"""

from repro.api.project import (
    CACHE_ENV_VAR,
    PROCESSORS,
    Project,
    ProjectError,
    resolve_processor,
    resolve_summary_store,
)
from repro.api.serialize import SCHEMA_VERSION, SchemaError, from_json, to_json
from repro.api.service import (
    AnalysisRequest,
    AnalysisResult,
    AnalysisService,
    RequestError,
)

__all__ = [
    "AnalysisRequest",
    "AnalysisResult",
    "AnalysisService",
    "RequestError",
    "CACHE_ENV_VAR",
    "PROCESSORS",
    "Project",
    "ProjectError",
    "SCHEMA_VERSION",
    "SchemaError",
    "from_json",
    "resolve_processor",
    "resolve_summary_store",
    "to_json",
]
