"""The single ``python -m repro`` command line, built on the facade.

Subcommands (each supports machine-readable ``--json`` output on stdout; with
``--json`` all progress chatter moves to stderr so stdout stays parseable):

* ``analyze`` — WCET/BCET analysis of a workload, a mini-C file or an
  assembly file, optionally per operating mode / error scenario;
* ``check`` — the MISRA-C predictability checker over a mini-C file;
* ``sweep`` — the differential soundness sweep over generated programs
  (replaces ``python -m repro.testing``, which now delegates here);
* ``bench`` — the tracked macro perf workload (replaces
  ``python -m repro.benchmarks``, which now delegates here);
* ``report`` — pretty-print (or re-emit) a previously saved ``--json`` file;
* ``serve`` — run the persistent analysis server (:mod:`repro.server`);
  ``analyze --remote URL`` sends the same request to such a server instead
  of analysing locally (results are bit-identical).

Examples::

    python -m repro analyze --workload flight-control --all-modes --json
    python -m repro analyze --source task.c --annotations task.ann --processor leon2
    python -m repro check examples/problematic.c
    python -m repro sweep --count 25 --jobs 0
    python -m repro bench --check-regression --no-append
    python -m repro report analysis.json
    python -m repro serve --port 8472 --jobs 4 --cache-dir .repro-cache
    python -m repro analyze --workload flight-control --remote http://127.0.0.1:8472

Exit codes (documented contract, see docs/api.md):

* ``0`` — success;
* ``1`` — the operation ran and failed (analysis error, strict-check
  findings, sweep violations, benchmark regression, unreachable server);
* ``2`` — the invocation was unusable (unknown flags, missing/malformed
  input files, invalid flag combinations) — argparse's own convention.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__
from repro.api.project import PROCESSORS, Project, ProjectError
from repro.api.serialize import SchemaError, from_json, to_json
from repro.api.service import AnalysisRequest, AnalysisService
from repro.errors import ReproError

_PROCESSOR_CHOICES = sorted(PROCESSORS)

#: The documented exit-code contract of every subcommand.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2


def _emit(args, payload: dict, text: str) -> None:
    """Write the subcommand's primary output (JSON or text, file or stdout)."""
    rendered = json.dumps(payload, indent=2) if args.json else text
    if getattr(args, "output", None):
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
            handle.write("\n")
    else:
        print(rendered)


def _say(args, *values) -> None:
    """Progress chatter: stderr under --json, stdout otherwise."""
    print(*values, file=sys.stderr if args.json else sys.stdout)


def _cache_argument(args) -> str:
    if getattr(args, "no_cache", False):
        return "off"
    if getattr(args, "cache_dir", None):
        return args.cache_dir
    return "auto"


def _spec_from_args(args):
    """Build the wire :class:`~repro.server.wire.ProjectSpec` the analyze
    subcommand describes — one spec serves both the local path (built into a
    project here) and the ``--remote`` path (shipped to a server)."""
    from repro.server.wire import ProjectSpec

    annotations = None
    if args.annotations:
        with open(args.annotations, "r", encoding="utf-8") as handle:
            annotations = handle.read()
    if args.workload:
        return ProjectSpec(
            workload=args.workload,
            processor=args.processor,
            entry=args.entry,
            annotations=annotations,
        )
    import os

    path = args.source or args.asm
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    kind = "assembly" if (args.asm or path.endswith((".s", ".asm"))) else "source"
    return ProjectSpec(
        **{kind: text},
        processor=args.processor,
        entry=args.entry,
        annotations=annotations,
        name=os.path.basename(path),
    )


def _project_from_args(args) -> Project:
    return _spec_from_args(args).to_project(cache=_cache_argument(args))


# --------------------------------------------------------------------------- #
# analyze
# --------------------------------------------------------------------------- #
def _cmd_analyze_remote(args) -> int:
    from repro.server.client import ClientError, RemoteError, ServerClient
    from repro.server.wire import WireError

    if args.cache_dir or args.no_cache:
        print(
            "note: cache flags are ignored with --remote (the server owns "
            "its summary store)",
            file=sys.stderr,
        )
    try:
        spec = _spec_from_args(args)
    except (OSError, WireError, ProjectError) as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    request = AnalysisRequest(
        entry=args.entry,
        mode=args.mode,
        all_modes=args.all_modes,
        error_scenario=args.error_scenario,
        check_guidelines=args.guidelines,
        label=args.label,
    )
    try:
        result = ServerClient(args.remote).analyze(
            spec, request, lane=args.lane, timeout=args.timeout
        )
    except (ClientError, RemoteError) as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    _emit(args, to_json(result), result.format_text())
    return EXIT_OK


def _trace_export(path: str):
    """Context manager: install a fresh tracer around one CLI command and
    write everything it recorded to ``path`` as Chrome trace-event JSON."""
    import contextlib

    from repro.obs import trace as obs_trace

    @contextlib.contextmanager
    def _manager():
        previous = obs_trace.install(obs_trace.Tracer())
        span = obs_trace.begin("repro-analyze")
        try:
            yield
        finally:
            obs_trace.end(span)
            tracer = obs_trace.active()
            spans = tracer.drain() if tracer is not None else []
            obs_trace.install(previous)
            try:
                obs_trace.write_chrome_trace(path, spans)
                print(
                    f"wrote trace ({len(spans)} spans) to {path}", file=sys.stderr
                )
            except OSError as exc:
                print(
                    f"warning: cannot write trace to {path}: {exc}",
                    file=sys.stderr,
                )

    return _manager()


def cmd_analyze(args) -> int:
    if args.trace:
        with _trace_export(args.trace):
            return _cmd_analyze_impl(args)
    return _cmd_analyze_impl(args)


def _cmd_analyze_impl(args) -> int:
    if args.remote:
        return _cmd_analyze_remote(args)
    try:
        project = _project_from_args(args)
    except (OSError, ProjectError) as exc:
        # A project we cannot even assemble is a usage error, not an
        # analysis outcome.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    try:
        service = AnalysisService(project)
        result = service.analyze(
            AnalysisRequest(
                entry=args.entry,
                mode=args.mode,
                all_modes=args.all_modes,
                error_scenario=args.error_scenario,
                check_guidelines=args.guidelines,
                label=args.label,
            )
        )
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    _emit(args, to_json(result), result.format_text())
    return EXIT_OK


# --------------------------------------------------------------------------- #
# check
# --------------------------------------------------------------------------- #
def cmd_check(args) -> int:
    try:
        project = Project.from_file(args.file, cache="off")
    except (OSError, ProjectError) as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        report = AnalysisService(project).check_guidelines()
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    _emit(args, to_json(report), report.format_text())
    if args.strict and report.tier_one_findings():
        return EXIT_FAILURE
    return EXIT_OK


# --------------------------------------------------------------------------- #
# sweep (the differential soundness harness)
# --------------------------------------------------------------------------- #
def cmd_sweep(args) -> int:
    from repro.testing.corpus import case_payload, load_corpus
    from repro.testing.generator import generate_case, render_case
    from repro.testing.oracle import DifferentialOracle, OracleConfig
    from repro.testing.shrink import Shrinker
    from repro.testing.sweep import resolve_jobs, run_sweep

    if args.output and not args.json:
        print("error: sweep --output requires --json", file=sys.stderr)
        return EXIT_USAGE
    config = OracleConfig(
        processor_factory=PROCESSORS[args.processor],
        max_input_vectors=args.inputs,
        cache_dir=args.cache_dir,
    )
    jobs = resolve_jobs(args.jobs)
    _say(
        args,
        f"differential sweep: {args.count} programs, base seed {args.base_seed}, "
        f"processor {args.processor!r}, {args.inputs} input vectors each, "
        f"{jobs} worker(s)",
    )
    sweep = run_sweep(
        range(args.base_seed, args.base_seed + args.count), config, jobs=jobs
    )
    failures = []
    for result in sweep.results:
        if args.verbose or not result.ok:
            _say(args, f"  seed {result.seed:>6d}: {result.summary()}")
        if not result.ok:
            failures.append((result.seed, generate_case(result.seed), result))

    elapsed = sweep.seconds
    _say(
        args,
        f"checked {args.count} programs / {sweep.total_runs} concrete runs in "
        f"{elapsed:.1f}s ({elapsed / max(args.count, 1) * 1000:.0f} ms/program); "
        f"{len(failures)} violating",
    )

    corpus_cases = []
    if args.corpus:
        oracle = DifferentialOracle(config)
        corpus_cases = load_corpus()
        _say(args, f"replaying {len(corpus_cases)} corpus cases")
        for case in corpus_cases:
            result = oracle.check(case)
            if args.verbose or not result.ok:
                _say(args, f"  corpus {case.name}: {result.summary()}")
            if not result.ok:
                failures.append((None, case, result))

    for seed, case, result in failures:
        _say(args, "")
        origin = f"seed {seed}" if seed is not None else f"corpus {case.name}"
        _say(args, f"=== VIOLATION ({origin}) " + "=" * 40)
        for violation in result.violations:
            _say(args, f"  {violation}")
        if args.no_shrink or seed is None:
            _say(args, result.source)
            continue
        shrunk = Shrinker(config).shrink(case)
        _say(
            args,
            f"  shrunk to {shrunk.line_count} lines "
            f"({shrunk.reductions} reductions, {shrunk.checks} oracle checks):",
        )
        _say(args, render_case(shrunk.case).source)
        kinds = ",".join(shrunk.result.violation_kinds())
        payload = case_payload(
            shrunk.case,
            f"Found by a differential sweep (seed {seed}): {kinds}. "
            "Minimised by the shrinker; describe the root cause here.",
            name=f"regress-seed-{seed}",
        )
        _say(args, "  corpus payload (save as tests/corpus/<name>.json after fixing):")
        _say(args, json.dumps(payload, indent=2))
        _say(args, f"  reproduce with: generate_case({seed}) — see docs/testing.md")

    if args.json:
        summary = {
            "schema": 1,
            "kind": "SweepSummary",
            "programs": args.count,
            "base_seed": args.base_seed,
            "processor": args.processor,
            "jobs": jobs,
            "runs": sweep.total_runs,
            "seconds": sweep.seconds,
            "corpus_cases_replayed": len(corpus_cases),
            "violating": len(failures),
            "failures": [
                {
                    "seed": seed,
                    "case": result.case_name,
                    "kinds": result.violation_kinds(),
                }
                for seed, _, result in failures
            ],
            "cache_stats": sweep.cache_stats(),
        }
        _emit(args, summary, "")
    return 1 if failures else 0


# --------------------------------------------------------------------------- #
# fuzz (server-path differential fuzzing + wire fuzzing; see docs/testing.md)
# --------------------------------------------------------------------------- #
def cmd_fuzz(args) -> int:
    from repro.testing.fuzz import run_fuzz

    if args.output and not args.json:
        print("error: fuzz --output requires --json", file=sys.stderr)
        return EXIT_USAGE
    if args.chaos:
        return _cmd_fuzz_chaos(args)
    _say(
        args,
        f"fuzz: {args.programs} programs from seed {args.base_seed}, "
        f"{args.jobs} server worker(s), {args.inputs} input vectors each, "
        f"{args.wire_iterations} wire mutations",
    )
    summary = run_fuzz(
        programs=args.programs,
        jobs=args.jobs,
        base_seed=args.base_seed,
        processor=args.processor,
        inputs=args.inputs,
        shrink=not args.no_shrink,
        save_corpus=not args.no_corpus,
        corpus_dir=args.corpus_dir,
        wire_iterations=args.wire_iterations,
        progress=lambda message: _say(args, f"  {message}"),
    )
    _say(
        args,
        f"fuzzed {summary.programs} programs / {summary.total_runs} concrete "
        f"runs in {summary.seconds:.1f}s; presets "
        + ", ".join(f"{k}={v}" for k, v in sorted(summary.preset_counts.items())),
    )
    for violation in summary.violations:
        _say(args, f"  VIOLATION {violation}")
        if violation.corpus_path:
            _say(args, f"    corpus seed filed: {violation.corpus_path}")
    if summary.wire is not None:
        status = "ok" if summary.wire.ok else "FAILED"
        _say(
            args,
            f"wire fuzz: {summary.wire.iterations} malformed requests, "
            f"{len(summary.wire.violations)} mishandled ({status})",
        )
        for violation in summary.wire.violations:
            _say(args, f"  WIRE VIOLATION {violation}")
    if not summary.ok and summary.failing_seeds():
        _say(
            args,
            "reproduce failing seeds with: "
            + ", ".join(f"generate_case({seed})" for seed in summary.failing_seeds()),
        )
    if args.json:
        _emit(args, summary.to_json(), "")
    return EXIT_OK if summary.ok else EXIT_FAILURE


def _cmd_fuzz_chaos(args) -> int:
    """``repro fuzz --chaos``: the seeded fault-injection sweep."""
    from repro.testing.fuzz import run_chaos

    if args.jobs < 2:
        print(
            "error: --chaos needs --jobs >= 2 (kill/hang injection requires "
            "the supervised worker pool)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    _say(
        args,
        f"chaos: {args.chaos_jobs} jobs from seed {args.base_seed} against "
        f"{args.jobs} supervised worker(s) (kill {args.kill_rate:.0%}, "
        f"hang {args.hang_rate:.0%}, drop {args.drop_rate:.0%}, "
        f"queue bound {args.max_queue}, deadline {args.job_timeout:.0f}s)",
    )
    summary = run_chaos(
        jobs_total=args.chaos_jobs,
        workers=args.jobs,
        seed=args.base_seed,
        kill_rate=args.kill_rate,
        hang_rate=args.hang_rate,
        job_timeout=args.job_timeout,
        max_queue=args.max_queue,
        drop_rate=args.drop_rate,
        progress=lambda message: _say(args, f"  {message}"),
    )
    _say(
        args,
        f"chaos summary: {summary.injected_total} injected fault(s) — "
        + ", ".join(f"{k}={v}" for k, v in sorted(summary.injected.items())),
    )
    for violation in summary.violations:
        _say(args, f"  VIOLATION {violation}")
    if args.min_faults and summary.injected_total < args.min_faults:
        # An under-target run means the knobs injected too little chaos to
        # mean anything — fail loudly rather than green-wash.
        print(
            f"error: only {summary.injected_total} faults injected "
            f"(--min-faults {args.min_faults}); raise the rates or job count",
            file=sys.stderr,
        )
        return EXIT_FAILURE
    if args.json:
        _emit(args, summary.to_json(), "")
    _say(args, f"chaos: {'ok' if summary.ok else 'FAILED'}")
    return EXIT_OK if summary.ok else EXIT_FAILURE


# --------------------------------------------------------------------------- #
# bench (the tracked macro perf workload)
# --------------------------------------------------------------------------- #
def cmd_bench(args) -> int:
    from repro.benchmarks import (
        append_record,
        check_regression,
        measure_trace_overhead,
        run_macro_workload,
    )

    profile = args.profile or bool(args.profile_out)
    if args.trace_overhead and profile:
        print(
            "error: --trace-overhead and --profile are mutually exclusive "
            "(profiler overhead would drown the tracing overhead)",
            file=sys.stderr,
        )
        return EXIT_USAGE

    if args.trace_overhead:
        _say(
            args,
            "running macro workload 4x (untraced/traced interleaved) to "
            "measure tracing overhead...",
        )
        record = measure_trace_overhead(jobs=args.jobs)
    elif profile:
        import cProfile
        import pstats

        _say(args, "running macro workload (analyses + 50-seed differential sweep)...")
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            record = run_macro_workload(
                args.label, jobs=args.jobs, cache_dir=args.cache_dir
            )
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(25)
            if args.profile_out:
                stats.dump_stats(args.profile_out)
                _say(args, f"wrote full profile stats to {args.profile_out}")
    else:
        _say(args, "running macro workload (analyses + 50-seed differential sweep)...")
        record = run_macro_workload(args.label, jobs=args.jobs, cache_dir=args.cache_dir)
    record.label = args.label

    _say(args, f"total: {record.total_seconds:.2f}s")
    for phase, seconds in sorted(record.phases.items()):
        _say(args, f"  {phase:<28s} {seconds:8.3f}s")
    for counter, count in sorted(record.counters.items()):
        _say(args, f"  {counter:<28s} {count:8d}")
    _say(args, f"  sweep checksum: {record.identity['sweep_checksum']}")
    cache = record.cache
    for tier in ("tier1", "tier2"):
        hits = cache.get(f"{tier}_hits", 0)
        misses = cache.get(f"{tier}_misses", 0)
        rate = hits / (hits + misses) if hits + misses else 0.0
        _say(
            args,
            f"  summary cache {tier}: {hits} hits / {misses} misses ({rate:.0%})",
        )
    if record.identity["sweep_violations"]:
        print(
            f"ERROR: {record.identity['sweep_violations']} soundness violations "
            "during the benchmark sweep",
            file=sys.stderr,
        )
        return EXIT_FAILURE

    status = 0
    if args.trace_overhead:
        overhead = record.extra["trace_overhead"]
        _say(
            args,
            f"trace overhead: {overhead['overhead_fraction']:+.1%} "
            f"({overhead['untraced_seconds']:.2f}s untraced vs "
            f"{overhead['traced_seconds']:.2f}s traced, "
            f"{overhead['spans_per_run']} spans/run)",
        )
        if overhead["overhead_fraction"] > args.max_trace_overhead:
            print(
                f"trace overhead check FAILED: {overhead['overhead_fraction']:.1%} "
                f"> budget {args.max_trace_overhead:.1%}",
                file=sys.stderr,
            )
            status = 1
    if args.check_regression:
        problem = check_regression(args.output, record, args.max_regression)
        if problem is None:
            _say(args, "regression check: OK (within budget of committed baseline)")
        else:
            print(f"regression check FAILED: {problem}", file=sys.stderr)
            status = 1

    if args.measurement_out:
        with open(args.measurement_out, "w", encoding="utf-8") as handle:
            json.dump(record.to_json(), handle, indent=2)
            handle.write("\n")
        _say(args, f"wrote measurement to {args.measurement_out}")

    if not args.no_append:
        append_record(args.output, record)
        _say(args, f"appended entry {record.label!r} to {args.output}")

    if args.json:
        print(json.dumps(record.to_json(), indent=2))
    return status


# --------------------------------------------------------------------------- #
# report (pretty-print a saved --json file)
# --------------------------------------------------------------------------- #
def cmd_report(args) -> int:
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        obj = from_json(data)
    except (OSError, json.JSONDecodeError, SchemaError) as exc:
        # Missing or malformed input is a usage error: exit 2, never 0.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_FAILURE
    text = obj.format_text() if hasattr(obj, "format_text") else repr(obj)
    _emit(args, to_json(obj), text)
    return EXIT_OK


# --------------------------------------------------------------------------- #
# serve (the persistent analysis server — see repro.server / docs/server.md)
# --------------------------------------------------------------------------- #
def cmd_serve(args) -> int:
    import signal
    import threading

    from repro.server.http import AnalysisServer
    from repro.server.workers import DEFAULT_JOB_TIMEOUT

    log_stream = None
    if args.log_json == "-":
        log_stream = sys.stderr
    elif args.log_json:
        try:
            log_stream = open(args.log_json, "a", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot open --log-json {args.log_json}: {exc}", file=sys.stderr)
            return EXIT_USAGE
    try:
        server = AnalysisServer(
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            verbose=args.verbose,
            max_queue=args.max_queue,
            job_timeout=(
                args.job_timeout
                if args.job_timeout is not None
                else DEFAULT_JOB_TIMEOUT
            ),
            trace_dir=args.trace_dir,
            log_stream=log_stream,
        )
    except OSError as exc:  # port in use, unbindable host, ...
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ValueError as exc:  # bad --max-queue and friends
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())

    server.start()
    # Parseable by wrapper scripts (CI waits for this line): keep the format.
    print(
        f"repro server listening on {server.url} "
        f"(workers={server.pool.jobs}, cache={args.cache_dir or 'none'})",
        flush=True,
    )
    stop.wait()
    print("repro server: shutting down (draining workers)...", flush=True)
    server.shutdown()
    stats = server.stats()
    print(
        f"repro server: done — {stats.submitted} submissions, "
        f"{stats.executed} executions, {stats.dedup_hits} dedup hits",
        flush=True,
    )
    return EXIT_OK


# --------------------------------------------------------------------------- #
def _add_version(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="WCET predictability toolkit — one CLI over the repro.api facade",
        epilog="exit codes: 0 success, 1 operation failed, 2 unusable invocation",
    )
    _add_version(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    # analyze ----------------------------------------------------------- #
    analyze = sub.add_parser(
        "analyze", help="static WCET/BCET analysis of one program"
    )
    target = analyze.add_mutually_exclusive_group(required=True)
    target.add_argument("--workload", help="named workload from the catalog")
    target.add_argument("--source", help="mini-C source file")
    target.add_argument("--asm", help="textual-assembly file")
    analyze.add_argument("--annotations", help="textual annotation file")
    analyze.add_argument(
        "--processor", choices=_PROCESSOR_CHOICES, default="simple",
        help="processor timing model",
    )
    analyze.add_argument("--entry", default=None, help="entry function")
    analyze.add_argument("--mode", default=None, help="operating mode to analyse")
    analyze.add_argument(
        "--all-modes", action="store_true",
        help="analyse the mode-unaware case plus every declared mode",
    )
    analyze.add_argument("--error-scenario", default=None)
    analyze.add_argument(
        "--guidelines", action="store_true",
        help="also run the MISRA predictability checker (mini-C sources only)",
    )
    analyze.add_argument("--label", default="", help="label recorded in the result")
    analyze.add_argument("--cache-dir", default=None, help="persistent summary store")
    analyze.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent store even if REPRO_CACHE_DIR is set",
    )
    analyze.add_argument("--json", action="store_true", help="JSON output")
    analyze.add_argument("--output", default=None, help="write output to this file")
    analyze.add_argument(
        "--remote", default=None, metavar="URL",
        help="send the request to a running analysis server "
        "(python -m repro serve) instead of analysing locally; results are "
        "bit-identical",
    )
    analyze.add_argument(
        "--lane", choices=["interactive", "batch"], default="interactive",
        help="scheduling lane for --remote submissions (default: interactive)",
    )
    analyze.add_argument(
        "--timeout", type=float, default=None,
        help="seconds to wait for a --remote result (default: no limit)",
    )
    analyze.add_argument(
        "--trace", default=None, metavar="PATH",
        help="export a Chrome trace-event JSON of the analysis to PATH "
        "(open in Perfetto / chrome://tracing; works with --remote too — "
        "the trace context rides the wire, server-side spans are exported "
        "by the server's --trace-dir)",
    )
    analyze.set_defaults(func=cmd_analyze)

    # check ------------------------------------------------------------- #
    check = sub.add_parser(
        "check", help="MISRA-C predictability check of a mini-C file"
    )
    check.add_argument("file", help="mini-C source file")
    check.add_argument(
        "--strict", action="store_true",
        help="exit non-zero when tier-one findings exist",
    )
    check.add_argument("--json", action="store_true", help="JSON output")
    check.add_argument("--output", default=None, help="write output to this file")
    check.set_defaults(func=cmd_check)

    # sweep ------------------------------------------------------------- #
    sweep = sub.add_parser(
        "sweep", help="differential soundness sweep over generated programs"
    )
    sweep.add_argument("--count", type=int, default=25, help="programs to generate")
    sweep.add_argument("--base-seed", type=int, default=1, help="first seed")
    sweep.add_argument(
        "--processor", choices=_PROCESSOR_CHOICES, default="simple",
        help="processor timing model",
    )
    sweep.add_argument(
        "--inputs", type=int, default=4, help="input vectors per program"
    )
    sweep.add_argument(
        "--corpus", action="store_true", help="also replay the checked-in corpus"
    )
    sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep (1 = serial, 0 = all cores)",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="persistent function-summary cache directory shared by all "
        "workers (re-running the same seeds skips the analysis work; "
        "results are bit-identical either way)",
    )
    sweep.add_argument("--verbose", action="store_true", help="per-program lines")
    sweep.add_argument(
        "--no-shrink", action="store_true", help="skip shrinking on failure"
    )
    sweep.add_argument("--json", action="store_true", help="JSON summary on stdout")
    sweep.add_argument("--output", default=None, help="write output to this file")
    sweep.set_defaults(func=cmd_sweep)

    # fuzz -------------------------------------------------------------- #
    fuzz = sub.add_parser(
        "fuzz",
        help="fuzz the engine through the server path (grammar presets, "
        "bit-identity vs the direct facade, wire-level mutations)",
    )
    fuzz.add_argument(
        "--programs", type=int, default=200, help="programs to generate"
    )
    fuzz.add_argument("--base-seed", type=int, default=1, help="first seed")
    fuzz.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes of the embedded analysis server "
        "(1 = inline, 0 = all cores)",
    )
    fuzz.add_argument(
        "--processor", choices=_PROCESSOR_CHOICES, default="simple",
        help="processor timing model",
    )
    fuzz.add_argument(
        "--inputs", type=int, default=3, help="input vectors per program"
    )
    fuzz.add_argument(
        "--wire-iterations", type=int, default=200,
        help="malformed wire requests to throw at the server (0 = skip)",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true", help="skip shrinking on failure"
    )
    fuzz.add_argument(
        "--no-corpus", action="store_true",
        help="do not auto-file shrunk violations into tests/corpus/",
    )
    fuzz.add_argument(
        "--corpus-dir", default=None,
        help="where to file shrunk violations (default: tests/corpus)",
    )
    fuzz.add_argument("--json", action="store_true", help="JSON summary on stdout")
    fuzz.add_argument("--output", default=None, help="write output to this file")
    fuzz.add_argument(
        "--chaos", action="store_true",
        help="run the fault-injection sweep instead: seeded worker kills, "
        "deadline hangs, store corruption and dropped HTTP responses "
        "against a live server (docs/server.md, \"Fault tolerance\")",
    )
    fuzz.add_argument(
        "--chaos-jobs", type=int, default=30,
        help="distinct analysis jobs the chaos sweep submits",
    )
    fuzz.add_argument(
        "--kill-rate", type=float, default=0.3,
        help="chaos: probability a job's first attempt kills its worker",
    )
    fuzz.add_argument(
        "--hang-rate", type=float, default=0.2,
        help="chaos: probability a job's first attempt hangs past its deadline",
    )
    fuzz.add_argument(
        "--drop-rate", type=float, default=0.25,
        help="chaos: probability the proxy drops an HTTP response",
    )
    fuzz.add_argument(
        "--job-timeout", type=float, default=10.0,
        help="chaos: per-job wall-clock deadline (seconds)",
    )
    fuzz.add_argument(
        "--max-queue", type=int, default=4,
        help="chaos: per-lane admission-control bound on queued executions",
    )
    fuzz.add_argument(
        "--min-faults", type=int, default=0,
        help="chaos: fail unless at least this many faults were injected "
        "(guards CI against a silently-tame run)",
    )
    fuzz.set_defaults(func=cmd_fuzz)

    # bench ------------------------------------------------------------- #
    bench = sub.add_parser(
        "bench", help="run the macro perf workload and track BENCH_perf.json"
    )
    bench.add_argument(
        "--output", default="BENCH_perf.json", help="trajectory file (repo root)"
    )
    bench.add_argument("--label", default="local run", help="entry label")
    bench.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep half (1 = serial, 0 = all cores)",
    )
    bench.add_argument(
        "--cache-dir", default=None,
        help="persistent function-summary store for both halves; a first "
        "(cold) pass over a fresh directory fills it, a second (warm) pass "
        "reuses it with bit-identical results",
    )
    bench.add_argument(
        "--no-append", action="store_true",
        help="measure only; do not write the entry to the trajectory file",
    )
    bench.add_argument(
        "--measurement-out", default=None,
        help="also write the fresh measurement (single entry) to this file",
    )
    bench.add_argument(
        "--check-regression", action="store_true",
        help="fail if wall-clock regresses beyond --max-regression vs the "
        "last committed entry, or if analysis results changed",
    )
    bench.add_argument(
        "--max-regression", type=float, default=0.20,
        help="allowed fractional slowdown for --check-regression (default 0.20)",
    )
    bench.add_argument(
        "--json", action="store_true", help="print the measurement JSON on stdout"
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="wrap the workload in cProfile and print the top-25 functions "
        "by cumulative time to stderr (the measured seconds then include "
        "profiler overhead; do not append such runs)",
    )
    bench.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="dump the full cProfile stats to PATH (implies --profile; load "
        "with pstats.Stats(PATH) or snakeviz)",
    )
    bench.add_argument(
        "--trace-overhead", action="store_true",
        help="run the workload untraced and traced (interleaved, best-of-2 "
        "each) and report the tracing overhead; the appended entry is the "
        "untraced one with the measurement under 'extra'",
    )
    bench.add_argument(
        "--max-trace-overhead", type=float, default=0.05,
        help="fail --trace-overhead runs whose overhead exceeds this "
        "fraction (default 0.05)",
    )
    bench.set_defaults(func=cmd_bench)

    # report ------------------------------------------------------------ #
    report = sub.add_parser(
        "report", help="pretty-print a saved --json analysis/check result"
    )
    report.add_argument("file", help="JSON file written by analyze/check --json")
    report.add_argument(
        "--json", action="store_true", help="re-emit normalised JSON instead"
    )
    report.add_argument("--output", default=None, help="write output to this file")
    report.set_defaults(func=cmd_report)

    # serve ------------------------------------------------------------- #
    serve = sub.add_parser(
        "serve", help="run the persistent analysis server (see docs/server.md)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8472,
        help="TCP port (0 = pick an ephemeral port; default 8472)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = analyse in-process, 0 = all cores)",
    )
    serve.add_argument(
        "--cache-dir", default=None,
        help="persistent function-summary store shared by all workers",
    )
    serve.add_argument(
        "--max-queue", type=int, default=None,
        help="admission control: max queued executions per lane; over-limit "
        "submissions get 429 with a Retry-After hint (default: unbounded)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None,
        help="default per-job wall-clock deadline in seconds; clients can "
        "tighten it per submission (default 300; enforced with --jobs >= 2)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="export one Chrome trace-event JSON per completed trace to DIR "
        "(clients submitting without a trace context get server-minted ids)",
    )
    serve.add_argument(
        "--log-json", default=None, metavar="PATH",
        help="write structured JSON-lines logs (requests, worker lifecycle, "
        "job outcomes) to PATH ('-' = stderr)",
    )
    serve.set_defaults(func=cmd_serve)

    for subparser in sub.choices.values():
        _add_version(subparser)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
