"""The :class:`Project` — one analysable unit of source + configuration.

A project bundles everything the analysis pipeline consumes:

* **sources** — mini-C text, textual assembly, or an already-built
  :class:`~repro.ir.program.Program` (exactly one of the three);
* **annotations** — an :class:`~repro.annotations.registry.AnnotationSet`, or
  the textual annotation format of :mod:`repro.annotations.parser`;
* **processor** — a :class:`~repro.hardware.processor.ProcessorConfig`, a
  factory, or one of the named models (``simple``, ``leon2``, ``mpc5554``,
  ``hcs12x``);
* **cache configuration** — where (if anywhere) the persistent
  function-summary store lives, resolved through a single documented
  precedence order (see :func:`resolve_summary_store`).

Compilation is lazy and memoised: :meth:`Project.build` compiles the sources
to a :class:`~repro.ir.program.Program` once, :meth:`Project.compilation_unit`
parses the mini-C AST once (for the guideline checker).  Every front end —
the ``python -m repro`` CLI, :func:`repro.wcet.batch.analyze_batch`, the
differential oracle, the benchmarks — goes through a project instead of
re-implementing source loading and cache wiring.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Union

from repro.annotations.parser import parse_annotations
from repro.annotations.registry import AnnotationSet
from repro.cache import SummaryStore, configured_store
from repro.errors import ReproError
from repro.hardware.processor import (
    ProcessorConfig,
    hcs12x_like,
    leon2_like,
    mpc5554_like,
    simple_scalar,
)
from repro.ir.asmparser import parse_assembly
from repro.ir.program import Program
from repro.minic import ast
from repro.minic.codegen import CodeGenerator
from repro.minic.cparser import parse_source
from repro.minic.typecheck import check_types


class ProjectError(ReproError):
    """Invalid project definition (conflicting sources, unknown names, ...)."""


#: The named processor timing models every CLI accepts.
PROCESSORS: Dict[str, Callable[[], ProcessorConfig]] = {
    "simple": simple_scalar,
    "leon2": leon2_like,
    "mpc5554": mpc5554_like,
    "hcs12x": hcs12x_like,
}

#: Environment variable naming the default persistent summary-store directory.
CACHE_ENV_VAR = "REPRO_CACHE_DIR"


def resolve_processor(
    processor: Union[None, str, ProcessorConfig, Callable[[], ProcessorConfig]],
) -> ProcessorConfig:
    """Accept a config instance, a factory, a model name, or ``None``."""
    if processor is None:
        return simple_scalar()
    if isinstance(processor, ProcessorConfig):
        return processor
    if callable(processor):
        return processor()
    try:
        return PROCESSORS[processor]()
    except KeyError:
        raise ProjectError(
            f"unknown processor {processor!r}; available: "
            f"{', '.join(sorted(PROCESSORS))}"
        ) from None


def resolve_summary_store(
    cache: Union[None, str, SummaryStore] = "auto",
) -> Optional[SummaryStore]:
    """Resolve the persistent function-summary store, one precedence order.

    This is the *single* place cache wiring is decided (every entry point
    used to thread its own ``cache_dir``).  Precedence, highest first:

    1. an explicit :class:`~repro.cache.SummaryStore` instance — used as-is;
    2. an explicit directory path — a store is opened there;
    3. ``"off"`` or ``None`` — caching disabled, full stop (the differential
       oracle uses this: its contract is that no global default can leak in);
    4. ``"auto"`` (the default):
       a. the ``REPRO_CACHE_DIR`` environment variable, if set and non-empty;
       b. the process-global store installed via :func:`repro.cache.configure`;
       c. otherwise no store (tier-1 in-process caching still applies).
    """
    if cache is None or cache == "off":
        return None
    if isinstance(cache, SummaryStore):
        return cache
    if cache != "auto":
        return SummaryStore(str(cache))
    env_dir = os.environ.get(CACHE_ENV_VAR, "")
    if env_dir:
        return SummaryStore(env_dir)
    return configured_store()


class Project:
    """One program (plus annotations, processor, cache config) to analyse."""

    def __init__(
        self,
        *,
        program: Optional[Program] = None,
        source: Optional[str] = None,
        assembly: Optional[str] = None,
        entry: Optional[str] = None,
        annotations: Union[None, str, AnnotationSet] = None,
        processor: Union[None, str, ProcessorConfig, Callable[[], ProcessorConfig]] = None,
        cache: Union[None, str, SummaryStore] = "auto",
        name: str = "",
    ):
        supplied = [s for s in (program, source, assembly) if s is not None]
        if len(supplied) != 1:
            raise ProjectError(
                "a Project needs exactly one of program=, source= or assembly="
            )
        self.name = name
        self.entry = entry
        self.source = source
        self.assembly = assembly
        self.processor = resolve_processor(processor)
        self.cache = cache
        if annotations is None:
            self.annotations = AnnotationSet()
        elif isinstance(annotations, AnnotationSet):
            self.annotations = annotations
        else:
            self.annotations = parse_annotations(annotations)
        self._program: Optional[Program] = program
        self._unit: Optional[ast.CompilationUnit] = None
        self._store_resolved = False
        self._store: Optional[SummaryStore] = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_source(cls, source: str, **kwargs) -> "Project":
        """Project over mini-C source text."""
        return cls(source=source, **kwargs)

    @classmethod
    def from_assembly(cls, assembly: str, **kwargs) -> "Project":
        """Project over the textual assembly format."""
        return cls(assembly=assembly, **kwargs)

    @classmethod
    def from_program(cls, program: Program, **kwargs) -> "Project":
        """Project over an already-built IR program."""
        return cls(program=program, **kwargs)

    @classmethod
    def from_workload(cls, workload_name: str, **kwargs) -> "Project":
        """Project over a named workload from :mod:`repro.workloads.catalog`.

        Accepts both spellings (``flight-control`` and ``flight_control``);
        the workload's own annotations and entry point are used unless
        overridden by ``kwargs``.
        """
        from repro.workloads import get_workload

        workload = get_workload(workload_name.replace("_", "-"))
        kwargs.setdefault("annotations", workload.annotation_set())
        kwargs.setdefault("entry", workload.entry)
        kwargs.setdefault("name", workload.name)
        return cls(program=workload.program(), **kwargs)

    @classmethod
    def from_file(
        cls,
        path: str,
        annotations_path: Optional[str] = None,
        **kwargs,
    ) -> "Project":
        """Project over a source file: ``.c`` is mini-C, ``.s``/``.asm`` is
        assembly.  ``annotations_path`` names a textual annotation file."""
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if annotations_path is not None:
            with open(annotations_path, "r", encoding="utf-8") as handle:
                kwargs.setdefault("annotations", handle.read())
        kwargs.setdefault("name", os.path.basename(path))
        if path.endswith((".s", ".asm")):
            return cls(assembly=text, **kwargs)
        return cls(source=text, **kwargs)

    # ------------------------------------------------------------------ #
    # Lazy build products
    # ------------------------------------------------------------------ #
    def build(self) -> Program:
        """Compile/parse the sources to the IR program (memoised)."""
        if self._program is None:
            if self.source is not None:
                # compilation_unit() already type-checked the AST; generate
                # code directly rather than re-checking via compile_unit.
                self._program = CodeGenerator(
                    self.compilation_unit(), entry=self.entry or "main"
                ).generate()
            else:
                self._program = parse_assembly(
                    self.assembly, entry=self.entry or "main"
                )
        return self._program

    def compilation_unit(self) -> ast.CompilationUnit:
        """The type-checked mini-C AST (guideline checking needs it)."""
        if self.source is None:
            raise ProjectError(
                "this project has no mini-C source (guideline checking and "
                "AST-level passes need one)"
            )
        if self._unit is None:
            unit = parse_source(self.source)
            check_types(unit)
            self._unit = unit
        return self._unit

    def summary_store(self) -> Optional[SummaryStore]:
        """The resolved persistent summary store (memoised; may be ``None``)."""
        if not self._store_resolved:
            self._store = resolve_summary_store(self.cache)
            self._store_resolved = True
        return self._store

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "program" if self.source is None and self.assembly is None else (
            "source" if self.source is not None else "assembly"
        )
        return (
            f"Project(name={self.name!r}, kind={kind}, "
            f"processor={self.processor.name!r}, entry={self.entry!r})"
        )
