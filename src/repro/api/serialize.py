"""Versioned, stable JSON schema for every report type.

Analysis results must cross process and machine boundaries (CLI ``--json``
output, batch pools shipping reports between workers, archived CI artifacts),
so every report type serialises to plain JSON and back **exactly**: for any
report ``r``, ``from_json(json.loads(json.dumps(to_json(r)))) == r`` holds
field for field — intervals, per-block times, challenge messages, call-context
strings, phase timings (floats survive the JSON text round-trip bit for bit
in Python).

Schema shape
------------
Every serialised object carries two envelope fields::

    {"schema": 1, "kind": "WCETReport", ...payload...}

``schema`` is the version of this module's format, bumped only on an
incompatible layout change (a new *optional* field is not a bump; renaming,
retyping or removing one is).  Loaders reject unknown versions and unknown
kinds with :class:`SchemaError` instead of guessing.  Nested objects carry
their own envelope so any subtree can be stored and reloaded on its own.

Dispatching loaders/dumpers live here rather than as methods so the report
dataclasses stay plain data; the classes expose thin ``to_json``/``from_json``
conveniences that delegate to this module.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Type

from repro.errors import ReproError
from repro.guidelines.checker import GuidelineReport
from repro.guidelines.finding import ChallengeTier, Finding, Severity
from repro.hardware.pipeline import BlockTimeBounds
from repro.wcet.report import (
    ChallengeReport,
    FunctionReport,
    LoopReport,
    PhaseTiming,
    WCETReport,
)

#: Version of the serialisation format (see the module docstring for policy).
SCHEMA_VERSION = 1


class SchemaError(ReproError):
    """Unknown schema version or kind, or a malformed payload."""


# --------------------------------------------------------------------------- #
# Envelope helpers
# --------------------------------------------------------------------------- #
def _envelope(kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    data: Dict[str, Any] = {"schema": SCHEMA_VERSION, "kind": kind}
    data.update(payload)
    return data


def _check_envelope(data: Any, kind: Optional[str] = None) -> str:
    if not isinstance(data, dict):
        raise SchemaError(f"expected a JSON object, got {type(data).__name__}")
    version = data.get("schema")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema version {version!r} (this build reads "
            f"version {SCHEMA_VERSION}); re-serialise with a matching build"
        )
    found = data.get("kind")
    if not isinstance(found, str):
        raise SchemaError("serialised object has no 'kind' field")
    if kind is not None and found != kind:
        raise SchemaError(f"expected a serialised {kind}, found {found!r}")
    return found


def _int_keyed(mapping: Dict[int, Any]) -> Dict[str, Any]:
    """JSON object keys are strings; block ids / addresses are ints."""
    return {str(key): value for key, value in mapping.items()}


def _from_int_keyed(mapping: Dict[str, Any]) -> Dict[int, Any]:
    return {int(key): value for key, value in mapping.items()}


# --------------------------------------------------------------------------- #
# Per-type dumpers
# --------------------------------------------------------------------------- #
def _dump_block_time_bounds(bounds: BlockTimeBounds) -> Dict[str, Any]:
    return _envelope(
        "BlockTimeBounds",
        {
            "block_id": bounds.block_id,
            "wcet_cycles": bounds.wcet_cycles,
            "bcet_cycles": bounds.bcet_cycles,
            "fetch_cycles": bounds.fetch_cycles,
            "compute_cycles": bounds.compute_cycles,
            "memory_cycles": bounds.memory_cycles,
            "branch_cycles": bounds.branch_cycles,
        },
    )


def _load_block_time_bounds(data: Dict[str, Any]) -> BlockTimeBounds:
    return BlockTimeBounds(
        block_id=data["block_id"],
        wcet_cycles=data["wcet_cycles"],
        bcet_cycles=data["bcet_cycles"],
        fetch_cycles=data["fetch_cycles"],
        compute_cycles=data["compute_cycles"],
        memory_cycles=data["memory_cycles"],
        branch_cycles=data["branch_cycles"],
    )


def _dump_loop_report(loop: LoopReport) -> Dict[str, Any]:
    return _envelope(
        "LoopReport",
        {
            "function": loop.function,
            "header": loop.header,
            "bound": loop.bound,
            "source": loop.source,
            "irreducible": loop.irreducible,
            "failure_reason": loop.failure_reason,
            "detail": loop.detail,
        },
    )


def _load_loop_report(data: Dict[str, Any]) -> LoopReport:
    return LoopReport(
        function=data["function"],
        header=data["header"],
        bound=data["bound"],
        source=data["source"],
        irreducible=data["irreducible"],
        failure_reason=data["failure_reason"],
        detail=data["detail"],
    )


def _dump_phase_timing(timing: PhaseTiming) -> Dict[str, Any]:
    return _envelope(
        "PhaseTiming",
        {
            "phase": timing.phase,
            "seconds": timing.seconds,
            "detail": timing.detail,
            "iterations": timing.iterations,
        },
    )


def _load_phase_timing(data: Dict[str, Any]) -> PhaseTiming:
    return PhaseTiming(
        phase=data["phase"],
        seconds=data["seconds"],
        detail=data["detail"],
        # Pre-counter payloads (older peers) lack the field; default to 0.
        iterations=data.get("iterations", 0),
    )


def _dump_challenge_report(challenges: ChallengeReport) -> Dict[str, Any]:
    return _envelope(
        "ChallengeReport",
        {
            "tier_one": list(challenges.tier_one),
            "tier_two": list(challenges.tier_two),
        },
    )


def _load_challenge_report(data: Dict[str, Any]) -> ChallengeReport:
    return ChallengeReport(
        tier_one=list(data["tier_one"]), tier_two=list(data["tier_two"])
    )


def _dump_function_report(report: FunctionReport) -> Dict[str, Any]:
    return _envelope(
        "FunctionReport",
        {
            "name": report.name,
            "wcet_cycles": report.wcet_cycles,
            "bcet_cycles": report.bcet_cycles,
            "loop_reports": [_dump_loop_report(l) for l in report.loop_reports],
            "block_times": {
                str(block_id): _dump_block_time_bounds(bounds)
                for block_id, bounds in report.block_times.items()
            },
            "block_counts": _int_keyed(report.block_counts),
            "icache_summary": dict(report.icache_summary),
            "dcache_summary": dict(report.dcache_summary),
            "unreachable_blocks": list(report.unreachable_blocks),
            "imprecise_accesses": report.imprecise_accesses,
            "unknown_accesses": report.unknown_accesses,
            "callee_wcet": _int_keyed(report.callee_wcet),
            "ilp_nodes": report.ilp_nodes,
            "context": report.context,
        },
    )


def _load_function_report(data: Dict[str, Any]) -> FunctionReport:
    return FunctionReport(
        name=data["name"],
        wcet_cycles=data["wcet_cycles"],
        bcet_cycles=data["bcet_cycles"],
        loop_reports=[from_json(l, LoopReport) for l in data["loop_reports"]],
        block_times={
            int(block_id): from_json(bounds, BlockTimeBounds)
            for block_id, bounds in data["block_times"].items()
        },
        block_counts=_from_int_keyed(data["block_counts"]),
        icache_summary=dict(data["icache_summary"]),
        dcache_summary=dict(data["dcache_summary"]),
        unreachable_blocks=list(data["unreachable_blocks"]),
        imprecise_accesses=data["imprecise_accesses"],
        unknown_accesses=data["unknown_accesses"],
        callee_wcet=_from_int_keyed(data["callee_wcet"]),
        ilp_nodes=data["ilp_nodes"],
        context=data["context"],
    )


def _dump_wcet_report(report: WCETReport) -> Dict[str, Any]:
    return _envelope(
        "WCETReport",
        {
            "entry": report.entry,
            "processor": report.processor,
            "wcet_cycles": report.wcet_cycles,
            "bcet_cycles": report.bcet_cycles,
            "functions": {
                name: _dump_function_report(function_report)
                for name, function_report in report.functions.items()
            },
            "phases": [_dump_phase_timing(t) for t in report.phases],
            "challenges": _dump_challenge_report(report.challenges),
            "mode": report.mode,
            "error_scenario": report.error_scenario,
            "annotation_summary": dict(report.annotation_summary),
        },
    )


def _load_wcet_report(data: Dict[str, Any]) -> WCETReport:
    return WCETReport(
        entry=data["entry"],
        processor=data["processor"],
        wcet_cycles=data["wcet_cycles"],
        bcet_cycles=data["bcet_cycles"],
        functions={
            name: from_json(payload, FunctionReport)
            for name, payload in data["functions"].items()
        },
        phases=[from_json(t, PhaseTiming) for t in data["phases"]],
        challenges=from_json(data["challenges"], ChallengeReport),
        mode=data["mode"],
        error_scenario=data["error_scenario"],
        annotation_summary=dict(data["annotation_summary"]),
    )


def _dump_finding(finding: Finding) -> Dict[str, Any]:
    return _envelope(
        "Finding",
        {
            "rule": finding.rule,
            "title": finding.title,
            "severity": finding.severity.value,
            "function": finding.function,
            "line": finding.line,
            "message": finding.message,
            "challenge": finding.challenge.value,
            "wcet_impact": finding.wcet_impact,
        },
    )


def _load_finding(data: Dict[str, Any]) -> Finding:
    try:
        severity = Severity(data["severity"])
        challenge = ChallengeTier(data["challenge"])
    except ValueError as exc:
        raise SchemaError(f"serialised Finding has an unknown enum value: {exc}")
    return Finding(
        rule=data["rule"],
        title=data["title"],
        severity=severity,
        function=data["function"],
        line=data["line"],
        message=data["message"],
        challenge=challenge,
        wcet_impact=data["wcet_impact"],
    )


def _dump_guideline_report(report: GuidelineReport) -> Dict[str, Any]:
    return _envelope(
        "GuidelineReport",
        {
            "findings": [_dump_finding(f) for f in report.findings],
            "rules_checked": list(report.rules_checked),
        },
    )


def _load_guideline_report(data: Dict[str, Any]) -> GuidelineReport:
    return GuidelineReport(
        findings=[from_json(f, Finding) for f in data["findings"]],
        rules_checked=list(data["rules_checked"]),
    )


def _dump_analysis_result(result) -> Dict[str, Any]:
    # Mode keys may be None (the mode-unaware analysis), which JSON object
    # keys cannot express — serialise the dict as an ordered list of entries.
    return _envelope(
        "AnalysisResult",
        {
            "label": result.label,
            "entry": result.entry,
            "processor": result.processor,
            "reports": [
                {"mode": mode, "report": _dump_wcet_report(report)}
                for mode, report in result.reports.items()
            ],
            "guidelines": (
                _dump_guideline_report(result.guidelines)
                if result.guidelines is not None
                else None
            ),
            "cache_stats": dict(result.cache_stats),
            "seconds": result.seconds,
        },
    )


def _load_analysis_result(data: Dict[str, Any]):
    from repro.api.service import AnalysisResult

    return AnalysisResult(
        label=data["label"],
        entry=data["entry"],
        processor=data["processor"],
        reports={
            item["mode"]: from_json(item["report"], WCETReport)
            for item in data["reports"]
        },
        guidelines=(
            from_json(data["guidelines"], GuidelineReport)
            if data["guidelines"] is not None
            else None
        ),
        cache_stats=dict(data["cache_stats"]),
        seconds=data["seconds"],
    )


# --------------------------------------------------------------------------- #
# Public dispatchers
# --------------------------------------------------------------------------- #
_DUMPERS: List = [
    (BlockTimeBounds, _dump_block_time_bounds),
    (LoopReport, _dump_loop_report),
    (PhaseTiming, _dump_phase_timing),
    (ChallengeReport, _dump_challenge_report),
    (FunctionReport, _dump_function_report),
    (WCETReport, _dump_wcet_report),
    (Finding, _dump_finding),
    (GuidelineReport, _dump_guideline_report),
]

_LOADERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    "BlockTimeBounds": _load_block_time_bounds,
    "LoopReport": _load_loop_report,
    "PhaseTiming": _load_phase_timing,
    "ChallengeReport": _load_challenge_report,
    "FunctionReport": _load_function_report,
    "WCETReport": _load_wcet_report,
    "Finding": _load_finding,
    "GuidelineReport": _load_guideline_report,
    "AnalysisResult": _load_analysis_result,
}


def register(
    cls: Type,
    kind: str,
    dumper: Callable[[Any], Dict[str, Any]],
    loader: Callable[[Dict[str, Any]], Any],
) -> None:
    """Extension hook: other packages add their own schema-1 kinds.

    :mod:`repro.server.wire` registers the server's wire messages here so
    they travel through the same versioned envelope machinery as the report
    types.  ``kind`` must equal ``cls.__name__`` (``from_json(expected=cls)``
    asserts the kind by class name).  Registering the same kind twice with a
    different class is a programming error and raises :class:`SchemaError`.
    """
    if kind != cls.__name__:
        raise SchemaError(f"kind {kind!r} must match the class name {cls.__name__!r}")
    existing = _LOADERS.get(kind)
    if existing is not None and existing is not loader:
        raise SchemaError(f"serialised kind {kind!r} is already registered")
    _DUMPERS.append((cls, dumper))
    _LOADERS[kind] = loader


def _load_extension_kinds() -> None:
    """Import the packages that register additional kinds (idempotent)."""
    try:
        import repro.server.wire  # noqa: F401  (registers the server kinds)
    except ImportError:  # pragma: no cover - server package always ships
        pass


def to_json(obj: Any) -> Dict[str, Any]:
    """Serialise any supported report object to a JSON-compatible dict."""
    # AnalysisResult lives in repro.api.service (which imports this module);
    # recognise it by duck type to avoid the circular import.
    if type(obj).__name__ == "AnalysisResult" and hasattr(obj, "reports"):
        return _dump_analysis_result(obj)
    for cls, dumper in _DUMPERS:
        if isinstance(obj, cls):
            return dumper(obj)
    _load_extension_kinds()
    for cls, dumper in _DUMPERS:
        if isinstance(obj, cls):
            return dumper(obj)
    raise SchemaError(f"no JSON schema for objects of type {type(obj).__name__}")


def from_json(data: Dict[str, Any], expected: Optional[Type] = None) -> Any:
    """Reconstruct a report object from its :func:`to_json` form.

    ``expected`` (a class) additionally asserts the deserialised kind.
    Raises :class:`SchemaError` on version/kind mismatches.
    """
    expected_kind = expected.__name__ if expected is not None else None
    kind = _check_envelope(data, expected_kind)
    loader = _LOADERS.get(kind)
    if loader is None:
        # Kinds registered by other packages (the server wire messages) are
        # only present once their module is imported; give them one chance.
        _load_extension_kinds()
        loader = _LOADERS.get(kind)
    if loader is None:
        raise SchemaError(f"unknown serialised kind {kind!r}")
    try:
        return loader(data)
    except SchemaError:
        raise
    except KeyError as exc:
        raise SchemaError(f"serialised {kind} is missing field {exc}") from None
    except (TypeError, ValueError, AttributeError) as exc:
        # A field of the wrong JSON shape (a string where an object belongs,
        # an int where a list belongs, ...) must surface as a schema problem,
        # not leak the loader's internal exception to the caller — the HTTP
        # front end turns SchemaError into 400, anything else into 500.
        raise SchemaError(f"serialised {kind} is malformed: {exc}") from None
