"""The :class:`AnalysisService` — one typed request/result surface.

The paper's workflow (Figure 1) is one pipeline: source → annotations →
decoding → analyses → report.  The service exposes exactly that pipeline for
one :class:`~repro.api.project.Project`:

* :class:`AnalysisRequest` names what to analyse (entry, one mode or all
  modes, an error scenario, tuning options, whether to run the guideline
  checker alongside);
* :class:`AnalysisResult` bundles everything a run produced — per-mode
  :class:`~repro.wcet.report.WCETReport`\\ s, guideline findings, summary-cache
  statistics and wall-clock time — and serialises losslessly to JSON
  (:mod:`repro.api.serialize`), so results cross process and machine
  boundaries.

Every front end is a thin consumer of this layer: the ``python -m repro``
CLI, :func:`repro.wcet.batch.analyze_batch` (which fans service requests over
a process pool), the differential oracle and the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.summaries import SummaryCache
from repro.api.project import Project
from repro.api import serialize
from repro.errors import ReproError
from repro.guidelines.checker import GuidelineChecker, GuidelineReport
from repro.obs import trace as obs_trace
from repro.wcet.analyzer import AnalysisOptions, WCETAnalyzer
from repro.wcet.report import WCETReport


class RequestError(ReproError):
    """An :class:`AnalysisRequest` combination the service cannot serve."""


@dataclass
class AnalysisRequest:
    """One typed analysis request against a project.

    ``mode``/``all_modes``: analyse one operating mode (``None`` = the
    mode-unaware case) or the whole declared mode family through the shared
    mode pipeline.  ``check_guidelines`` additionally runs the MISRA
    predictability checker (mini-C projects only).
    """

    entry: Optional[str] = None
    mode: Optional[str] = None
    all_modes: bool = False
    error_scenario: Optional[str] = None
    options: Optional[AnalysisOptions] = None
    check_guidelines: bool = False
    label: str = ""


@dataclass
class AnalysisResult:
    """Everything one :meth:`AnalysisService.analyze` call produced."""

    label: str
    entry: str
    processor: str
    #: Per-mode reports; key ``None`` is the mode-unaware analysis.  A
    #: single-mode request yields a one-entry dict keyed by that mode.
    reports: Dict[Optional[str], WCETReport] = field(default_factory=dict)
    guidelines: Optional[GuidelineReport] = None
    #: Summary-cache hit/miss counters accrued by this request.
    cache_stats: Dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def report(self) -> WCETReport:
        """The primary report: the only one, or the mode-unaware one."""
        if len(self.reports) == 1:
            return next(iter(self.reports.values()))
        return self.reports[None]

    @property
    def wcet_cycles(self) -> int:
        return self.report.wcet_cycles

    @property
    def bcet_cycles(self) -> int:
        return self.report.bcet_cycles

    def modes(self) -> List[Optional[str]]:
        return list(self.reports)

    # ------------------------------------------------------------------ #
    def to_json(self) -> dict:
        """Versioned JSON form (see :mod:`repro.api.serialize`)."""
        return serialize.to_json(self)

    @classmethod
    def from_json(cls, data: dict) -> "AnalysisResult":
        return serialize.from_json(data, cls)

    def format_text(self) -> str:
        """Human-readable multi-line rendering of the whole result."""
        lines: List[str] = []
        title = f"Analysis of {self.label or self.entry!r} on {self.processor}"
        lines.append(title)
        lines.append("#" * len(title))
        for mode, report in self.reports.items():
            if len(self.reports) > 1:
                lines.append("")
                lines.append(f"--- mode: {mode or '(mode unaware)'} ---")
            lines.append(report.format_text())
        if self.guidelines is not None:
            lines.append("")
            lines.append(self.guidelines.format_text())
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnalysisResult({self.label or self.entry!r}, "
            f"modes={[m or '-' for m in self.reports]}, "
            f"wcet={self.report.wcet_cycles})"
        )


class AnalysisService:
    """Runs typed analysis requests against one project.

    The service owns the project's summary-cache wiring: all requests served
    by one service share an in-process :class:`SummaryCache` tier, backed by
    the project's resolved persistent store (if any).  Callers with their own
    caching contract (the differential oracle, the batch pool workers) pass
    an explicit ``summary_cache``.
    """

    def __init__(
        self, project: Project, summary_cache: Optional[SummaryCache] = None
    ):
        self.project = project
        if summary_cache is None:
            summary_cache = SummaryCache(store=project.summary_store())
        self.summary_cache = summary_cache

    # ------------------------------------------------------------------ #
    def analyzer(self, options: Optional[AnalysisOptions] = None) -> WCETAnalyzer:
        """A WCET analyzer over the project's program, sharing the cache."""
        return WCETAnalyzer(
            self.project.build(),
            self.project.processor,
            annotations=self.project.annotations,
            options=options,
            summary_cache=self.summary_cache,
        )

    def analyze(self, request: Optional[AnalysisRequest] = None) -> AnalysisResult:
        """Serve one request; raises :class:`~repro.errors.ReproError` on
        tier-one failures (unbounded loops, unresolved indirect flow, ...)."""
        request = request or AnalysisRequest()
        if request.all_modes and (request.mode or request.error_scenario):
            # Silently dropping either would hand back bounds that do not
            # reflect what was asked for.
            raise RequestError(
                "all_modes analyses every declared mode; it cannot be "
                "combined with mode= or error_scenario= (request one mode, "
                "or drop all_modes)"
            )
        started = time.perf_counter()
        before = self.summary_cache.stats()
        with obs_trace.span(
            "analyze",
            attrs={
                "label": request.label or self.project.name,
                "entry": request.entry or self.project.entry,
                "all_modes": request.all_modes,
            },
        ):
            analyzer = self.analyzer(request.options)
            entry = request.entry or self.project.entry
            if request.all_modes:
                reports = analyzer.analyze_all_modes(entry=entry)
            else:
                reports = {
                    request.mode: analyzer.analyze(
                        entry=entry,
                        mode=request.mode,
                        error_scenario=request.error_scenario,
                    )
                }
            guidelines = self.check_guidelines() if request.check_guidelines else None
        after = self.summary_cache.stats()
        return AnalysisResult(
            label=request.label or self.project.name,
            entry=entry or self.project.build().entry,
            processor=self.project.processor.name,
            reports=reports,
            guidelines=guidelines,
            cache_stats={
                key: after[key] - before.get(key, 0) for key in after
            },
            seconds=time.perf_counter() - started,
        )

    def analyze_iter(
        self,
        requests: Sequence[AnalysisRequest],
        jobs: Optional[int] = None,
    ) -> Iterator[Tuple[int, AnalysisResult]]:
        """Serve many requests, yielding each result **as it finishes**.

        Yields ``(index, AnalysisResult)`` in completion order (request order
        when serial).  This is the streaming twin of :meth:`analyze_many` —
        the analysis server's progress events and incremental sweep reporting
        ride on it.  Cache wiring is identical: serial runs share this
        service's in-process cache, parallel runs share the project's
        persistent store across workers.
        """
        from repro.wcet.batch import (
            AnalysisRequest as BatchRequest,
            analyze_batch_iter,
            resolve_jobs,
        )

        requests = list(requests)
        program = self.project.build()
        batch_requests = [
            BatchRequest(
                program,
                self.project.processor,
                annotations=self.project.annotations,
                options=request.options,
                entry=request.entry or self.project.entry,
                mode=request.mode,
                error_scenario=request.error_scenario,
                all_modes=request.all_modes,
                label=request.label,
            )
            for request in requests
        ]
        store = self.project.summary_store()
        parallel = resolve_jobs(jobs) > 1
        outcomes = analyze_batch_iter(
            batch_requests,
            jobs=jobs,
            cache_dir=store.path if (store is not None and parallel) else None,
            summary_cache=None if parallel else self.summary_cache,
            # The project already resolved the cache precedence (including
            # "off"); workers must not fall back to an ambient global store.
            use_default_store=False,
        )
        for index, outcome, stats, seconds in outcomes:
            request = requests[index]
            reports = outcome if isinstance(outcome, dict) else {request.mode: outcome}
            yield index, AnalysisResult(
                label=request.label or self.project.name,
                entry=request.entry or self.project.entry or program.entry,
                processor=self.project.processor.name,
                reports=reports,
                cache_stats=stats,
                seconds=seconds,
            )

    def analyze_many(
        self,
        requests: Sequence[AnalysisRequest],
        jobs: Optional[int] = None,
        on_result: Optional[Callable[[int, AnalysisResult], None]] = None,
    ) -> List[AnalysisResult]:
        """Serve many requests, optionally across a process pool.

        Results come back in request order; each carries its own cache-stat
        delta and wall time.  ``on_result(index, result)`` — if given — is
        invoked once per request *as it finishes* (completion order), so
        callers can report progress without switching to
        :meth:`analyze_iter`.
        """
        requests = list(requests)
        results: List[Optional[AnalysisResult]] = [None] * len(requests)
        for index, result in self.analyze_iter(requests, jobs=jobs):
            results[index] = result
            if on_result is not None:
                on_result(index, result)
        return list(results)

    def check_guidelines(self) -> GuidelineReport:
        """Run the MISRA predictability checker over the project's source."""
        return GuidelineChecker().check_unit(self.project.compilation_unit())
