"""Software arithmetic (Section 4.3 "Software Arithmetic" and Table 1).

The paper's only quantitative artefact is the iteration-count histogram of the
CodeWarrior ``lDivMod`` 32-bit unsigned division routine: an algorithm with
excellent average-case behaviour (one iteration in > 99.8 % of random inputs)
and terrible WCET predictability (rare inputs need hundreds of iterations, and
there is no simple way to tell from the inputs).  This package provides

* :mod:`repro.arith.ldivmod` — a reimplementation of the estimate-and-correct
  division with an iteration counter (the Table 1 subject);
* :mod:`repro.arith.restoring` — the classic restoring shift-subtract division
  with a *fixed* iteration count (the WCET-friendly alternative);
* :mod:`repro.arith.softfloat` — IEEE-754 single-precision software floating
  point (add/sub/mul/div) with data-dependent normalisation loops;
* :mod:`repro.arith.fixedpoint` — Q16.16 fixed-point arithmetic whose
  operations are constant-time (the "different representation" remedy);
* :mod:`repro.arith.sampling` — the random-sampling harness that regenerates
  Table 1 with the paper's exact bucket boundaries.
"""

from repro.arith.ldivmod import DivisionResult, ldivmod, LDIVMOD_WORST_CASE_BOUND
from repro.arith.restoring import restoring_divmod, RESTORING_ITERATIONS
from repro.arith.softfloat import SoftFloat, float_add, float_div, float_mul, float_sub
from repro.arith.fixedpoint import Fixed, FIXED_FRACTION_BITS
from repro.arith.sampling import (
    PAPER_TABLE1_BUCKETS,
    PAPER_TABLE1_ROWS,
    IterationHistogram,
    sample_iteration_histogram,
)

__all__ = [
    "DivisionResult",
    "ldivmod",
    "LDIVMOD_WORST_CASE_BOUND",
    "restoring_divmod",
    "RESTORING_ITERATIONS",
    "SoftFloat",
    "float_add",
    "float_sub",
    "float_mul",
    "float_div",
    "Fixed",
    "FIXED_FRACTION_BITS",
    "IterationHistogram",
    "sample_iteration_histogram",
    "PAPER_TABLE1_BUCKETS",
    "PAPER_TABLE1_ROWS",
]
