"""Q16.16 fixed-point arithmetic: the constant-time alternative.

Where soft-float operations contain data-dependent normalisation loops,
fixed-point arithmetic maps to a handful of integer instructions with no
loops at all — the representation the paper's "more radical" remedy (choose
hardware/representations that match the required precision) points towards.
Every operation here is straight-line; the WCET of a fixed-point kernel is
therefore independent of the data it processes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

#: Number of fractional bits (Q16.16).
FIXED_FRACTION_BITS = 16
_ONE = 1 << FIXED_FRACTION_BITS
_MIN = -(2**31)
_MAX = 2**31 - 1


def _saturate(value: int) -> int:
    return max(_MIN, min(_MAX, value))


@dataclass(frozen=True)
class Fixed:
    """A Q16.16 fixed-point number stored in a signed 32-bit raw value."""

    raw: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "raw", _saturate(int(self.raw)))

    # ------------------------------------------------------------------ #
    @staticmethod
    def from_float(value: float) -> "Fixed":
        return Fixed(int(round(value * _ONE)))

    @staticmethod
    def from_int(value: int) -> "Fixed":
        return Fixed(value << FIXED_FRACTION_BITS)

    def to_float(self) -> float:
        return self.raw / _ONE

    def to_int(self) -> int:
        """Truncate towards zero."""
        if self.raw < 0:
            return -((-self.raw) >> FIXED_FRACTION_BITS)
        return self.raw >> FIXED_FRACTION_BITS

    # ------------------------------------------------------------------ #
    def __add__(self, other: "Fixed") -> "Fixed":
        return Fixed(self.raw + other.raw)

    def __sub__(self, other: "Fixed") -> "Fixed":
        return Fixed(self.raw - other.raw)

    def __mul__(self, other: "Fixed") -> "Fixed":
        return Fixed((self.raw * other.raw) >> FIXED_FRACTION_BITS)

    def __truediv__(self, other: "Fixed") -> "Fixed":
        if other.raw == 0:
            raise ReproError("fixed-point division by zero")
        return Fixed((self.raw << FIXED_FRACTION_BITS) // other.raw)

    def __neg__(self) -> "Fixed":
        return Fixed(-self.raw)

    def __abs__(self) -> "Fixed":
        return Fixed(abs(self.raw))

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fixed):
            return self.raw == other.raw
        return NotImplemented

    def __lt__(self, other: "Fixed") -> bool:
        return self.raw < other.raw

    def __le__(self, other: "Fixed") -> bool:
        return self.raw <= other.raw

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.to_float():.5f}"
