"""``lDivMod``-style 32-bit unsigned division with an iteration counter.

The original routine ships with the CodeWarrior V4.6 runtime for the Freescale
HCS12X, a processor with a 16-bit hardware divider but no 32-bit one.  The
binary is proprietary, so this module reimplements the *algorithmic skeleton*
the paper describes — "an iteration computing successive approximations to the
final result" built on 16-bit hardware division steps:

1. dividends below 2^16 are handled with a single hardware division (no
   iteration at all — the paper's rare ``0`` row);
2. otherwise each iteration performs one scaled 16-bit estimate of the next
   quotient chunk (the estimate uses only the top 16 bits of the divisor and
   is capped at the 16-bit hardware quotient range) and subtracts the
   corresponding multiple of the divisor from the remainder;
3. the loop repeats until the remainder drops below the divisor.

The resulting iteration-count distribution has the properties Table 1 reports:
the overwhelming majority of random inputs finish in exactly one iteration,
counts 0–2 cover all but a fraction of a per-mille, and a very thin tail of
specific inputs (small divisors, where each 16-bit quotient chunk recovers only
a small part of a huge quotient) needs hundreds of iterations.  There is no
simple closed-form way to predict the count from the operands, which is
precisely why a static WCET analysis has to assume the worst case for every
context in which the operand values are unknown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

#: Values are 32-bit unsigned.
UINT32_MASK = 0xFFFF_FFFF
#: Quotient chunk produced by one 16-bit hardware division step.
CHUNK_MASK = 0xFFFF

#: A safe upper bound on the number of iterations of :func:`ldivmod` for any
#: 32-bit input pair.  The slow path peels at least ``divisor`` (and at least
#: one 16-bit chunk worth of quotient) per iteration, so the count is bounded
#: by ``ceil(2^32 / (divisor * 2^16))`` for divisors below 2^16 and by a small
#: constant otherwise; the global maximum is attained at ``divisor == 1``.
#: This is the number a WCET analysis has to assume when nothing is known
#: about the operands — compare it with the typical count of 1.
LDIVMOD_WORST_CASE_BOUND = 65536


@dataclass(frozen=True)
class DivisionResult:
    """Quotient, remainder and the number of approximation iterations."""

    quotient: int
    remainder: int
    iterations: int

    def as_tuple(self) -> tuple:
        return (self.quotient, self.remainder)


def ldivmod(dividend: int, divisor: int) -> DivisionResult:
    """Divide two 32-bit unsigned integers, counting approximation iterations.

    Raises :class:`ReproError` on division by zero or out-of-range operands.
    The returned quotient/remainder are always exact (property-tested against
    Python's ``divmod``); only the *work* needed to obtain them varies.
    """
    if not 0 <= dividend <= UINT32_MASK or not 0 <= divisor <= UINT32_MASK:
        raise ReproError("ldivmod operands must be 32-bit unsigned integers")
    if divisor == 0:
        raise ReproError("ldivmod: division by zero")

    # Fast path: the dividend fits into 16 bits, a single hardware division
    # finishes the job without entering the approximation loop.
    if dividend <= CHUNK_MASK:
        return DivisionResult(dividend // divisor, dividend % divisor, 0)

    # Scale the divisor down to a 16-bit estimate (what the 16-bit hardware
    # divider can digest).
    shift = max(0, divisor.bit_length() - 16)
    divisor_high = divisor >> shift

    quotient = 0
    remainder = dividend
    iterations = 0
    # The approximation loop always runs at least once for 32-bit dividends
    # (the scaling and the first hardware estimate are performed even when the
    # quotient turns out to be zero) — this is why Table 1 shows iteration
    # count 1, not 0, for the ordinary dividend < divisor case.
    while True:
        iterations += 1
        if remainder >= divisor:
            # One 16-bit hardware division: estimate the next quotient chunk
            # from the top bits of the remainder and the (truncated) top bits
            # of the divisor.  Using divisor_high + 1 guarantees an
            # under-estimate, so the remainder never goes negative; the chunk
            # is capped at the 16-bit quotient range of the hardware divider.
            chunk = (remainder >> shift) // (divisor_high + 1)
            if chunk > CHUNK_MASK:
                chunk = CHUNK_MASK
            if chunk == 0:
                chunk = 1
            quotient += chunk
            remainder -= chunk * divisor
        if remainder < divisor:
            break

    return DivisionResult(quotient, remainder, iterations)


def ldivmod_iterations(dividend: int, divisor: int) -> int:
    """Convenience accessor used by the sampling harness."""
    return ldivmod(dividend, divisor).iterations


def worst_case_inputs() -> tuple:
    """An input pair that exercises (close to) the worst observed behaviour.

    A maximal dividend with the smallest legal divisor forces the estimate
    loop to rebuild the full 32-bit quotient out of 16-bit chunks.
    """
    return (UINT32_MASK, 1)
