"""Restoring shift-subtract division: the WCET-predictable baseline.

The paper recommends "making sure that the used software arithmetic library
features good WCET analyzability".  The textbook restoring division is the
canonical example: it always executes exactly :data:`RESTORING_ITERATIONS`
iterations regardless of the operand values, so its WCET equals its typical
execution time — at the price of a worse *average* case than the
estimate-and-correct ``lDivMod`` (32 iterations instead of 1).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.arith.ldivmod import DivisionResult, UINT32_MASK

#: The restoring division always runs one iteration per result bit.
RESTORING_ITERATIONS = 32


def restoring_divmod(dividend: int, divisor: int) -> DivisionResult:
    """32-bit unsigned restoring division with a constant iteration count."""
    if not 0 <= dividend <= UINT32_MASK or not 0 <= divisor <= UINT32_MASK:
        raise ReproError("restoring_divmod operands must be 32-bit unsigned integers")
    if divisor == 0:
        raise ReproError("restoring_divmod: division by zero")

    remainder = 0
    quotient = 0
    for bit in range(RESTORING_ITERATIONS - 1, -1, -1):
        remainder = (remainder << 1) | ((dividend >> bit) & 1)
        if remainder >= divisor:
            remainder -= divisor
            quotient |= 1 << bit
    return DivisionResult(quotient, remainder, RESTORING_ITERATIONS)
