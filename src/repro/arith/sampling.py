"""Random-sampling harness regenerating Table 1.

The paper applied ``lDivMod`` to 10^8 random 32-bit input pairs and reported a
histogram of observed iteration counts in fixed buckets.  This module draws
deterministic pseudo-random samples (numpy PCG64), feeds them through
:func:`repro.arith.ldivmod.ldivmod` and produces the same bucket layout, plus
the summary statistics the paper quotes in prose ("1 in more than 99.8 %",
"0, 1 or 2 in more than 99.999 %", worst observed count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arith.ldivmod import ldivmod

#: Bucket boundaries exactly as printed in Table 1 of the paper
#: (single counts 0..3, then ranges).
PAPER_TABLE1_BUCKETS: Tuple[Tuple[int, int], ...] = (
    (0, 0),
    (1, 1),
    (2, 2),
    (3, 3),
    (4, 9),
    (10, 19),
    (20, 39),
    (40, 59),
    (60, 79),
    (80, 99),
    (100, 135),
    (136, 10**9),   # the paper lists the three worst inputs individually
)

#: The paper's reported frequencies for 10^8 samples (for EXPERIMENTS.md
#: comparisons; the last row aggregates the three individually-listed inputs).
PAPER_TABLE1_ROWS: Tuple[Tuple[str, int], ...] = (
    ("0", 1552),
    ("1", 99_881_801),
    ("2", 116_421),
    ("3", 114),
    ("4 .. 9", 13),
    ("10 .. 19", 19),
    ("20 .. 39", 24),
    ("40 .. 59", 22),
    ("60 .. 79", 13),
    ("80 .. 99", 11),
    ("100 .. 135", 7),
    (">= 136", 3),
)


def _bucket_label(low: int, high: int) -> str:
    if low == high:
        return str(low)
    if high >= 10**9:
        return f">= {low}"
    return f"{low} .. {high}"


@dataclass
class IterationHistogram:
    """Histogram of iteration counts over a random sample."""

    samples: int
    counts: Dict[int, int] = field(default_factory=dict)
    max_iterations: int = 0
    max_inputs: Tuple[int, int] = (0, 0)
    seed: int = 0

    # ------------------------------------------------------------------ #
    def record(self, iterations: int, dividend: int, divisor: int) -> None:
        self.counts[iterations] = self.counts.get(iterations, 0) + 1
        if iterations > self.max_iterations:
            self.max_iterations = iterations
            self.max_inputs = (dividend, divisor)

    def frequency_of(self, iterations: int) -> int:
        return self.counts.get(iterations, 0)

    def fraction_at_most(self, iterations: int) -> float:
        total = sum(count for value, count in self.counts.items() if value <= iterations)
        return total / self.samples if self.samples else 0.0

    def fraction_exactly(self, iterations: int) -> float:
        return self.frequency_of(iterations) / self.samples if self.samples else 0.0

    # ------------------------------------------------------------------ #
    def bucketed(
        self, buckets: Sequence[Tuple[int, int]] = PAPER_TABLE1_BUCKETS
    ) -> List[Tuple[str, int]]:
        rows: List[Tuple[str, int]] = []
        for low, high in buckets:
            total = sum(
                count for value, count in self.counts.items() if low <= value <= high
            )
            rows.append((_bucket_label(low, high), total))
        return rows

    def format_table(self) -> str:
        """Render the histogram in the layout of Table 1."""
        lines = [
            f"Observed iteration counts for lDivMod ({self.samples} random inputs, seed {self.seed})",
            f"{'Iteration Counts':<20s} {'Frequency of Occurrence':>24s}",
        ]
        for label, frequency in self.bucketed():
            lines.append(f"{label:<20s} {frequency:>24d}")
        lines.append(
            f"worst observed: {self.max_iterations} iterations for "
            f"lDivMod({self.max_inputs[0]:#010x}, {self.max_inputs[1]:#010x})"
        )
        lines.append(
            f"share with exactly 1 iteration : {self.fraction_exactly(1) * 100.0:8.4f} %"
        )
        lines.append(
            f"share with at most 2 iterations: {self.fraction_at_most(2) * 100.0:8.4f} %"
        )
        return "\n".join(lines)


def sample_iteration_histogram(
    samples: int = 1_000_000,
    seed: int = 20110318,
    divide: Callable[[int, int], object] = ldivmod,
    chunk_size: int = 65536,
) -> IterationHistogram:
    """Run ``divide`` on ``samples`` random 32-bit pairs and histogram iterations.

    ``divide`` must return an object with ``iterations`` (the default is
    :func:`repro.arith.ldivmod.ldivmod`; the restoring baseline can be passed
    to show its degenerate single-bar histogram).  Zero divisors are skipped
    (re-drawn), matching the paper's setup of valid division inputs.
    """
    histogram = IterationHistogram(samples=samples, seed=seed)
    generator = np.random.Generator(np.random.PCG64(seed))
    remaining = samples
    while remaining > 0:
        batch = min(chunk_size, remaining)
        dividends = generator.integers(0, 2**32, size=batch, dtype=np.uint64)
        divisors = generator.integers(1, 2**32, size=batch, dtype=np.uint64)
        for dividend, divisor in zip(dividends.tolist(), divisors.tolist()):
            result = divide(int(dividend), int(divisor))
            histogram.record(result.iterations, int(dividend), int(divisor))
        remaining -= batch
    return histogram
