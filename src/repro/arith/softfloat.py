"""IEEE-754 single-precision software floating point.

Platforms like the HCS12X (no FPU) or the MPC5554 (single-precision FPU only)
fall back to software routines for floating-point work.  Such routines contain
data-dependent normalisation loops — another instance of the paper's
"software arithmetic" predictability problem.  This module implements
single-precision add/sub/mul/div over plain integers, counts the
normalisation-shift steps each operation needs, and is property-tested against
Python's native floats.

The implementation uses round-to-nearest-even, supports signed zero and
infinities, flushes subnormal results to zero (a common choice of embedded
soft-float libraries) and treats NaN inputs as propagating quiet NaNs.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

from repro.errors import ReproError

_SIGN_BIT = 0x8000_0000
_EXP_MASK = 0xFF
_FRAC_BITS = 23
_FRAC_MASK = (1 << _FRAC_BITS) - 1
_EXP_BIAS = 127
_QNAN = 0x7FC0_0000
_INF = 0x7F80_0000


def float_to_bits(value: float) -> int:
    """IEEE-754 single-precision bit pattern of a Python float."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_float(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFF_FFFF))[0]


@dataclass(frozen=True)
class SoftFloat:
    """A single-precision value carried as its raw bit pattern."""

    bits: int

    # ------------------------------------------------------------------ #
    @staticmethod
    def from_float(value: float) -> "SoftFloat":
        return SoftFloat(float_to_bits(value))

    def to_float(self) -> float:
        return bits_to_float(self.bits)

    # ------------------------------------------------------------------ #
    @property
    def sign(self) -> int:
        return (self.bits >> 31) & 1

    @property
    def exponent(self) -> int:
        return (self.bits >> _FRAC_BITS) & _EXP_MASK

    @property
    def fraction(self) -> int:
        return self.bits & _FRAC_MASK

    @property
    def is_nan(self) -> bool:
        return self.exponent == _EXP_MASK and self.fraction != 0

    @property
    def is_infinite(self) -> bool:
        return self.exponent == _EXP_MASK and self.fraction == 0

    @property
    def is_zero(self) -> bool:
        return self.exponent == 0 and self.fraction == 0

    @property
    def is_subnormal(self) -> bool:
        return self.exponent == 0 and self.fraction != 0

    def significand(self) -> int:
        """Significand with the implicit leading one (0 for zeros/subnormals)."""
        if self.exponent == 0:
            return self.fraction
        return self.fraction | (1 << _FRAC_BITS)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"SoftFloat({self.to_float()!r})"


@dataclass(frozen=True)
class SoftFloatResult:
    """Result value plus the number of normalisation steps the operation used."""

    value: SoftFloat
    normalisation_steps: int

    def to_float(self) -> float:
        return self.value.to_float()


def _pack(sign: int, exponent: int, fraction: int) -> SoftFloat:
    return SoftFloat(((sign & 1) << 31) | ((exponent & _EXP_MASK) << _FRAC_BITS) | (fraction & _FRAC_MASK))


def _round_and_pack(sign: int, exponent: int, significand: int, steps: int) -> SoftFloatResult:
    """Normalise/round a significand with 3 extra guard bits into a SoftFloat."""
    # Normalise left (small results) — data-dependent loop.
    while significand and significand < (1 << (_FRAC_BITS + 3)):
        significand <<= 1
        exponent -= 1
        steps += 1
    # Normalise right (overflowed results) — data-dependent loop.
    while significand >= (1 << (_FRAC_BITS + 4)):
        sticky = significand & 1
        significand = (significand >> 1) | sticky
        exponent += 1
        steps += 1

    if significand == 0:
        return SoftFloatResult(_pack(sign, 0, 0), steps)

    # Round to nearest even on the 3 guard bits.
    guard = significand & 0x7
    significand >>= 3
    if guard > 0x4 or (guard == 0x4 and (significand & 1)):
        significand += 1
        if significand >> (_FRAC_BITS + 1):
            significand >>= 1
            exponent += 1
            steps += 1

    if exponent >= _EXP_MASK:
        return SoftFloatResult(_pack(sign, _EXP_MASK, 0), steps)   # overflow -> inf
    if exponent <= 0:
        return SoftFloatResult(_pack(sign, 0, 0), steps)           # flush to zero
    return SoftFloatResult(_pack(sign, exponent, significand & _FRAC_MASK), steps)


def _handle_special(a: SoftFloat, b: SoftFloat) -> SoftFloat:
    if a.is_nan or b.is_nan:
        return SoftFloat(_QNAN)
    return None  # type: ignore[return-value]


# --------------------------------------------------------------------------- #
# Operations
# --------------------------------------------------------------------------- #
def float_add(a: SoftFloat, b: SoftFloat) -> SoftFloatResult:
    """Single-precision addition."""
    special = _handle_special(a, b)
    if special is not None:
        return SoftFloatResult(special, 0)
    if a.is_infinite or b.is_infinite:
        if a.is_infinite and b.is_infinite and a.sign != b.sign:
            return SoftFloatResult(SoftFloat(_QNAN), 0)
        return SoftFloatResult(a if a.is_infinite else b, 0)
    if a.is_zero or a.is_subnormal:
        return SoftFloatResult(SoftFloat(b.bits if not (b.is_subnormal) else (b.sign << 31)), 0)
    if b.is_zero or b.is_subnormal:
        return SoftFloatResult(SoftFloat(a.bits), 0)

    steps = 0
    exp_a, exp_b = a.exponent, b.exponent
    sig_a = a.significand() << 3
    sig_b = b.significand() << 3

    # Align the smaller operand — data-dependent shift loop.
    if exp_a < exp_b:
        a, b = b, a
        exp_a, exp_b = exp_b, exp_a
        sig_a, sig_b = sig_b, sig_a
    shift = exp_a - exp_b
    while shift > 0:
        sticky = sig_b & 1
        sig_b = (sig_b >> 1) | sticky
        shift -= 1
        steps += 1
        if sig_b == 0:
            break

    if a.sign == b.sign:
        significand = sig_a + sig_b
        sign = a.sign
    else:
        if sig_a >= sig_b:
            significand = sig_a - sig_b
            sign = a.sign
        else:
            significand = sig_b - sig_a
            sign = b.sign
    return _round_and_pack(sign, exp_a, significand, steps)


def float_sub(a: SoftFloat, b: SoftFloat) -> SoftFloatResult:
    """Single-precision subtraction (negate and add)."""
    negated = SoftFloat(b.bits ^ _SIGN_BIT)
    return float_add(a, negated)


def float_mul(a: SoftFloat, b: SoftFloat) -> SoftFloatResult:
    """Single-precision multiplication."""
    special = _handle_special(a, b)
    if special is not None:
        return SoftFloatResult(special, 0)
    sign = a.sign ^ b.sign
    if a.is_infinite or b.is_infinite:
        if a.is_zero or b.is_zero or a.is_subnormal or b.is_subnormal:
            return SoftFloatResult(SoftFloat(_QNAN), 0)
        return SoftFloatResult(_pack(sign, _EXP_MASK, 0), 0)
    if a.is_zero or b.is_zero or a.is_subnormal or b.is_subnormal:
        return SoftFloatResult(_pack(sign, 0, 0), 0)

    exponent = a.exponent + b.exponent - _EXP_BIAS
    product = a.significand() * b.significand()
    # Pre-shift the 48-bit product down to 27 bits (24 + 3 guard bits).
    significand = product >> (_FRAC_BITS - 3)
    if product & ((1 << (_FRAC_BITS - 3)) - 1):
        significand |= 1
    return _round_and_pack(sign, exponent, significand, 0)


def float_div(a: SoftFloat, b: SoftFloat) -> SoftFloatResult:
    """Single-precision division (long division over the significands)."""
    special = _handle_special(a, b)
    if special is not None:
        return SoftFloatResult(special, 0)
    sign = a.sign ^ b.sign
    if b.is_zero or b.is_subnormal:
        if a.is_zero or a.is_subnormal:
            return SoftFloatResult(SoftFloat(_QNAN), 0)
        return SoftFloatResult(_pack(sign, _EXP_MASK, 0), 0)
    if a.is_infinite:
        if b.is_infinite:
            return SoftFloatResult(SoftFloat(_QNAN), 0)
        return SoftFloatResult(_pack(sign, _EXP_MASK, 0), 0)
    if b.is_infinite or a.is_zero or a.is_subnormal:
        return SoftFloatResult(_pack(sign, 0, 0), 0)

    exponent = a.exponent - b.exponent + _EXP_BIAS
    dividend = a.significand() << (_FRAC_BITS + 3)
    quotient, remainder = divmod(dividend, b.significand())
    if remainder:
        quotient |= 1
    return _round_and_pack(sign, exponent, quotient, 0)
