"""The tracked performance baseline: ``python -m repro bench``.

This package owns the repo's *perf trajectory*.  It runs a fixed macro
workload —

* the flight-control task analysed on two processor models in every operating
  mode, and the message handler analysed on both models (the "analysis" half),
* a 50-seed differential sweep through the full compile → analyze → replay
  oracle (the "sweep" half),

— measures phase-level wall-clock time, and appends the result to
``BENCH_perf.json`` at the repo root.  Every performance-affecting PR appends
one entry, so speedups and regressions stay visible across the repo's history,
and CI replays the workload to catch >20% wall-clock regressions.

Each entry also records an *identity block* (entry WCET/BCET bounds and a
checksum over every sweep program's bounds).  Two entries with equal identity
blocks computed the exact same analysis results — which is how the benchmark
doubles as an end-to-end equivalence guard when engine internals are rebuilt.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.summaries import SummaryCache, merge_stats
from repro.api import Project, resolve_summary_store
from repro.hardware.processor import leon2_like, simple_scalar
from repro.testing.oracle import OracleConfig
from repro.testing.sweep import SweepResult, run_sweep
from repro.wcet.batch import AnalysisRequest, analyze_batch

#: Seeds of the sweep half of the macro workload (fixed forever: entries in
#: BENCH_perf.json are only comparable if every PR measures the same work).
SWEEP_SEEDS = tuple(range(1, 51))
#: Input vectors per swept program.
SWEEP_INPUT_VECTORS = 4
#: How often the analysis half is repeated (analyses are fast relative to the
#: sweep; repeating keeps their share of the total measurable).
ANALYSIS_REPEATS = 5


def machine_fingerprint() -> str:
    """Coarse identity of the measuring machine.

    Wall-clock numbers are only comparable between runs on similar hardware;
    the regression check refuses to compare a laptop measurement against a
    CI-runner measurement (the identity checksum, by contrast, is
    machine-independent and always compared).
    """
    return f"{platform.machine()}-cpu{os.cpu_count()}-py{platform.python_version()}"


@dataclass
class BenchmarkRecord:
    """One measured run of the macro workload."""

    label: str
    timestamp: str
    total_seconds: float
    phases: Dict[str, float]
    identity: Dict[str, object]
    workload: Dict[str, int]
    jobs: int = 1
    #: Function-summary cache accounting: ``enabled`` records whether a
    #: persistent store was attached (a "warm-capable" run), the counters are
    #: tier-1/tier-2 hits and misses summed over the whole workload.
    cache: Dict[str, object] = field(default_factory=dict)
    #: Work counters of the analysis half (fixpoint iterations, simplex
    #: pivots), summed over all analyses — wall-time attribution without a
    #: profiler.
    counters: Dict[str, int] = field(default_factory=dict)
    python: str = field(default_factory=platform.python_version)
    machine: str = field(default_factory=machine_fingerprint)
    #: Optional side measurements (e.g. the traced-vs-untraced overhead of
    #: ``bench --trace-overhead``); serialised only when non-empty so plain
    #: entries keep their historical shape.
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def cache_mode(self) -> tuple:
        """(persistent store attached, store was warm) — wall-clock numbers
        are only comparable between runs with equal cache modes."""
        return (bool(self.cache.get("enabled")), bool(self.cache.get("warm")))

    def to_json(self) -> Dict[str, object]:
        payload = {
            "label": self.label,
            "timestamp": self.timestamp,
            "python": self.python,
            "machine": self.machine,
            "jobs": self.jobs,
            "total_seconds": round(self.total_seconds, 4),
            "phases": {name: round(value, 4) for name, value in sorted(self.phases.items())},
            "identity": self.identity,
            "workload": self.workload,
            "cache": self.cache,
            "counters": self.counters,
        }
        if self.extra:
            payload["extra"] = self.extra
        return payload


# --------------------------------------------------------------------------- #
# The two halves of the macro workload
# --------------------------------------------------------------------------- #
def run_analysis_half(repeats: int = ANALYSIS_REPEATS, cache_dir: Optional[str] = None):
    """Analyse the two paper workloads through the batch API.

    Returns ``(reports, phase_seconds, wall, cache_stats, counters)``.  All analyses of
    one benchmark run share an in-process summary cache (that *is* the
    workload now: the engine memoises repeated analyses); ``cache_dir``
    additionally attaches the persistent tier shared with previous runs.
    """
    started = time.perf_counter()
    phase_totals: Dict[str, float] = {}
    counters: Dict[str, int] = {}
    reports = {}
    # Cache wiring through the facade's single precedence resolver; an absent
    # cache_dir means *no* persistent tier (never a global default), so the
    # measured workload is exactly what the flags say.
    cache = SummaryCache(store=resolve_summary_store(cache_dir if cache_dir else "off"))
    for _ in range(repeats):
        reports = {}
        # Fresh projects per repeat: program construction is part of the
        # measured workload (as it was when the modules were built directly).
        fc = Project.from_workload("flight-control", cache="off")
        mh = Project.from_workload("message-handler", cache="off")
        requests = []
        for proc_name, factory in (("simple", simple_scalar), ("leon2", leon2_like)):
            requests.append(
                AnalysisRequest(
                    fc.build(),
                    factory(),
                    annotations=fc.annotations,
                    all_modes=True,
                    label=f"flight_control/{proc_name}",
                )
            )
            requests.append(
                AnalysisRequest(
                    mh.build(),
                    factory(),
                    annotations=mh.annotations,
                    label=f"message_handler/{proc_name}",
                )
            )
        batch = analyze_batch(requests, jobs=1, summary_cache=cache)
        for request, result in zip(requests, batch.results):
            if request.all_modes:
                for mode, report in result.items():
                    reports[f"{request.label}/{mode or 'all'}"] = report
            else:
                reports[request.label] = result
        for report in reports.values():
            for phase, seconds in report.phase_seconds().items():
                key = f"analysis.{phase}"
                phase_totals[key] = phase_totals.get(key, 0.0) + seconds
            for timing in report.phases:
                if timing.iterations:
                    if timing.phase == "path analysis":
                        key = "analysis.simplex_pivots"
                    else:
                        key = "analysis.fixpoint_iterations"
                    counters[key] = counters.get(key, 0) + timing.iterations
    wall = time.perf_counter() - started
    phase_totals["analysis.wall"] = wall
    return reports, phase_totals, wall, cache.stats(), counters


def run_sweep_half(jobs: int = 1, cache_dir: Optional[str] = None) -> SweepResult:
    """The 50-seed differential sweep of the macro workload."""
    config = OracleConfig(max_input_vectors=SWEEP_INPUT_VECTORS, cache_dir=cache_dir)
    return run_sweep(SWEEP_SEEDS, config, jobs=jobs)


def sweep_checksum(sweep: SweepResult) -> str:
    """Checksum over every swept program's (wcet, bcet) pair."""
    digest = hashlib.sha256()
    for name, (wcet, bcet) in sorted(sweep.bounds_by_case().items()):
        digest.update(f"{name}:{wcet}:{bcet}\n".encode())
    return digest.hexdigest()[:16]


def run_macro_workload(
    label: str, jobs: int = 1, cache_dir: Optional[str] = None
) -> BenchmarkRecord:
    """Run the full macro workload once and package the measurement.

    ``cache_dir`` attaches the persistent function-summary store to both
    halves: the first ("cold") run over a fresh directory fills it, a second
    ("warm") run reuses it — results are checksum-identical either way, which
    CI asserts on every push.
    """
    started = time.perf_counter()
    reports, phases, _, analysis_cache_stats, counters = run_analysis_half(
        cache_dir=cache_dir
    )
    sweep = run_sweep_half(jobs=jobs, cache_dir=cache_dir)
    total = time.perf_counter() - started

    cache_stats: Dict[str, object] = {}
    merge_stats(cache_stats, analysis_cache_stats)
    merge_stats(cache_stats, sweep.cache_stats())
    cache_stats["enabled"] = bool(cache_dir)
    # A run is "warm" only when the store served it completely (hits and no
    # recomputation): its wall clock is only comparable against other fully
    # warm runs (see check_regression).  Partially warm runs are classified
    # cold — they can only be faster than a cold baseline, and the gate is
    # one-sided.
    cache_stats["warm"] = (
        cache_stats.get("tier2_hits", 0) > 0 and cache_stats.get("puts", 1) == 0
    )

    phases["sweep.wall"] = sweep.seconds
    for phase, seconds in sweep.phase_seconds().items():
        phases[f"sweep.{phase}"] = seconds

    identity: Dict[str, object] = {
        "sweep_checksum": sweep_checksum(sweep),
        "sweep_violations": sum(len(r.violations) for r in sweep.results),
    }
    for key in ("flight_control/simple/all", "flight_control/simple/air",
                "flight_control/leon2/all", "message_handler/simple",
                "message_handler/leon2"):
        report = reports[key]
        identity[f"{key}.wcet"] = report.wcet_cycles
        identity[f"{key}.bcet"] = report.bcet_cycles

    workload = {
        "analyses": len(reports) * ANALYSIS_REPEATS,
        "analysis_repeats": ANALYSIS_REPEATS,
        "sweep_programs": len(SWEEP_SEEDS),
        "sweep_runs": sweep.total_runs,
    }
    return BenchmarkRecord(
        label=label,
        timestamp=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        total_seconds=total,
        phases=phases,
        identity=identity,
        workload=workload,
        jobs=jobs,
        cache=cache_stats,
        counters=counters,
    )


# --------------------------------------------------------------------------- #
# Tracing overhead (``bench --trace-overhead``)
# --------------------------------------------------------------------------- #
def measure_trace_overhead(jobs: int = 1) -> BenchmarkRecord:
    """Measure the wall-clock cost of tracing on the macro workload.

    Runs the workload four times in ABBA order (untraced, traced, traced,
    untraced) so both modes get one cache-cold and one cache-warm slot —
    in-process kernel/code caches persist across runs, and a fixed order
    would systematically flatter whichever mode ran later.  The overhead is
    computed best-of-each (damping scheduler noise), and every run's
    identity block must match: tracing that changes a single bound is a
    bug, not overhead.

    Returns the best *untraced* record with the measurement attached under
    ``extra`` — that record is what lands in BENCH_perf.json, so the
    trajectory's wall-clock numbers stay untraced-to-untraced comparable.
    """
    from repro.obs import trace as obs_trace

    runs = []  # (traced, record, span_count)
    for traced in (False, True, True, False):
        if traced:
            previous = obs_trace.install(obs_trace.Tracer())
            try:
                record = run_macro_workload("traced", jobs=jobs)
                spans = len(obs_trace.active().drain())
            finally:
                obs_trace.install(previous)
        else:
            record = run_macro_workload("untraced", jobs=jobs)
            spans = 0
        runs.append((traced, record, spans))

    identities = [record.identity for _, record, _ in runs]
    if any(identity != identities[0] for identity in identities[1:]):
        raise AssertionError(
            "tracing changed analysis results: identity blocks differ "
            f"between runs: {identities}"
        )

    best_untraced = min(
        (record for traced, record, _ in runs if not traced),
        key=lambda record: record.total_seconds,
    )
    best_traced = min(
        (record for traced, record, _ in runs if traced),
        key=lambda record: record.total_seconds,
    )
    overhead = (
        best_traced.total_seconds - best_untraced.total_seconds
    ) / best_untraced.total_seconds
    best_untraced.extra["trace_overhead"] = {
        "untraced_seconds": round(best_untraced.total_seconds, 4),
        "traced_seconds": round(best_traced.total_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "spans_per_run": max(spans for _, _, spans in runs),
    }
    return best_untraced


# --------------------------------------------------------------------------- #
# BENCH_perf.json bookkeeping
# --------------------------------------------------------------------------- #
def load_history(path: str) -> Dict[str, object]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return {
            "schema": 1,
            "workload": (
                "macro: flight_control+message_handler analyses "
                f"(x{ANALYSIS_REPEATS}) + {len(SWEEP_SEEDS)}-seed differential sweep"
            ),
            "entries": [],
        }


def append_record(path: str, record: BenchmarkRecord) -> Dict[str, object]:
    history = load_history(path)
    history["entries"].append(record.to_json())
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    return history


def append_server_record(path: str, record: Dict[str, object]) -> Dict[str, object]:
    """Append a server load-benchmark entry (``benchmarks/bench_server.py``).

    Server throughput measurements live under their own ``server_entries``
    key: they measure a different workload shape (concurrent clients vs the
    serial macro workload), and :func:`check_regression` anchors its identity
    check on the *latest* macro entry — mixing the two lists would silently
    disable that guard.
    """
    history = load_history(path)
    history.setdefault("server_entries", []).append(record)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    return history


def check_regression(
    path: str, record: BenchmarkRecord, max_regression: float = 0.20
) -> Optional[str]:
    """Compare ``record`` against the committed trajectory.

    Two independent checks:

    * **identity** — against the *latest* entry regardless of machine: the
      sweep checksum is machine-independent, and a perf PR must not silently
      change analysis results;
    * **wall clock** — against the latest entry measured on the *same
      machine fingerprint* with the *same cache mode* (persistent store
      attached, store warm): comparing a laptop's seconds against a CI
      runner's — or a warm-cache run against a cold one — would fail
      spuriously.  Without a comparable baseline the wall-clock check is
      skipped; the uploaded measurement then seeds one.

    Returns an error message on failure, else ``None``.
    """
    history = load_history(path)
    entries: List[Dict] = history.get("entries", [])
    if not entries:
        return None
    problems = []

    latest = entries[-1]
    latest_checksum = latest.get("identity", {}).get("sweep_checksum")
    if latest_checksum and latest_checksum != record.identity["sweep_checksum"]:
        problems.append(
            "analysis results changed: sweep checksum "
            f"{record.identity['sweep_checksum']} != baseline {latest_checksum}"
        )

    baseline = next(
        (
            entry
            for entry in reversed(entries)
            if entry.get("machine") == record.machine
            and (
                bool(entry.get("cache", {}).get("enabled")),
                bool(entry.get("cache", {}).get("warm")),
            )
            == record.cache_mode
        ),
        None,
    )
    if baseline is not None:
        limit = baseline["total_seconds"] * (1.0 + max_regression)
        if record.total_seconds > limit:
            problems.append(
                f"wall-clock regression: {record.total_seconds:.2f}s vs baseline "
                f"{baseline['total_seconds']:.2f}s "
                f"(limit {limit:.2f}s = +{max_regression:.0%}, "
                f"machine {record.machine})"
            )
    return "; ".join(problems) or None
