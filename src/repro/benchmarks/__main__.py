"""Deprecated entry point: ``python -m repro.benchmarks``.

The benchmark CLI moved to the unified command line —
``python -m repro bench`` (see :mod:`repro.api.cli`).  This shim forwards
every argument unchanged (the flag surface is identical) and emits a
:class:`DeprecationWarning` so scripts migrate; it will keep working for the
foreseeable future.
"""

from __future__ import annotations

import sys
import warnings
from typing import List, Optional

from repro.api.cli import main as _unified_main


def main(argv: Optional[List[str]] = None) -> int:
    warnings.warn(
        "python -m repro.benchmarks is deprecated; use 'python -m repro bench' "
        "(same flags)",
        DeprecationWarning,
        stacklevel=2,
    )
    if argv is None:
        argv = sys.argv[1:]
    return _unified_main(["bench", *argv])


if __name__ == "__main__":
    sys.exit(main())
