"""CLI of the tracked perf baseline: ``python -m repro.benchmarks``.

Typical uses::

    # measure and append an entry to the repo-root trajectory file
    PYTHONPATH=src python -m repro.benchmarks --label "PR 7: xyz"

    # CI smoke: measure, compare against the committed baseline, don't append
    PYTHONPATH=src python -m repro.benchmarks --check-regression --no-append
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.benchmarks import (
    append_record,
    check_regression,
    run_macro_workload,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.benchmarks",
        description="run the macro perf workload and track BENCH_perf.json",
    )
    parser.add_argument(
        "--output", default="BENCH_perf.json", help="trajectory file (repo root)"
    )
    parser.add_argument("--label", default="local run", help="entry label")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep half (1 = serial, 0 = all cores)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent function-summary store for both halves; a first "
        "(cold) pass over a fresh directory fills it, a second (warm) pass "
        "reuses it with bit-identical results",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="measure only; do not write the entry to the trajectory file",
    )
    parser.add_argument(
        "--measurement-out", default=None,
        help="also write the fresh measurement (single entry) to this file",
    )
    parser.add_argument(
        "--check-regression", action="store_true",
        help="fail if wall-clock regresses beyond --max-regression vs the "
        "last committed entry, or if analysis results changed",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.20,
        help="allowed fractional slowdown for --check-regression (default 0.20)",
    )
    args = parser.parse_args(argv)

    print("running macro workload (analyses + 50-seed differential sweep)...")
    record = run_macro_workload(args.label, jobs=args.jobs, cache_dir=args.cache_dir)

    print(f"total: {record.total_seconds:.2f}s")
    for phase, seconds in sorted(record.phases.items()):
        print(f"  {phase:<28s} {seconds:8.3f}s")
    print(f"  sweep checksum: {record.identity['sweep_checksum']}")
    cache = record.cache
    for tier in ("tier1", "tier2"):
        hits = cache.get(f"{tier}_hits", 0)
        misses = cache.get(f"{tier}_misses", 0)
        rate = hits / (hits + misses) if hits + misses else 0.0
        print(f"  summary cache {tier}: {hits} hits / {misses} misses ({rate:.0%})")
    if record.identity["sweep_violations"]:
        print(
            f"ERROR: {record.identity['sweep_violations']} soundness violations "
            "during the benchmark sweep",
            file=sys.stderr,
        )
        return 2

    status = 0
    if args.check_regression:
        problem = check_regression(args.output, record, args.max_regression)
        if problem is None:
            print("regression check: OK (within budget of committed baseline)")
        else:
            print(f"regression check FAILED: {problem}", file=sys.stderr)
            status = 1

    if args.measurement_out:
        with open(args.measurement_out, "w", encoding="utf-8") as handle:
            json.dump(record.to_json(), handle, indent=2)
            handle.write("\n")
        print(f"wrote measurement to {args.measurement_out}")

    if not args.no_append:
        append_record(args.output, record)
        print(f"appended entry {record.label!r} to {args.output}")
    return status


if __name__ == "__main__":
    sys.exit(main())
