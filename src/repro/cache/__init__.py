"""Persistent, content-addressed result caching (tier 2 of the summary cache).

The analyzer's function-summary cache has two tiers: an in-process tier
(:class:`repro.analysis.summaries.SummaryCache`) and this package's optional
on-disk :class:`SummaryStore`, shared across processes and runs.  Because
every key is a content digest of *all* analysis inputs (function IR +
program layout, processor configuration, annotation facts, call context,
analysis options), a stored summary can never be served for changed inputs —
invalidation is structural, not time-based, and a warm cache is guaranteed
to reproduce the cold path's results bit for bit.

A store can be wired in three ways:

* explicitly per analyzer: ``WCETAnalyzer(..., summary_store=SummaryStore(p))``;
* per oracle sweep: ``OracleConfig(cache_dir=p)`` (each worker process opens
  the same directory);
* process-globally: :func:`configure` installs a default store that every
  analyzer constructed without an explicit store/cache picks up (the CLIs
  pass their ``--cache-dir`` explicitly; the differential oracle opts out
  of the global default altogether).
"""

from repro.cache.store import SummaryStore, configure, configured_store

__all__ = ["SummaryStore", "configure", "configured_store"]
