"""On-disk summary store: one pickle file per analysis *bucket*.

Layout
------
A bucket groups every summary that shares one ``(program digest, processor
digest, options digest)`` triple — i.e. all function/context/annotation
variants of one analysed executable on one platform.  Different operating
modes of the same program land in the *same* bucket (their item keys differ
by the per-function annotation digest), so one file read warms a whole
``analyze_all_modes`` family.

This granularity is deliberate: the macro workloads analyse the same few
programs many times, and a differential sweep touches each generated program
exactly once per run — one ``open`` + one ``pickle.load`` per analysis is two
orders of magnitude cheaper than a file per function summary, and distinct
programs never contend for the same file.

Concurrency: writes go through a temp file + :func:`os.replace`, so readers
always see a complete pickle.  Concurrent writers to the same bucket are
serialised by an advisory per-bucket file lock (``<bucket>.lock``,
:func:`fcntl.flock`) held across the whole read-merge-write cycle of
:meth:`SummaryStore.flush` — multi-process writers (the analysis server's
worker pool, parallel sweeps) can share one store without losing each
other's entries.  On platforms without ``fcntl`` the lock degrades to the
old best-effort behaviour: a lost race drops at most the other writer's
newest entries (a re-computable cache miss, never corruption).
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.obs import metrics as obs_metrics

_M_QUARANTINES = obs_metrics.REGISTRY.counter(
    "repro_store_quarantines_total", "Corrupt bucket files moved aside."
)


class SummaryStore:
    """Content-addressed persistent store for pickled analysis summaries.

    Values must be picklable; keys are ``(bucket, item)`` string pairs of
    content digests.  Loaded buckets are kept in an in-memory page cache, so
    repeated lookups within one process hit the disk once per bucket.
    """

    def __init__(self, path: str):
        self.path = path
        os.makedirs(path, exist_ok=True)
        self._pages: Dict[str, Dict[str, object]] = {}
        self._dirty: Dict[str, Dict[str, object]] = {}
        #: (mtime_ns, size) of each bucket file as last read/written by this
        #: instance; lets flush() skip the merge re-read when nobody else
        #: wrote the file in between.
        self._sigs: Dict[str, Optional[tuple]] = {}
        #: I/O statistics (reads = bucket files loaded, writes = files written).
        self.file_reads = 0
        self.file_writes = 0
        #: Corrupt bucket files detected (and quarantined) by this instance.
        self.corruptions = 0

    # ------------------------------------------------------------------ #
    def _bucket_path(self, bucket: str) -> str:
        return os.path.join(self.path, f"{bucket}.pkl")

    def _load_bucket(self, bucket: str) -> Dict[str, object]:
        page = self._pages.get(bucket)
        if page is not None:
            return page
        page = self._read_file(bucket)
        self._pages[bucket] = page
        return page

    def _file_sig(self, bucket: str) -> Optional[tuple]:
        try:
            stat = os.stat(self._bucket_path(bucket))
            return (stat.st_mtime_ns, stat.st_size)
        except OSError:
            return None

    def _read_file(self, bucket: str) -> Dict[str, object]:
        self._sigs[bucket] = self._file_sig(bucket)
        try:
            with open(self._bucket_path(bucket), "rb") as handle:
                self.file_reads += 1
                loaded = pickle.load(handle)
                if not isinstance(loaded, dict):
                    self._quarantine(bucket)
                    return {}
                return loaded
        except FileNotFoundError:
            return {}
        except OSError:
            # A transient I/O failure is a miss — the file itself may be
            # fine, so it must not be quarantined.
            return {}
        except Exception:  # noqa: BLE001 - any unpickling failure whatsoever
            # A corrupt bucket is quarantined (renamed aside) instead of
            # being silently re-parsed — and re-failing — on every read.
            # Unpickling executes arbitrary reduce hooks, so the failure set
            # is open-ended (UnpicklingError, EOFError, AttributeError,
            # ImportError, MemoryError on absurd lengths, ...).
            self._quarantine(bucket)
            return {}

    def _quarantine(self, bucket: str) -> None:
        """Move a corrupt bucket file aside as ``<bucket>.corrupt-<ts>``.

        The quarantine name drops the ``.pkl`` suffix, so the file no longer
        counts as a bucket (``__len__``) and can never be read again; the
        next flush simply recreates the bucket from scratch.  A lost rename
        race (another process quarantined it first) is fine — the file is
        gone either way.
        """
        self.corruptions += 1
        _M_QUARANTINES.inc()
        stamp = int(time.time() * 1000)
        try:
            os.replace(
                self._bucket_path(bucket),
                os.path.join(self.path, f"{bucket}.corrupt-{stamp}"),
            )
        except OSError:
            pass
        self._sigs[bucket] = self._file_sig(bucket)

    @contextmanager
    def _bucket_lock(self, bucket: str) -> Iterator[None]:
        """Advisory inter-process lock around one bucket's merge cycle.

        The lock lives in a sidecar ``<bucket>.lock`` file (never the pickle
        itself: :func:`os.replace` swaps the pickle's inode, which would
        silently detach any lock held on it).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = os.path.join(self.path, f"{bucket}.lock")
        with open(lock_path, "ab") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------ #
    def get(self, bucket: str, item: str) -> Optional[object]:
        return self._load_bucket(bucket).get(item)

    def put(self, bucket: str, item: str, value: object) -> None:
        """Stage ``value``; it becomes visible to this process immediately
        and is persisted on the next :meth:`flush`."""
        self._load_bucket(bucket)[item] = value
        self._dirty.setdefault(bucket, {})[item] = value

    def flush(self) -> None:
        """Persist staged entries, merging with concurrent writers' state.

        The whole read-merge-write cycle of each bucket runs under the
        bucket's advisory file lock: between our merge re-read and our
        :func:`os.replace`, no other process can slip in a write we would
        clobber, so concurrent flushes from many workers are lossless.
        """
        for bucket, staged in self._dirty.items():
            page = self._pages.get(bucket) or {}
            with self._bucket_lock(bucket):
                if self._file_sig(bucket) == self._sigs.get(bucket):
                    # Nobody else wrote the file since we last read/wrote it:
                    # our page (which already contains the staged entries) is
                    # the complete truth — no merge re-read needed.
                    merged = dict(page)
                    merged.update(staged)
                else:
                    # Concurrent writer: overlay our page on their state.
                    # Keys are content digests, so colliding entries are
                    # equivalent.
                    merged = self._read_file(bucket)
                    merged.update(page)
                    merged.update(staged)
                fd, tmp_path = tempfile.mkstemp(dir=self.path, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as handle:
                        pickle.dump(merged, handle, protocol=pickle.HIGHEST_PROTOCOL)
                    os.replace(tmp_path, self._bucket_path(bucket))
                    self.file_writes += 1
                except BaseException:
                    try:
                        os.unlink(tmp_path)
                    except OSError:
                        pass
                    raise
                self._pages[bucket] = merged
                self._sigs[bucket] = self._file_sig(bucket)
        self._dirty.clear()

    # ------------------------------------------------------------------ #
    def drop_page_cache(self) -> None:
        """Forget loaded buckets (tests use this to force re-reads)."""
        self.flush()
        self._pages.clear()

    def __len__(self) -> int:
        """Number of bucket files currently on disk."""
        return sum(1 for name in os.listdir(self.path) if name.endswith(".pkl"))


# --------------------------------------------------------------------------- #
# Process-global default store (the ``--cache-dir`` CLI hook).
# --------------------------------------------------------------------------- #
_DEFAULT_STORE: Optional[SummaryStore] = None


def configure(path: Optional[str]) -> Optional[SummaryStore]:
    """Install (or, with ``None``, clear) the process-global default store.

    Analyzers constructed without an explicit ``summary_store``/
    ``summary_cache`` pick this up — the hook for embedding applications
    that cannot thread a store through every construction site.  The
    repo's own CLIs pass their ``--cache-dir`` explicitly instead, and the
    differential oracle deliberately ignores this default
    (``OracleConfig(cache_dir=None)`` means *no* persistent caching).
    """
    global _DEFAULT_STORE
    _DEFAULT_STORE = SummaryStore(path) if path else None
    return _DEFAULT_STORE


def configured_store() -> Optional[SummaryStore]:
    return _DEFAULT_STORE
