"""Control-flow reconstruction — the "decoding phase" of Figure 1.

Given a laid-out :class:`~repro.ir.program.Program`, this package rebuilds the
control-flow graph of every function, computes dominator information, detects
natural loops, flags *irreducible* loops (multiple-entry cycles, the tier-one
challenge of Section 3.2), and builds the interprocedural call graph with
recursion detection.

Indirect branches and indirect calls (function pointers) cannot generally be
resolved automatically; resolution hints are supplied through
:class:`ControlFlowHints`, the machine-level counterpart of the "additional
knowledge" the paper says is required.
"""

from repro.cfg.graph import BasicBlock, ControlFlowGraph, Edge, EdgeKind
from repro.cfg.reconstruct import ControlFlowHints, reconstruct_cfg, reconstruct_program
from repro.cfg.dominators import DominatorInfo, compute_dominators
from repro.cfg.loops import Loop, LoopForest, find_loops
from repro.cfg.callgraph import CallGraph, build_callgraph

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "Edge",
    "EdgeKind",
    "ControlFlowHints",
    "reconstruct_cfg",
    "reconstruct_program",
    "DominatorInfo",
    "compute_dominators",
    "Loop",
    "LoopForest",
    "find_loops",
    "CallGraph",
    "build_callgraph",
]
