"""Interprocedural call graph construction and recursion detection.

MISRA-C rule 16.2 forbids direct and indirect recursion because recursive call
cycles play the same role in the call graph that irreducible loops play in the
CFG: without additional (manual) bounds no WCET can be computed.  The
:class:`CallGraph` built here detects such cycles and reports them; the WCET
analyzer refuses to analyse recursive programs unless a recursion bound
annotation is supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import CFGError
from repro.ir.instructions import Instruction, Opcode
from repro.ir.program import Program
from repro.cfg.reconstruct import ControlFlowHints


@dataclass(frozen=True)
class CallSite:
    """One call instruction in the program."""

    caller: str
    callee: str
    address: int
    indirect: bool = False


@dataclass
class CallGraph:
    """Directed graph of functions with call-site metadata."""

    entry: str
    nodes: Set[str] = field(default_factory=set)
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    call_sites: List[CallSite] = field(default_factory=list)
    unresolved_calls: List[Tuple[str, int]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def callees(self, function: str) -> Set[str]:
        return set(self.edges.get(function, set()))

    def callers(self, function: str) -> Set[str]:
        return {
            caller for caller, callees in self.edges.items() if function in callees
        }

    def call_sites_in(self, function: str) -> List[CallSite]:
        return [site for site in self.call_sites if site.caller == function]

    def call_sites_of(self, callee: str) -> List[CallSite]:
        return [site for site in self.call_sites if site.callee == callee]

    def reachable_from(self, function: Optional[str] = None) -> Set[str]:
        """Functions transitively reachable from ``function`` (default: entry)."""
        start = function or self.entry
        seen: Set[str] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.edges.get(node, ()))
        return seen

    # ------------------------------------------------------------------ #
    # Recursion
    # ------------------------------------------------------------------ #
    def recursive_cycles(self) -> List[List[str]]:
        """All elementary recursion cycles (as lists of function names).

        Self-recursion yields single-element cycles; mutual recursion yields
        the strongly connected component members.
        """
        cycles: List[List[str]] = []
        for component in self._sccs():
            if len(component) > 1:
                cycles.append(sorted(component))
            else:
                (only,) = component
                if only in self.edges.get(only, set()):
                    cycles.append([only])
        return cycles

    def recursive_functions(self) -> Set[str]:
        result: Set[str] = set()
        for cycle in self.recursive_cycles():
            result.update(cycle)
        return result

    @property
    def has_recursion(self) -> bool:
        return bool(self.recursive_cycles())

    def strongly_connected_components(self) -> List[Set[str]]:
        """All SCCs of the call graph (singletons included), in Tarjan order.

        Tarjan's algorithm emits components in reverse topological order of the
        condensation, i.e. callees before callers — exactly the bottom-up
        processing order the WCET analyzer needs even when recursion cycles are
        present.
        """
        return self._sccs()

    def _sccs(self) -> List[Set[str]]:
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        index: Dict[str, int] = {}
        on_stack: Set[str] = set()
        result: List[Set[str]] = []

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(self.edges.get(root, ()))))]
            index[root] = lowlink[root] = index_counter[0]
            index_counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = lowlink[succ] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self.edges.get(succ, ())))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if not advanced:
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        lowlink[parent] = min(lowlink[parent], lowlink[node])
                    if lowlink[node] == index[node]:
                        component: Set[str] = set()
                        while True:
                            member = stack.pop()
                            on_stack.discard(member)
                            component.add(member)
                            if member == node:
                                break
                        result.append(component)

        for node in sorted(self.nodes):
            if node not in index:
                strongconnect(node)
        return result

    # ------------------------------------------------------------------ #
    # Orderings
    # ------------------------------------------------------------------ #
    def bottom_up_order(self) -> List[str]:
        """Functions ordered callees-before-callers (requires no recursion).

        The WCET analyzer uses this order to compute callee WCETs before the
        functions that call them.  Raises :class:`CFGError` if the call graph
        contains a recursion cycle.
        """
        cycles = self.recursive_cycles()
        if cycles:
            raise CFGError(
                "call graph contains recursion cycles: "
                + "; ".join(" -> ".join(cycle) for cycle in cycles)
            )
        visited: Set[str] = set()
        order: List[str] = []

        def visit(node: str) -> None:
            stack: List[Tuple[str, List[str]]] = [
                (node, sorted(self.edges.get(node, ())))
            ]
            pending: Set[str] = {node}
            while stack:
                current, callees = stack[-1]
                advanced = False
                while callees:
                    callee = callees.pop()
                    if callee not in visited and callee not in pending:
                        pending.add(callee)
                        stack.append((callee, sorted(self.edges.get(callee, ()))))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    pending.discard(current)
                    if current not in visited:
                        visited.add(current)
                        order.append(current)

        for node in sorted(self.nodes):
            if node not in visited:
                visit(node)
        return order

    def max_call_depth(self, function: Optional[str] = None) -> int:
        """Longest call chain from ``function`` (default entry); recursion -> -1."""
        if self.has_recursion:
            return -1
        depth_cache: Dict[str, int] = {}

        for node in self.bottom_up_order():
            callees = self.edges.get(node, set())
            depth_cache[node] = 1 + max(
                (depth_cache[c] for c in callees), default=0
            )
        return depth_cache.get(function or self.entry, 0)


def build_callgraph(
    program: Program, hints: Optional[ControlFlowHints] = None, strict: bool = True
) -> CallGraph:
    """Build the call graph of ``program``.

    Indirect call sites are resolved through ``hints``
    (:class:`~repro.cfg.reconstruct.ControlFlowHints`); without a hint they are
    recorded in :attr:`CallGraph.unresolved_calls` (permissive mode) or raise
    :class:`CFGError` (strict mode), because an unresolved function pointer
    makes the interprocedural analysis unsound.
    """
    program.ensure_layout()
    hints = hints or ControlFlowHints()
    graph = CallGraph(entry=program.entry, nodes=set(program.functions))
    for name in program.functions:
        graph.edges.setdefault(name, set())

    for name, function in program.functions.items():
        for instr in function.instructions:
            if instr.opcode is Opcode.CALL:
                callee = instr.call_target()
                if callee not in program.functions:
                    raise CFGError(
                        f"{name} calls undefined function {callee!r}"
                    )
                graph.edges[name].add(callee)
                graph.call_sites.append(
                    CallSite(caller=name, callee=callee, address=instr.address)
                )
            elif instr.opcode is Opcode.ICALL:
                targets = hints.call_targets(instr.address)
                if targets is None:
                    if strict:
                        raise CFGError(
                            f"{name}: indirect call at {instr.address:#x} has no "
                            "callee hints (unresolved function pointer)"
                        )
                    graph.unresolved_calls.append((name, instr.address))
                    continue
                for callee in targets:
                    if callee not in program.functions:
                        raise CFGError(
                            f"indirect call hint at {instr.address:#x} targets "
                            f"undefined function {callee!r}"
                        )
                    graph.edges[name].add(callee)
                    graph.call_sites.append(
                        CallSite(
                            caller=name,
                            callee=callee,
                            address=instr.address,
                            indirect=True,
                        )
                    )
    return graph
