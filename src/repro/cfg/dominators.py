"""Dominator analysis over control-flow graphs.

Implements the classic iterative dominator algorithm (Cooper/Harvey/Kennedy
style, on reverse postorder).  Dominators are the backbone of natural-loop
detection (:mod:`repro.cfg.loops`) and of the virtual-loop-unrolling contexts
used by the WCET analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import CFGError
from repro.cfg.graph import ENTRY, EXIT, ControlFlowGraph


@dataclass
class DominatorInfo:
    """Immediate dominators and derived queries for one CFG."""

    cfg: ControlFlowGraph
    idom: Dict[int, Optional[int]] = field(default_factory=dict)

    def dominates(self, a: int, b: int) -> bool:
        """True if node ``a`` dominates node ``b`` (reflexive)."""
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def immediate_dominator(self, node: int) -> Optional[int]:
        return self.idom.get(node)

    def dominators_of(self, node: int) -> List[int]:
        """All dominators of ``node`` from the node itself up to the entry."""
        result: List[int] = []
        current: Optional[int] = node
        while current is not None:
            result.append(current)
            current = self.idom.get(current)
        return result

    def dominator_tree_children(self) -> Dict[int, List[int]]:
        children: Dict[int, List[int]] = {}
        for node, parent in self.idom.items():
            if parent is not None:
                children.setdefault(parent, []).append(node)
        for child_list in children.values():
            child_list.sort()
        return children

    def dominance_frontier(self) -> Dict[int, Set[int]]:
        """Dominance frontiers (useful for SSA-style analyses and tests)."""
        frontier: Dict[int, Set[int]] = {node: set() for node in self.idom}
        for node in self.idom:
            predecessors = [
                p for p in self.cfg.predecessors(node) if p in self.idom
            ]
            if len(predecessors) < 2:
                continue
            for pred in predecessors:
                runner: Optional[int] = pred
                while runner is not None and runner != self.idom.get(node):
                    frontier.setdefault(runner, set()).add(node)
                    runner = self.idom.get(runner)
        return frontier


def compute_dominators(cfg: ControlFlowGraph) -> DominatorInfo:
    """Compute immediate dominators of all blocks reachable from the entry.

    The virtual :data:`~repro.cfg.graph.ENTRY` node is the root; unreachable
    blocks are absent from the result (callers use that to detect dead code,
    cf. MISRA rule 14.1).
    """
    order = cfg.reverse_postorder()
    if not order:
        raise CFGError(
            f"function {cfg.function_name!r} has no blocks reachable from entry"
        )
    position = {node: index for index, node in enumerate([ENTRY] + order)}

    idom: Dict[int, Optional[int]] = {ENTRY: None}
    changed = True

    def intersect(a: int, b: int) -> int:
        while a != b:
            while position[a] > position[b]:
                parent = idom.get(a)
                if parent is None:
                    return b
                a = parent
            while position[b] > position[a]:
                parent = idom.get(b)
                if parent is None:
                    return a
                b = parent
        return a

    while changed:
        changed = False
        for node in order:
            candidates = [
                p
                for p in cfg.predecessors(node)
                if p in idom and p != EXIT
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = intersect(new_idom, pred)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True

    info = DominatorInfo(cfg=cfg, idom=idom)
    return info
