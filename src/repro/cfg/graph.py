"""Control-flow graph data structures.

A :class:`ControlFlowGraph` is per-function: its nodes are
:class:`BasicBlock` objects identified by the address of their first
instruction, plus two virtual nodes :data:`ENTRY` and :data:`EXIT` used by
analyses (dominators, IPET) that need unique source/sink nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import CFGError
from repro.ir.instructions import Instruction, Opcode

#: Identifier of the virtual entry node.
ENTRY = -1
#: Identifier of the virtual exit node.
EXIT = -2


class EdgeKind(enum.Enum):
    """Classification of CFG edges."""

    FALLTHROUGH = "fallthrough"   # sequential flow into the next block
    TAKEN = "taken"               # conditional/unconditional branch taken
    INDIRECT = "indirect"         # resolved target of an indirect branch
    ENTRY = "entry"               # virtual entry edge
    EXIT = "exit"                 # virtual exit edge (after ret/halt)


@dataclass(frozen=True)
class Edge:
    """A directed CFG edge between two block identifiers."""

    source: int
    target: int
    kind: EdgeKind = EdgeKind.FALLTHROUGH

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{_node_name(self.source)} -> {_node_name(self.target)} [{self.kind.value}]"


def _node_name(node: int) -> str:
    if node == ENTRY:
        return "ENTRY"
    if node == EXIT:
        return "EXIT"
    return f"{node:#x}"


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence.

    The block identifier is the address of its first instruction.
    """

    start_address: int
    instructions: List[Instruction] = field(default_factory=list)
    function_name: str = ""

    @property
    def id(self) -> int:
        return self.start_address

    @property
    def end_address(self) -> int:
        """Address one past the last instruction."""
        if not self.instructions:
            return self.start_address
        return self.instructions[-1].address + 4

    @property
    def last(self) -> Instruction:
        return self.instructions[-1]

    @property
    def size(self) -> int:
        return len(self.instructions)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def call_targets(self) -> List[str]:
        """Direct call targets appearing in this block, in order."""
        return [
            instr.call_target()
            for instr in self.instructions
            if instr.opcode is Opcode.CALL
        ]

    def call_sites(self) -> List[Instruction]:
        """All (direct and indirect) call instructions of this block."""
        return [instr for instr in self.instructions if instr.is_call]

    def memory_instructions(self) -> List[Instruction]:
        return [instr for instr in self.instructions if instr.is_memory_access]

    def addresses(self) -> List[int]:
        return [instr.address for instr in self.instructions]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.instructions[0].label if self.instructions else None
        head = f"block {self.start_address:#x}"
        if label:
            head += f" ({label})"
        return head

    def __len__(self) -> int:
        return len(self.instructions)


class ControlFlowGraph:
    """Per-function control-flow graph."""

    def __init__(self, function_name: str, entry_block: int):
        self.function_name = function_name
        self.entry_block = entry_block
        self._blocks: Dict[int, BasicBlock] = {}
        self._successors: Dict[int, List[Edge]] = {ENTRY: [], EXIT: []}
        self._predecessors: Dict[int, List[Edge]] = {ENTRY: [], EXIT: []}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.id in self._blocks:
            raise CFGError(f"duplicate basic block at {block.id:#x}")
        self._blocks[block.id] = block
        self._successors.setdefault(block.id, [])
        self._predecessors.setdefault(block.id, [])
        return block

    def add_edge(self, source: int, target: int, kind: EdgeKind) -> Edge:
        for existing in self._successors.get(source, []):
            if existing.target == target:
                return existing
        edge = Edge(source, target, kind)
        self._successors.setdefault(source, []).append(edge)
        self._predecessors.setdefault(target, []).append(edge)
        return edge

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def blocks(self) -> Dict[int, BasicBlock]:
        return dict(self._blocks)

    def block(self, block_id: int) -> BasicBlock:
        try:
            return self._blocks[block_id]
        except KeyError as exc:
            raise CFGError(
                f"no basic block {block_id:#x} in function {self.function_name!r}"
            ) from exc

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks

    def block_containing(self, address: int) -> BasicBlock:
        """The basic block containing the instruction at ``address``."""
        for block in self._blocks.values():
            if block.start_address <= address < block.end_address:
                return block
        raise CFGError(
            f"no basic block contains address {address:#x} "
            f"in function {self.function_name!r}"
        )

    def node_ids(self, include_virtual: bool = False) -> List[int]:
        ids = sorted(self._blocks)
        if include_virtual:
            return [ENTRY] + ids + [EXIT]
        return ids

    def successors(self, node: int) -> List[int]:
        return [edge.target for edge in self._successors.get(node, [])]

    def predecessors(self, node: int) -> List[int]:
        return [edge.source for edge in self._predecessors.get(node, [])]

    def out_edges(self, node: int) -> List[Edge]:
        return list(self._successors.get(node, []))

    def in_edges(self, node: int) -> List[Edge]:
        return list(self._predecessors.get(node, []))

    def edges(self) -> List[Edge]:
        result: List[Edge] = []
        for edges in self._successors.values():
            result.extend(edges)
        return result

    def edge(self, source: int, target: int) -> Edge:
        for candidate in self._successors.get(source, []):
            if candidate.target == target:
                return candidate
        raise CFGError(
            f"no edge {_node_name(source)} -> {_node_name(target)} in "
            f"function {self.function_name!r}"
        )

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def num_edges(self) -> int:
        return sum(len(edges) for edges in self._successors.values())

    def exit_blocks(self) -> List[int]:
        """Blocks with an edge to the virtual exit node."""
        return [edge.source for edge in self._predecessors.get(EXIT, [])]

    # ------------------------------------------------------------------ #
    # Traversals
    # ------------------------------------------------------------------ #
    def reachable_from_entry(self) -> Set[int]:
        """Block ids reachable from the virtual entry node."""
        seen: Set[int] = set()
        stack = [ENTRY]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.successors(node))
        seen.discard(ENTRY)
        seen.discard(EXIT)
        return seen

    def reverse_postorder(self) -> List[int]:
        """Reverse postorder of real blocks reachable from entry."""
        visited: Set[int] = set()
        order: List[int] = []

        def visit(node: int) -> None:
            stack: List[Tuple[int, Iterator[int]]] = [(node, iter(self.successors(node)))]
            visited.add(node)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for successor in successors:
                    if successor not in visited and successor not in (EXIT,):
                        visited.add(successor)
                        stack.append((successor, iter(self.successors(successor))))
                        advanced = True
                        break
                if not advanced:
                    stack.pop()
                    if current not in (ENTRY, EXIT):
                        order.append(current)

        visit(ENTRY)
        order.reverse()
        return order

    def depth_first_order(self) -> List[int]:
        """Preorder DFS over real blocks from the entry block."""
        seen: Set[int] = set()
        order: List[int] = []
        stack = [self.entry_block]
        while stack:
            node = stack.pop()
            if node in seen or node in (ENTRY, EXIT):
                continue
            seen.add(node)
            order.append(node)
            stack.extend(reversed(self.successors(node)))
        return order

    # ------------------------------------------------------------------ #
    def to_dot(self) -> str:
        """Graphviz rendering (for documentation / debugging)."""
        lines = [f'digraph "{self.function_name}" {{']
        lines.append('  entry [shape=circle, label="entry"];')
        lines.append('  exit [shape=doublecircle, label="exit"];')
        for block in self._blocks.values():
            text = "\\l".join(str(i) for i in block.instructions) + "\\l"
            lines.append(f'  "b{block.id:#x}" [shape=box, label="{text}"];')
        for edge in self.edges():
            src = "entry" if edge.source == ENTRY else f'"b{edge.source:#x}"'
            dst = "exit" if edge.target == EXIT else f'"b{edge.target:#x}"'
            lines.append(f"  {src} -> {dst} [label=\"{edge.kind.value}\"];")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ControlFlowGraph({self.function_name!r}, blocks={self.num_blocks}, "
            f"edges={self.num_edges})"
        )
