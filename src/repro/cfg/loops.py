"""Loop detection: natural loops, nesting, and irreducibility.

Two of the tier-one challenges of Section 3.2 live here:

* *Loops and recursions* — every loop needs an iteration bound before a WCET
  bound can be computed at all.  The natural-loop structure computed here is
  what the loop-bound analysis (:mod:`repro.analysis.loopbounds`) and the
  annotation system attach bounds to.
* *Irreducible loops* — loops with multiple entry points (constructed with
  ``goto``, ``setjmp``/``longjmp`` or hand-written assembly).  The paper notes
  there is no feasible approach to bound them automatically and that
  precision-enhancing techniques such as virtual loop unrolling are not
  applicable.  We detect them with the classic criterion: the CFG is reducible
  iff every retreating edge (DFS edge to an ancestor) targets a dominator of
  its source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cfg.dominators import DominatorInfo, compute_dominators
from repro.cfg.graph import ENTRY, EXIT, ControlFlowGraph, Edge


@dataclass
class Loop:
    """A loop (natural or irreducible cycle) of a CFG.

    Attributes
    ----------
    header:
        The (canonical) header block.  For natural loops this is the unique
        entry; for irreducible cycles it is the lowest-address entry node and
        :attr:`entries` lists all of them.
    blocks:
        All blocks belonging to the loop, including the header.
    back_edges:
        The latch edges ``(tail, header)`` that close the loop.
    entries:
        Entry blocks (length 1 for natural loops, >1 for irreducible ones).
    irreducible:
        True when the cycle has multiple entries.
    parent:
        Enclosing loop header, if nested.
    """

    header: int
    blocks: Set[int] = field(default_factory=set)
    back_edges: List[Tuple[int, int]] = field(default_factory=list)
    entries: Set[int] = field(default_factory=set)
    irreducible: bool = False
    parent: Optional[int] = None
    depth: int = 1

    @property
    def body(self) -> Set[int]:
        """Blocks of the loop excluding the header."""
        return self.blocks - {self.header}

    def contains(self, block: int) -> bool:
        return block in self.blocks

    def exit_edges(self, cfg: ControlFlowGraph) -> List[Edge]:
        """Edges leaving the loop (from a loop block to a non-loop block)."""
        result: List[Edge] = []
        for block in sorted(self.blocks):
            for edge in cfg.out_edges(block):
                if edge.target not in self.blocks:
                    result.append(edge)
        return result

    def latch_blocks(self) -> List[int]:
        return [tail for tail, _ in self.back_edges]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "irreducible cycle" if self.irreducible else "loop"
        return f"{kind} header={self.header:#x} blocks={len(self.blocks)} depth={self.depth}"


@dataclass
class LoopForest:
    """All loops of one function plus derived queries."""

    function_name: str
    loops: List[Loop] = field(default_factory=list)
    #: True if the whole CFG is reducible (no multi-entry cycles).
    reducible: bool = True
    #: Retreating edges that are not back edges (witnesses of irreducibility).
    irreducible_edges: List[Tuple[int, int]] = field(default_factory=list)

    def loop_with_header(self, header: int) -> Optional[Loop]:
        for loop in self.loops:
            if loop.header == header:
                return loop
        return None

    def innermost_loop_of(self, block: int) -> Optional[Loop]:
        """The innermost loop containing ``block`` (or ``None``)."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if block in loop.blocks:
                if best is None or loop.depth > best.depth:
                    best = loop
        return best

    def loops_containing(self, block: int) -> List[Loop]:
        return [loop for loop in self.loops if block in loop.blocks]

    def headers(self) -> List[int]:
        return [loop.header for loop in self.loops]

    def max_depth(self) -> int:
        return max((loop.depth for loop in self.loops), default=0)

    @property
    def has_irreducible(self) -> bool:
        return any(loop.irreducible for loop in self.loops) or bool(
            self.irreducible_edges
        )

    def __len__(self) -> int:
        return len(self.loops)


def _natural_loop_body(cfg: ControlFlowGraph, header: int, tail: int) -> Set[int]:
    """Blocks of the natural loop defined by back edge ``tail -> header``."""
    body = {header}
    stack: List[int] = []
    if tail not in body:
        body.add(tail)
        stack.append(tail)
    while stack:
        node = stack.pop()
        for pred in cfg.predecessors(node):
            if pred in (ENTRY, EXIT):
                continue
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def _scc_of(cfg: ControlFlowGraph, nodes: Set[int]) -> List[Set[int]]:
    """Strongly connected components of the subgraph induced by ``nodes``."""
    index_counter = [0]
    stack: List[int] = []
    lowlink: Dict[int, int] = {}
    index: Dict[int, int] = {}
    on_stack: Set[int] = set()
    result: List[Set[int]] = []

    def strongconnect(root: int) -> None:
        work = [(root, iter([s for s in cfg.successors(root) if s in nodes]))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter([s for s in cfg.successors(succ) if s in nodes])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if not advanced:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: Set[int] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    result.append(component)

    for node in sorted(nodes):
        if node not in index:
            strongconnect(node)
    return result


def find_loops(
    cfg: ControlFlowGraph, dominators: Optional[DominatorInfo] = None
) -> LoopForest:
    """Detect all loops of ``cfg`` and classify reducibility."""
    dominators = dominators or compute_dominators(cfg)
    reachable = cfg.reachable_from_entry()
    forest = LoopForest(function_name=cfg.function_name)

    # --- classify retreating edges via iterative DFS ---------------------- #
    color: Dict[int, int] = {}  # 0 unvisited / 1 on stack / 2 done
    retreating: List[Tuple[int, int]] = []
    order_stack: List[Tuple[int, List[int]]] = []

    start = cfg.entry_block
    color[start] = 1
    order_stack.append((start, [s for s in cfg.successors(start) if s in reachable]))
    while order_stack:
        node, successors = order_stack[-1]
        if successors:
            succ = successors.pop()
            state = color.get(succ, 0)
            if state == 0:
                color[succ] = 1
                order_stack.append(
                    (succ, [s for s in cfg.successors(succ) if s in reachable])
                )
            elif state == 1:
                retreating.append((node, succ))
        else:
            color[node] = 2
            order_stack.pop()

    back_edges: List[Tuple[int, int]] = []
    for tail, head in retreating:
        if dominators.dominates(head, tail):
            back_edges.append((tail, head))
        else:
            forest.irreducible_edges.append((tail, head))
            forest.reducible = False

    # --- natural loops from back edges ------------------------------------ #
    loops_by_header: Dict[int, Loop] = {}
    for tail, header in back_edges:
        body = _natural_loop_body(cfg, header, tail)
        loop = loops_by_header.get(header)
        if loop is None:
            loop = Loop(header=header, blocks=set(), entries={header})
            loops_by_header[header] = loop
        loop.blocks |= body
        loop.back_edges.append((tail, header))

    # --- irreducible cycles as SCC-based pseudo-loops ---------------------- #
    if not forest.reducible:
        heads_of_irreducible = {head for _, head in forest.irreducible_edges}
        for component in _scc_of(cfg, reachable):
            if len(component) < 2:
                continue
            entries = {
                node
                for node in component
                if any(pred not in component for pred in cfg.predecessors(node))
            }
            # Only treat the SCC as irreducible if it has more than one entry
            # and actually contains one of the offending retreating edges.
            if len(entries) > 1 and (component & heads_of_irreducible):
                header = min(entries)
                if header in loops_by_header:
                    loop = loops_by_header[header]
                    loop.blocks |= component
                    loop.entries |= entries
                    loop.irreducible = True
                else:
                    loop = Loop(
                        header=header,
                        blocks=set(component),
                        entries=entries,
                        irreducible=True,
                        back_edges=[
                            (tail, head)
                            for tail, head in forest.irreducible_edges
                            if head in component
                        ],
                    )
                    loops_by_header[header] = loop

    forest.loops = sorted(loops_by_header.values(), key=lambda l: l.header)

    # --- nesting and depth -------------------------------------------------- #
    for inner in forest.loops:
        best_parent: Optional[Loop] = None
        for outer in forest.loops:
            if outer is inner:
                continue
            if inner.header in outer.blocks and inner.blocks <= outer.blocks:
                if best_parent is None or len(outer.blocks) < len(best_parent.blocks):
                    best_parent = outer
        if best_parent is not None:
            inner.parent = best_parent.header

    def depth_of(loop: Loop) -> int:
        depth = 1
        parent = loop.parent
        seen = set()
        while parent is not None and parent not in seen:
            seen.add(parent)
            depth += 1
            parent_loop = next(
                (l for l in forest.loops if l.header == parent), None
            )
            parent = parent_loop.parent if parent_loop else None
        return depth

    for loop in forest.loops:
        loop.depth = depth_of(loop)

    return forest
