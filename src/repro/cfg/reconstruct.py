"""CFG reconstruction from laid-out IR programs (the decoding phase).

The reconstruction splits every function into maximal basic blocks and wires
control-flow edges.  Direct branches are resolved from their label operands.
*Indirect* branches (``ibr``) and *indirect calls* (``icall``) — the binary
footprint of function pointers and computed gotos — cannot be resolved from
the instruction stream alone (Section 3.2, "Function Pointers"); they must be
resolved through :class:`ControlFlowHints`.  If no hint is available the
reconstruction raises :class:`~repro.errors.CFGError` (strict mode, the
default, mirroring that a WCET bound cannot be computed at all) or records the
problem and drops the edge (permissive mode, used by the guideline checker to
report the issue instead of aborting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import CFGError
from repro.ir.instructions import INSTRUCTION_SIZE, Instruction, Opcode
from repro.ir.program import Function, Program
from repro.cfg.graph import ENTRY, EXIT, BasicBlock, ControlFlowGraph, EdgeKind


@dataclass
class ControlFlowHints:
    """User/designer-supplied resolution of indirect control flow.

    Attributes
    ----------
    indirect_branch_targets:
        Maps the address of an ``ibr`` instruction to the list of code labels
        (within the same function) it may jump to.
    indirect_call_targets:
        Maps the address of an ``icall`` instruction to the list of function
        names it may call.  This models the event-handler tables the paper
        mentions (CAN communication callbacks etc.).
    """

    indirect_branch_targets: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    indirect_call_targets: Dict[int, Tuple[str, ...]] = field(default_factory=dict)

    def branch_targets(self, address: int) -> Optional[Tuple[str, ...]]:
        return self.indirect_branch_targets.get(address)

    def call_targets(self, address: int) -> Optional[Tuple[str, ...]]:
        return self.indirect_call_targets.get(address)

    def add_branch_targets(self, address: int, labels: Sequence[str]) -> None:
        self.indirect_branch_targets[address] = tuple(labels)

    def add_call_targets(self, address: int, functions: Sequence[str]) -> None:
        self.indirect_call_targets[address] = tuple(functions)


@dataclass
class ReconstructionIssue:
    """A control-flow reconstruction problem (unresolved indirect transfer)."""

    function: str
    address: int
    kind: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.function}@{self.address:#x}: {self.message}"


def _find_leaders(function: Function, hints: Optional[ControlFlowHints]) -> Set[int]:
    """Compute the set of basic-block leader addresses of ``function``."""
    labels = function.label_addresses()
    leaders: Set[int] = {function.entry_address}
    instructions = function.instructions
    for index, instr in enumerate(instructions):
        target = instr.branch_target()
        if target is not None:
            leaders.add(labels[target])
        if hints is not None and instr.opcode is Opcode.IBR:
            for label in hints.branch_targets(instr.address) or ():
                if label in labels:
                    leaders.add(labels[label])
        if instr.is_terminator and index + 1 < len(instructions):
            leaders.add(instructions[index + 1].address)
        # A labelled instruction always starts a block even if nothing is known
        # to branch to it (keeps reconstruction deterministic and makes
        # unreachable-code detection meaningful, cf. MISRA rule 14.1).
        if instr.label is not None:
            leaders.add(instr.address)
    return leaders


def reconstruct_cfg(
    program: Program,
    function_name: str,
    hints: Optional[ControlFlowHints] = None,
    strict: bool = True,
) -> Tuple[ControlFlowGraph, List[ReconstructionIssue]]:
    """Reconstruct the CFG of one function.

    Returns the graph and the list of issues encountered.  With
    ``strict=True`` (default) an unresolved indirect branch raises
    :class:`CFGError` instead of being recorded.
    """
    program.ensure_layout()
    function = program.function(function_name)
    if not function.instructions:
        raise CFGError(f"function {function_name!r} has no instructions")

    hints = hints or ControlFlowHints()
    issues: List[ReconstructionIssue] = []
    labels = function.label_addresses()
    leaders = sorted(_find_leaders(function, hints))
    cfg = ControlFlowGraph(function_name, entry_block=function.entry_address)

    # Build the blocks.
    leader_set = set(leaders)
    current: Optional[BasicBlock] = None
    for instr in function.instructions:
        if instr.address in leader_set:
            if current is not None:
                cfg.add_block(current)
            current = BasicBlock(
                start_address=instr.address, function_name=function_name
            )
        assert current is not None
        current.instructions.append(instr)
        if instr.is_terminator:
            cfg.add_block(current)
            current = None
    if current is not None:
        cfg.add_block(current)

    # Wire the edges.
    block_ids = cfg.node_ids()
    next_block: Dict[int, Optional[int]] = {}
    for index, block_id in enumerate(block_ids):
        next_block[block_id] = block_ids[index + 1] if index + 1 < len(block_ids) else None

    cfg.add_edge(ENTRY, function.entry_address, EdgeKind.ENTRY)

    for block_id in block_ids:
        block = cfg.block(block_id)
        last = block.last
        fallthrough = next_block[block_id]

        if last.opcode is Opcode.BR:
            cfg.add_edge(block_id, labels[last.branch_target()], EdgeKind.TAKEN)
        elif last.opcode in (Opcode.BT, Opcode.BF):
            cfg.add_edge(block_id, labels[last.branch_target()], EdgeKind.TAKEN)
            if fallthrough is not None:
                cfg.add_edge(block_id, fallthrough, EdgeKind.FALLTHROUGH)
            else:
                issue = ReconstructionIssue(
                    function_name,
                    last.address,
                    "falloff",
                    "conditional branch at end of function with no fall-through",
                )
                if strict:
                    raise CFGError(str(issue))
                issues.append(issue)
        elif last.opcode is Opcode.IBR:
            targets = hints.branch_targets(last.address)
            if targets is None:
                issue = ReconstructionIssue(
                    function_name,
                    last.address,
                    "indirect-branch",
                    "indirect branch with no target hints "
                    "(function pointer / computed goto, tier-one challenge)",
                )
                if strict:
                    raise CFGError(str(issue))
                issues.append(issue)
            else:
                for label in targets:
                    if label not in labels:
                        raise CFGError(
                            f"indirect branch hint targets unknown label {label!r} "
                            f"in {function_name!r}"
                        )
                    cfg.add_edge(block_id, labels[label], EdgeKind.INDIRECT)
        elif last.opcode in (Opcode.RET, Opcode.HALT):
            cfg.add_edge(block_id, EXIT, EdgeKind.EXIT)
        else:
            # Block ends because the next instruction is a leader.
            if fallthrough is not None:
                cfg.add_edge(block_id, fallthrough, EdgeKind.FALLTHROUGH)
            else:
                cfg.add_edge(block_id, EXIT, EdgeKind.EXIT)

        # Record unresolved indirect calls (they do not affect intraprocedural
        # edges but make the interprocedural analysis impossible).
        for instr in block.instructions:
            if instr.opcode is Opcode.ICALL and hints.call_targets(instr.address) is None:
                issue = ReconstructionIssue(
                    function_name,
                    instr.address,
                    "indirect-call",
                    "indirect call with no callee hints (function pointer, "
                    "tier-one challenge)",
                )
                if strict:
                    raise CFGError(str(issue))
                issues.append(issue)

    return cfg, issues


def reconstruct_program(
    program: Program,
    hints: Optional[ControlFlowHints] = None,
    strict: bool = True,
) -> Tuple[Dict[str, ControlFlowGraph], List[ReconstructionIssue]]:
    """Reconstruct the CFGs of all functions of ``program``."""
    cfgs: Dict[str, ControlFlowGraph] = {}
    issues: List[ReconstructionIssue] = []
    for name in program.functions:
        cfg, function_issues = reconstruct_cfg(program, name, hints=hints, strict=strict)
        cfgs[name] = cfg
        issues.extend(function_issues)
    return cfgs, issues
