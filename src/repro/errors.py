"""Exception hierarchy shared by all repro subpackages.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the analysis stage that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed intermediate-representation program or instruction."""


class AssemblyError(IRError):
    """Error while parsing the textual assembly format."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class ExecutionError(ReproError):
    """Runtime fault during concrete interpretation (e.g. bad memory access)."""


class CFGError(ReproError):
    """Control-flow reconstruction failure (e.g. unresolvable branch target)."""


class AnalysisError(ReproError):
    """Failure inside an abstract-interpretation based analysis."""


class UnboundedLoopError(AnalysisError):
    """A loop bound was required but could not be derived or annotated."""

    def __init__(self, message: str, loop_header: int | None = None):
        self.loop_header = loop_header
        super().__init__(message)


class TimingAnalysisError(ReproError):
    """Failure during cache/pipeline (micro-architectural) analysis."""


class PathAnalysisError(ReproError):
    """Failure during IPET / ILP path analysis."""


class InfeasibleILPError(PathAnalysisError):
    """The ILP system built for path analysis has no feasible solution."""


class UnboundedILPError(PathAnalysisError):
    """The ILP system built for path analysis is unbounded.

    This typically means a loop in the program has no loop bound constraint;
    the raiser should point at the offending control-flow cycle.
    """


class ParseError(ReproError):
    """Syntax error in mini-C source code or an annotation file."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class TypeCheckError(ReproError):
    """Semantic / type error in mini-C source code."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class CodegenError(ReproError):
    """Mini-C to IR code generation failure."""


class AnnotationError(ReproError):
    """Invalid or contradictory design-level annotation."""


class GuidelineError(ReproError):
    """Failure inside the coding-guideline checker."""
