"""MISRA-C:2004 predictability rule checker (Section 4.2 of the paper).

The paper examines nine rules of the 2004 MISRA-C standard and discusses, for
each, whether adhering to it helps binary-level static WCET analysis.  This
package automates that examination for mini-C sources:

* each rule is a small module under :mod:`repro.guidelines.rules` producing
  :class:`~repro.guidelines.finding.Finding` objects with the paper's
  assessment attached (which WCET-analysis challenge the violation causes, and
  whether it is a tier-one or tier-two problem — or none, as for rule 14.5);
* :class:`~repro.guidelines.checker.GuidelineChecker` runs all (or selected)
  rules over a compilation unit;
* :mod:`repro.guidelines.predictability` combines the source-level findings
  with the result of actually running the WCET analyzer on the compiled
  program, quantifying the connection the paper only argues qualitatively.
"""

from repro.guidelines.finding import Finding, Severity, ChallengeTier
from repro.guidelines.checker import GuidelineChecker, GuidelineReport, all_rules
from repro.guidelines.predictability import PredictabilityAssessment, assess_predictability

__all__ = [
    "Finding",
    "Severity",
    "ChallengeTier",
    "GuidelineChecker",
    "GuidelineReport",
    "all_rules",
    "PredictabilityAssessment",
    "assess_predictability",
]
