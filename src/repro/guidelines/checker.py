"""The guideline checker: runs the MISRA predictability rules over a unit."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import GuidelineError
from repro.minic import ast
from repro.minic.typecheck import check_types
from repro.guidelines.finding import ChallengeTier, Finding
from repro.guidelines.rules import Rule
from repro.guidelines.rules.rule_13_04 import Rule13_4
from repro.guidelines.rules.rule_13_06 import Rule13_6
from repro.guidelines.rules.rule_14_01 import Rule14_1
from repro.guidelines.rules.rule_14_04 import Rule14_4
from repro.guidelines.rules.rule_14_05 import Rule14_5
from repro.guidelines.rules.rule_16_01 import Rule16_1
from repro.guidelines.rules.rule_16_02 import Rule16_2
from repro.guidelines.rules.rule_20_04 import Rule20_4
from repro.guidelines.rules.rule_20_07 import Rule20_7


def all_rules() -> List[Rule]:
    """The nine rules of Section 4.2, in the paper's order."""
    return [
        Rule13_4(),
        Rule13_6(),
        Rule14_1(),
        Rule14_4(),
        Rule14_5(),
        Rule16_1(),
        Rule16_2(),
        Rule20_4(),
        Rule20_7(),
    ]


@dataclass
class GuidelineReport:
    """All findings of one checker run, with per-rule and per-tier summaries."""

    findings: List[Finding] = field(default_factory=list)
    rules_checked: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def by_rule(self) -> Dict[str, List[Finding]]:
        result: Dict[str, List[Finding]] = {rule: [] for rule in self.rules_checked}
        for finding in self.findings:
            result.setdefault(finding.rule, []).append(finding)
        return result

    def findings_for(self, rule: str) -> List[Finding]:
        return [finding for finding in self.findings if finding.rule == rule]

    def violations_with_wcet_impact(self) -> List[Finding]:
        return [
            finding
            for finding in self.findings
            if finding.challenge is not ChallengeTier.NONE
        ]

    def tier_one_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.challenge is ChallengeTier.TIER_ONE]

    def tier_two_findings(self) -> List[Finding]:
        return [f for f in self.findings if f.challenge is ChallengeTier.TIER_TWO]

    def count(self, rule: Optional[str] = None) -> int:
        if rule is None:
            return len(self.findings)
        return len(self.findings_for(rule))

    @property
    def is_clean(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        from repro.api import serialize

        return serialize.to_json(self)

    @classmethod
    def from_json(cls, data: dict) -> "GuidelineReport":
        from repro.api import serialize

        return serialize.from_json(data, cls)

    def summary(self) -> Dict[str, int]:
        return {rule: len(found) for rule, found in sorted(self.by_rule().items())}

    def format_text(self) -> str:
        lines = ["MISRA-C:2004 predictability check"]
        lines.append("=" * len(lines[0]))
        if not self.findings:
            lines.append("no findings — all checked rules are satisfied")
        for finding in self.findings:
            lines.append(f"  {finding}")
        lines.append("")
        lines.append(
            f"total: {len(self.findings)} findings "
            f"({len(self.tier_one_findings())} tier-one, "
            f"{len(self.tier_two_findings())} tier-two, "
            f"{len(self.findings) - len(self.violations_with_wcet_impact())} style-only)"
        )
        return "\n".join(lines)


class GuidelineChecker:
    """Runs a configurable set of rules over a (type-checked) compilation unit."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None):
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()
        if not self.rules:
            raise GuidelineError("the guideline checker needs at least one rule")

    def check_unit(self, unit: ast.CompilationUnit) -> GuidelineReport:
        """Check an already-parsed unit (it is type-checked in place if needed)."""
        needs_types = any(
            isinstance(node, ast.Expr) and node.ctype is None
            for function in unit.defined_functions()
            for node in ast.walk(function.body)
        )
        if needs_types:
            check_types(unit)
        report = GuidelineReport(rules_checked=[rule.info.rule_id for rule in self.rules])
        for rule in self.rules:
            report.findings.extend(rule.check(unit))
        report.findings.sort(key=lambda f: (f.rule, f.function, f.line))
        return report

    def check_source(self, source: str) -> GuidelineReport:
        """Parse, type-check and check mini-C source text."""
        from repro.minic.cparser import parse_source

        unit = parse_source(source)
        check_types(unit)
        return self.check_unit(unit)
