"""Findings produced by the guideline checker."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class Severity(enum.Enum):
    """MISRA-C rule categories."""

    REQUIRED = "required"
    ADVISORY = "advisory"


class ChallengeTier(enum.Enum):
    """Which class of WCET-analysis challenge a violation causes.

    The paper distinguishes *tier-one* challenges (without solving them no
    WCET bound can be computed at all) from *tier-two* challenges (the bound
    exists but is needlessly loose).  Some rules — notably 14.5 (continue) —
    have *no* impact on binary-level timing analysis; the paper makes a point
    of saying so, and the checker preserves that assessment.
    """

    TIER_ONE = "tier-1"
    TIER_TWO = "tier-2"
    NONE = "none"


@dataclass
class Finding:
    """One rule violation (or informational note) at a source location."""

    rule: str                    # e.g. "13.4"
    title: str
    severity: Severity
    function: str
    line: int
    message: str
    #: The WCET-analysis challenge this violation causes (the paper's column).
    challenge: ChallengeTier = ChallengeTier.NONE
    #: Free-text explanation of the timing-analysis impact.
    wcet_impact: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        location = f"{self.function}:{self.line}" if self.function else f"line {self.line}"
        return (
            f"[MISRA {self.rule}] {location}: {self.message} "
            f"({self.challenge.value} impact)"
        )

    def to_json(self) -> dict:
        from repro.api import serialize

        return serialize.to_json(self)

    @classmethod
    def from_json(cls, data: dict) -> "Finding":
        from repro.api import serialize

        return serialize.from_json(data, cls)
