"""Predictability assessment: connect source-level findings to analysis outcomes.

The paper's Section 4.2 is a table of *claims*: violating rule X causes WCET
analysis challenge Y.  This module turns the claims into measurements by

1. running the guideline checker over the source,
2. compiling the source and running the actual WCET analyzer, and
3. correlating: which violations coincided with tier-one failures (no bound
   without annotations) and which with tier-two precision losses.

The result also contains a coarse *predictability score* in [0, 1]: 1.0 means
the WCET analysis succeeded without annotations and without precision
warnings; tier-one problems weigh more than tier-two problems.  The score is a
reporting convenience, not a claim from the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError, UnboundedLoopError, CFGError
from repro.minic import ast
from repro.minic.codegen import compile_unit
from repro.minic.cparser import parse_source
from repro.annotations.registry import AnnotationSet
from repro.hardware.processor import ProcessorConfig, simple_scalar
from repro.wcet.analyzer import AnalysisOptions, WCETAnalyzer
from repro.wcet.report import WCETReport
from repro.guidelines.checker import GuidelineChecker, GuidelineReport
from repro.guidelines.finding import ChallengeTier


@dataclass
class PredictabilityAssessment:
    """Joint source-level / analysis-level predictability report."""

    guideline_report: GuidelineReport
    #: Report of the WCET analysis, if it succeeded.
    wcet_report: Optional[WCETReport] = None
    #: Reason the WCET analysis failed without further annotations (if it did).
    analysis_failure: str = ""
    #: True when a bound was obtained without any annotation.
    analyzable_without_annotations: bool = False
    predictability_score: float = 0.0

    def format_text(self) -> str:
        lines = [self.guideline_report.format_text(), ""]
        if self.wcet_report is not None:
            lines.append(
                f"WCET analysis: bound = {self.wcet_report.wcet_cycles} cycles "
                f"({'no annotations needed' if self.analyzable_without_annotations else 'annotations supplied'})"
            )
        else:
            lines.append(f"WCET analysis failed: {self.analysis_failure}")
        lines.append(f"predictability score: {self.predictability_score:.2f}")
        return "\n".join(lines)


def _score(
    guidelines: GuidelineReport,
    analysis_succeeded: bool,
    tier_two_warnings: int,
) -> float:
    score = 1.0
    if not analysis_succeeded:
        score -= 0.5
    score -= 0.10 * len(guidelines.tier_one_findings())
    score -= 0.05 * len(guidelines.tier_two_findings())
    score -= 0.02 * tier_two_warnings
    return max(0.0, min(1.0, score))


def assess_predictability(
    source: str,
    processor: Optional[ProcessorConfig] = None,
    annotations: Optional[AnnotationSet] = None,
    entry: str = "main",
) -> PredictabilityAssessment:
    """Check guidelines *and* run the WCET analyzer on mini-C source text.

    ``annotations`` (if given) are only used for the analysis run; the
    ``analyzable_without_annotations`` flag reports whether a bound would have
    been obtained with an empty annotation set, which is the paper's measure of
    how much the code structure alone supports static timing analysis.
    """
    processor = processor or simple_scalar()
    unit = parse_source(source)
    guideline_report = GuidelineChecker().check_unit(unit)
    program = compile_unit(unit, entry=entry)

    # First try without any annotations: does the structure alone suffice?
    bare_failure = ""
    try:
        bare_report = WCETAnalyzer(program, processor).analyze(entry=entry)
        analyzable_bare = True
    except (UnboundedLoopError, CFGError, ReproError) as exc:
        bare_report = None
        analyzable_bare = False
        bare_failure = str(exc)

    wcet_report = bare_report
    failure = bare_failure
    if wcet_report is None and annotations is not None:
        try:
            wcet_report = WCETAnalyzer(program, processor, annotations=annotations).analyze(
                entry=entry
            )
            failure = ""
        except (UnboundedLoopError, CFGError, ReproError) as exc:
            failure = str(exc)

    tier_two_warnings = len(wcet_report.challenges.tier_two) if wcet_report else 0
    assessment = PredictabilityAssessment(
        guideline_report=guideline_report,
        wcet_report=wcet_report,
        analysis_failure=failure,
        analyzable_without_annotations=analyzable_bare,
        predictability_score=_score(guideline_report, analyzable_bare, tier_two_warnings),
    )
    return assessment
