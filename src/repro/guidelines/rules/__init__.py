"""Rule implementations for the nine MISRA-C:2004 rules discussed in the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

from repro.minic import ast
from repro.guidelines.finding import ChallengeTier, Finding, Severity


@dataclass
class RuleInfo:
    """Static description of one MISRA rule."""

    rule_id: str
    title: str
    severity: Severity
    #: Paper's assessment of the timing-analysis impact of violating the rule.
    challenge: ChallengeTier
    wcet_impact: str


class Rule:
    """Base class: subclasses define ``info`` and implement ``check``."""

    info: RuleInfo

    def check(self, unit: ast.CompilationUnit) -> List[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def finding(self, function: str, line: int, message: str) -> Finding:
        return Finding(
            rule=self.info.rule_id,
            title=self.info.title,
            severity=self.info.severity,
            function=function,
            line=line,
            message=message,
            challenge=self.info.challenge,
            wcet_impact=self.info.wcet_impact,
        )


# --------------------------------------------------------------------------- #
# Shared AST helpers
# --------------------------------------------------------------------------- #
def functions_of(unit: ast.CompilationUnit) -> List[ast.FunctionDef]:
    return unit.defined_functions()


def modified_variable_names(node: object) -> Set[str]:
    """Names of variables assigned / incremented anywhere under ``node``."""
    result: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.AssignExpr) and isinstance(child.target, ast.Identifier):
            result.add(child.target.name)
        if (
            isinstance(child, ast.UnaryExpr)
            and child.op in ("++", "--")
            and isinstance(child.operand, ast.Identifier)
        ):
            result.add(child.operand.name)
    return result


def identifiers_in(node: object) -> List[ast.Identifier]:
    return [child for child in ast.walk(node) if isinstance(child, ast.Identifier)]


def calls_in(node: object) -> List[ast.CallExpr]:
    return [child for child in ast.walk(node) if isinstance(child, ast.CallExpr)]


def called_name(call: ast.CallExpr) -> Optional[str]:
    if isinstance(call.callee, ast.Identifier):
        return call.callee.name
    return None


def expression_uses_float(expr: Optional[ast.Expr]) -> bool:
    """True if the expression or any subexpression has floating-point type."""
    if expr is None:
        return False
    for child in ast.walk(expr):
        if isinstance(child, ast.Expr) and ast.type_is_float(child.ctype):
            return True
        if isinstance(child, ast.FloatLiteral):
            return True
    return False


def statements_of_block(block: ast.CompoundStmt) -> List[ast.Stmt]:
    return [item for item in block.statements if isinstance(item, ast.Stmt)]
