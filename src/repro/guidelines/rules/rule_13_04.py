"""MISRA-C:2004 rule 13.4 — no floating-point objects in ``for`` controlling expressions.

Paper assessment: abstract-interpretation based loop analyzers work well with
integer arithmetic but cannot bound loops whose exit condition involves
floating-point values; forbidding them keeps loop bounds automatically
detectable (tier-one impact: an unbounded loop means no WCET bound at all).
"""

from __future__ import annotations

from typing import List

from repro.minic import ast
from repro.guidelines.finding import ChallengeTier, Finding, Severity
from repro.guidelines.rules import Rule, RuleInfo, expression_uses_float, functions_of


class Rule13_4(Rule):
    info = RuleInfo(
        rule_id="13.4",
        title="The controlling expression of a for statement shall not contain "
        "any objects of floating type",
        severity=Severity.REQUIRED,
        challenge=ChallengeTier.TIER_ONE,
        wcet_impact=(
            "Loop-bound analysis is interval/integer based; a float-controlled "
            "loop cannot be bounded automatically, so no WCET bound can be "
            "computed without a manual annotation."
        ),
    )

    def check(self, unit: ast.CompilationUnit) -> List[Finding]:
        findings: List[Finding] = []
        for function in functions_of(unit):
            for node in ast.walk(function.body):
                if isinstance(node, ast.ForStmt):
                    controlling = [node.condition, node.step]
                    if isinstance(node.init, ast.ExprStmt):
                        controlling.append(node.init.expr)
                    if isinstance(node.init, ast.VarDecl):
                        controlling.append(node.init.init)
                        if ast.type_is_float(node.init.var_type):
                            findings.append(
                                self.finding(
                                    function.name,
                                    node.line,
                                    "for-loop iteration variable has floating type",
                                )
                            )
                            continue
                    if any(expression_uses_float(expr) for expr in controlling):
                        findings.append(
                            self.finding(
                                function.name,
                                node.line,
                                "for-loop controlling expression contains "
                                "floating-point objects",
                            )
                        )
        return findings
