"""MISRA-C:2004 rule 13.6 — loop counters shall not be modified in the loop body.

Paper assessment: the rule promotes simple counter loops whose bounds a
data-flow based loop analysis can detect; modifying the counter in the body
creates "complex update logic" that defeats automatic loop-bound detection
(tier-one impact).
"""

from __future__ import annotations

from typing import List, Set

from repro.minic import ast
from repro.guidelines.finding import ChallengeTier, Finding, Severity
from repro.guidelines.rules import (
    Rule,
    RuleInfo,
    functions_of,
    modified_variable_names,
)


class Rule13_6(Rule):
    info = RuleInfo(
        rule_id="13.6",
        title="Numeric variables used within a for loop for iteration counting "
        "shall not be modified in the body of the loop",
        severity=Severity.REQUIRED,
        challenge=ChallengeTier.TIER_ONE,
        wcet_impact=(
            "Counter updates inside the body break the simple counter pattern "
            "the loop-bound analysis recognises; the loop then needs a manual "
            "bound annotation."
        ),
    )

    def check(self, unit: ast.CompilationUnit) -> List[Finding]:
        findings: List[Finding] = []
        for function in functions_of(unit):
            for node in ast.walk(function.body):
                if not isinstance(node, ast.ForStmt):
                    continue
                counters = self._iteration_variables(node)
                if not counters:
                    continue
                body_modified = modified_variable_names(node.body) if node.body else set()
                offenders = counters & body_modified
                for name in sorted(offenders):
                    findings.append(
                        self.finding(
                            function.name,
                            node.line,
                            f"loop counter {name!r} is modified in the loop body",
                        )
                    )
        return findings

    @staticmethod
    def _iteration_variables(loop: ast.ForStmt) -> Set[str]:
        """Variables updated by the for-statement's step expression."""
        counters: Set[str] = set()
        if loop.step is not None:
            counters |= modified_variable_names(loop.step)
        if isinstance(loop.init, ast.VarDecl):
            counters.add(loop.init.name)
        elif isinstance(loop.init, ast.ExprStmt) and loop.init.expr is not None:
            counters |= modified_variable_names(loop.init.expr)
        # Only variables that appear in the step count as iteration counters;
        # init-only variables are not "used for iteration counting".
        if loop.step is not None:
            step_modified = modified_variable_names(loop.step)
            if step_modified:
                return step_modified
        return counters
