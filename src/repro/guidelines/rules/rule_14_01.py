"""MISRA-C:2004 rule 14.1 — there shall be no unreachable code.

Paper assessment: static timing analysis over-approximates the control flow;
unreachable code left in the binary becomes extra paths the analysis may
include in the worst case, i.e. a source of over-estimation (tier-two impact).
"""

from __future__ import annotations

from typing import List, Optional

from repro.minic import ast
from repro.guidelines.finding import ChallengeTier, Finding, Severity
from repro.guidelines.rules import Rule, RuleInfo, functions_of


def _is_terminating(statement: ast.Stmt) -> bool:
    """True if control never continues past this statement."""
    if isinstance(statement, (ast.ReturnStmt, ast.BreakStmt, ast.ContinueStmt, ast.GotoStmt)):
        return True
    if isinstance(statement, ast.CompoundStmt):
        items = [s for s in statement.statements if isinstance(s, ast.Stmt)]
        return bool(items) and _is_terminating(items[-1])
    if isinstance(statement, ast.IfStmt):
        return (
            statement.else_branch is not None
            and _is_terminating(statement.then_branch)
            and _is_terminating(statement.else_branch)
        )
    return False


class Rule14_1(Rule):
    info = RuleInfo(
        rule_id="14.1",
        title="There shall be no unreachable code",
        severity=Severity.REQUIRED,
        challenge=ChallengeTier.TIER_TWO,
        wcet_impact=(
            "The path analysis over-approximates the feasible control flow; "
            "dead code adds execution paths that inflate the WCET bound."
        ),
    )

    def check(self, unit: ast.CompilationUnit) -> List[Finding]:
        findings: List[Finding] = []
        for function in functions_of(unit):
            self._check_block(function.body, function.name, findings)
            for node in ast.walk(function.body):
                if isinstance(node, ast.CompoundStmt) and node is not function.body:
                    self._check_block(node, function.name, findings)
                # Statically-false conditions guard unreachable branches.
                if isinstance(node, ast.IfStmt) and self._is_constant_zero(node.condition):
                    findings.append(
                        self.finding(
                            function.name,
                            node.line,
                            "if-condition is constantly zero; the then-branch is unreachable",
                        )
                    )
                if isinstance(node, ast.WhileStmt) and self._is_constant_zero(node.condition):
                    findings.append(
                        self.finding(
                            function.name,
                            node.line,
                            "while-condition is constantly zero; the loop body is unreachable",
                        )
                    )
        return findings

    def _check_block(
        self, block: Optional[ast.CompoundStmt], function: str, findings: List[Finding]
    ) -> None:
        if block is None:
            return
        statements = [s for s in block.statements if isinstance(s, ast.Stmt)]
        for position, statement in enumerate(statements[:-1]):
            if _is_terminating(statement):
                follower = statements[position + 1]
                # A labelled statement can be reached by goto, so it does not
                # count as unreachable.
                if isinstance(follower, ast.LabelStmt):
                    continue
                findings.append(
                    self.finding(
                        function,
                        getattr(follower, "line", 0),
                        "code after a return/break/continue/goto can never execute",
                    )
                )
                break

    @staticmethod
    def _is_constant_zero(expr: Optional[ast.Expr]) -> bool:
        return isinstance(expr, ast.IntLiteral) and expr.value == 0
