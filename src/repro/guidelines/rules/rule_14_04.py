"""MISRA-C:2004 rule 14.4 — the ``goto`` statement shall not be used.

Paper assessment: gotos compile to plain unconditional branches, which are no
problem by themselves; the danger is that gotos can create *irreducible*
loops (multiple-entry cycles).  Those cannot be bounded automatically
(tier-one) and also disable precision-enhancing techniques such as virtual
loop unrolling (tier-two).  The checker distinguishes plain gotos from gotos
that jump *into* a loop body from outside — the irreducibility-creating kind.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.minic import ast
from repro.guidelines.finding import ChallengeTier, Finding, Severity
from repro.guidelines.rules import Rule, RuleInfo, functions_of


class Rule14_4(Rule):
    info = RuleInfo(
        rule_id="14.4",
        title="The goto statement shall not be used",
        severity=Severity.REQUIRED,
        challenge=ChallengeTier.TIER_ONE,
        wcet_impact=(
            "goto can construct loops with multiple entry points (irreducible "
            "loops); there is no automatic way to bound them and virtual loop "
            "unrolling no longer applies."
        ),
    )

    def check(self, unit: ast.CompilationUnit) -> List[Finding]:
        findings: List[Finding] = []
        for function in functions_of(unit):
            label_loops = self._label_loop_map(function)
            goto_loops = self._goto_loop_map(function)
            for node in ast.walk(function.body):
                if not isinstance(node, ast.GotoStmt):
                    continue
                target_loops = label_loops.get(node.label, set())
                source_loops = goto_loops.get(id(node), set())
                jumps_into_loop = bool(target_loops - source_loops)
                if jumps_into_loop:
                    message = (
                        f"goto {node.label!r} jumps into a loop body from outside: "
                        "this creates an irreducible loop that cannot be bounded "
                        "automatically"
                    )
                else:
                    message = (
                        f"goto {node.label!r} used; if it forms a multiple-entry "
                        "loop the loop cannot be bounded automatically"
                    )
                findings.append(self.finding(function.name, node.line, message))
        return findings

    # ------------------------------------------------------------------ #
    @staticmethod
    def _collect(
        statement: Optional[ast.Stmt],
        enclosing: Tuple[int, ...],
        label_loops: Dict[str, Set[int]],
        goto_loops: Dict[int, Set[int]],
    ) -> None:
        if statement is None:
            return
        if isinstance(statement, ast.LabelStmt):
            label_loops[statement.label] = set(enclosing)
            Rule14_4._collect(statement.statement, enclosing, label_loops, goto_loops)
            return
        if isinstance(statement, ast.GotoStmt):
            goto_loops[id(statement)] = set(enclosing)
            return
        if isinstance(statement, (ast.WhileStmt, ast.DoWhileStmt, ast.ForStmt)):
            inner = enclosing + (id(statement),)
            body = statement.body
            Rule14_4._collect(body, inner, label_loops, goto_loops)
            return
        if isinstance(statement, ast.CompoundStmt):
            for item in statement.statements:
                if isinstance(item, ast.Stmt):
                    Rule14_4._collect(item, enclosing, label_loops, goto_loops)
            return
        if isinstance(statement, ast.IfStmt):
            Rule14_4._collect(statement.then_branch, enclosing, label_loops, goto_loops)
            Rule14_4._collect(statement.else_branch, enclosing, label_loops, goto_loops)
            return

    def _label_loop_map(self, function: ast.FunctionDef) -> Dict[str, Set[int]]:
        label_loops: Dict[str, Set[int]] = {}
        goto_loops: Dict[int, Set[int]] = {}
        self._collect(function.body, (), label_loops, goto_loops)
        return label_loops

    def _goto_loop_map(self, function: ast.FunctionDef) -> Dict[int, Set[int]]:
        label_loops: Dict[str, Set[int]] = {}
        goto_loops: Dict[int, Set[int]] = {}
        self._collect(function.body, (), label_loops, goto_loops)
        return goto_loops
