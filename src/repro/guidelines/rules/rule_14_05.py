"""MISRA-C:2004 rule 14.5 — the ``continue`` statement shall not be used.

Paper assessment: this is the rule the paper pushes back on.  ``continue``
only adds an extra back edge to the loop header and can never create an
irreducible loop; any loop with ``continue`` has an equivalent if-then-else
form.  The rule therefore enforces coding style only — violating it has *no*
impact on binary-level static WCET analysis.  The checker still reports the
occurrences (the rule is "required" in MISRA), but tags them with
``ChallengeTier.NONE`` so the predictability assessment does not count them.
"""

from __future__ import annotations

from typing import List

from repro.minic import ast
from repro.guidelines.finding import ChallengeTier, Finding, Severity
from repro.guidelines.rules import Rule, RuleInfo, functions_of


class Rule14_5(Rule):
    info = RuleInfo(
        rule_id="14.5",
        title="The continue statement shall not be used",
        severity=Severity.REQUIRED,
        challenge=ChallengeTier.NONE,
        wcet_impact=(
            "None: continue only adds a back edge to the existing loop header "
            "and cannot produce an irreducible loop; the rule enforces coding "
            "style, not analyzability."
        ),
    )

    def check(self, unit: ast.CompilationUnit) -> List[Finding]:
        findings: List[Finding] = []
        for function in functions_of(unit):
            for node in ast.walk(function.body):
                if isinstance(node, ast.ContinueStmt):
                    findings.append(
                        self.finding(
                            function.name,
                            node.line,
                            "continue used (style only; no WCET-analysis impact)",
                        )
                    )
        return findings
