"""MISRA-C:2004 rule 16.1 — functions shall not be defined with a variable
number of arguments.

Paper assessment: variadic functions inherently iterate over their argument
list with data-dependent loops, which cannot be bounded automatically
(tier-one impact).
"""

from __future__ import annotations

from typing import List

from repro.minic import ast
from repro.guidelines.finding import ChallengeTier, Finding, Severity
from repro.guidelines.rules import Rule, RuleInfo


class Rule16_1(Rule):
    info = RuleInfo(
        rule_id="16.1",
        title="Functions shall not be defined with a variable number of arguments",
        severity=Severity.REQUIRED,
        challenge=ChallengeTier.TIER_ONE,
        wcet_impact=(
            "Processing a variable argument list requires a loop whose trip "
            "count depends on the call site's argument count — a data-dependent "
            "loop the analysis cannot bound without annotations."
        ),
    )

    def check(self, unit: ast.CompilationUnit) -> List[Finding]:
        findings: List[Finding] = []
        for function in unit.functions:
            if function.variadic:
                findings.append(
                    self.finding(
                        function.name,
                        function.line,
                        f"function {function.name!r} is declared with a variable "
                        "argument list ('...')",
                    )
                )
        return findings
