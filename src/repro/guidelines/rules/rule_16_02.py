"""MISRA-C:2004 rule 16.2 — functions shall not call themselves, directly or
indirectly.

Paper assessment: recursion cycles in the call graph play the same role as
irreducible loops in the CFG — without a manually supplied recursion depth no
WCET bound can be computed (tier-one impact).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.minic import ast
from repro.guidelines.finding import ChallengeTier, Finding, Severity
from repro.guidelines.rules import Rule, RuleInfo, called_name, calls_in, functions_of


class Rule16_2(Rule):
    info = RuleInfo(
        rule_id="16.2",
        title="Functions shall not call themselves, either directly or indirectly",
        severity=Severity.REQUIRED,
        challenge=ChallengeTier.TIER_ONE,
        wcet_impact=(
            "A recursion cycle in the call graph is the interprocedural "
            "analogue of an irreducible loop: the recursion depth (and hence a "
            "WCET bound) can only be established by manual annotation."
        ),
    )

    def check(self, unit: ast.CompilationUnit) -> List[Finding]:
        graph: Dict[str, Set[str]] = {}
        lines: Dict[str, int] = {}
        for function in functions_of(unit):
            lines[function.name] = function.line
            callees: Set[str] = set()
            for call in calls_in(function.body):
                name = called_name(call)
                if name is not None and unit.function(name) is not None:
                    callees.add(name)
            graph[function.name] = callees

        findings: List[Finding] = []
        for name in sorted(graph):
            cycle = self._find_cycle(graph, name)
            if cycle:
                description = " -> ".join(cycle + [cycle[0]])
                findings.append(
                    self.finding(
                        name,
                        lines.get(name, 0),
                        f"function {name!r} is part of the recursion cycle {description}",
                    )
                )
        return findings

    @staticmethod
    def _find_cycle(graph: Dict[str, Set[str]], start: str) -> Optional[List[str]]:
        """Return a call cycle through ``start``, if one exists."""
        stack = [(start, [start])]
        visited: Set[str] = set()
        while stack:
            node, path = stack.pop()
            for callee in sorted(graph.get(node, ())):
                if callee == start:
                    return path
                if callee not in visited:
                    visited.add(callee)
                    stack.append((callee, path + [callee]))
        return None
