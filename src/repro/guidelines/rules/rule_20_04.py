"""MISRA-C:2004 rule 20.4 — dynamic heap memory allocation shall not be used.

Paper assessment: heap addresses are statically unknown, so every access
through a heap pointer is an *imprecise memory access*: the value analysis
loses information, the data-cache analysis cannot classify the access and the
timing analysis must charge the slowest memory module (tier-two impact —
potentially severe over-estimation).
"""

from __future__ import annotations

from typing import List

from repro.minic import ast
from repro.guidelines.finding import ChallengeTier, Finding, Severity
from repro.guidelines.rules import Rule, RuleInfo, called_name, calls_in, functions_of

_ALLOCATION_FUNCTIONS = {"malloc", "calloc", "realloc", "free", "alloca"}


class Rule20_4(Rule):
    info = RuleInfo(
        rule_id="20.4",
        title="Dynamic heap memory allocation shall not be used",
        severity=Severity.REQUIRED,
        challenge=ChallengeTier.TIER_TWO,
        wcet_impact=(
            "Heap objects have statically unknown addresses; accesses through "
            "them defeat the value and cache analyses and are charged with the "
            "slowest memory module, inflating the WCET bound."
        ),
    )

    def check(self, unit: ast.CompilationUnit) -> List[Finding]:
        findings: List[Finding] = []
        for function in functions_of(unit):
            for call in calls_in(function.body):
                name = called_name(call)
                if name in _ALLOCATION_FUNCTIONS:
                    findings.append(
                        self.finding(
                            function.name,
                            call.line,
                            f"dynamic memory management call {name}() used",
                        )
                    )
        return findings
