"""MISRA-C:2004 rule 20.7 — the ``setjmp`` macro and the ``longjmp`` function
shall not be used.

Paper assessment: like ``goto`` (rule 14.4) and recursion (rule 16.2),
``setjmp``/``longjmp`` allow the construction of irreducible control flow that
cannot be bounded automatically (tier-one impact).
"""

from __future__ import annotations

from typing import List

from repro.minic import ast
from repro.guidelines.finding import ChallengeTier, Finding, Severity
from repro.guidelines.rules import Rule, RuleInfo, called_name, calls_in, functions_of

_NON_LOCAL_JUMP_FUNCTIONS = {"setjmp", "longjmp", "sigsetjmp", "siglongjmp"}


class Rule20_7(Rule):
    info = RuleInfo(
        rule_id="20.7",
        title="The setjmp macro and the longjmp function shall not be used",
        severity=Severity.REQUIRED,
        challenge=ChallengeTier.TIER_ONE,
        wcet_impact=(
            "Non-local jumps create control flow the CFG reconstruction cannot "
            "represent as reducible loops; the affected cycles cannot be bounded "
            "automatically."
        ),
    )

    def check(self, unit: ast.CompilationUnit) -> List[Finding]:
        findings: List[Finding] = []
        for function in functions_of(unit):
            for call in calls_in(function.body):
                name = called_name(call)
                if name in _NON_LOCAL_JUMP_FUNCTIONS:
                    findings.append(
                        self.finding(
                            function.name,
                            call.line,
                            f"non-local jump primitive {name}() used",
                        )
                    )
        return findings
