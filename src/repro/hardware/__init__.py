"""Execution-platform timing model (the cache/pipeline phase of Figure 1).

The paper's arguments about software structure only become measurable numbers
once instruction timing depends on machine state — caches, memory modules with
different latencies, pipeline effects.  This package provides:

* :mod:`repro.hardware.memory` — a memory map of modules with individual
  read/write latencies (fast SRAM, slower flash, uncached device regions);
* :mod:`repro.hardware.cache` — concrete LRU caches used to replay execution
  traces from the interpreter (the "measurement" side);
* :mod:`repro.hardware.cache_analysis` — abstract LRU must/may cache analysis
  used by the static WCET analyzer (the "guarantee" side);
* :mod:`repro.hardware.pipeline` — a simple in-order pipeline cost model that
  turns instruction sequences into cycle counts;
* :mod:`repro.hardware.processor` — named processor configurations (LEON2-like,
  MPC5554-like, HCS12X-like) used throughout the benchmarks.
"""

from repro.hardware.memory import MemoryMap, MemoryModule
from repro.hardware.cache import CacheConfig, LRUCacheSimulator, CacheStatistics
from repro.hardware.cache_analysis import (
    CacheClassification,
    InstructionCacheAnalysis,
    DataCacheAnalysis,
    MustMayCacheState,
)
from repro.hardware.pipeline import PipelineModel, BlockTimeBounds, TraceTimer
from repro.hardware.processor import (
    ProcessorConfig,
    simple_scalar,
    leon2_like,
    mpc5554_like,
    hcs12x_like,
)

__all__ = [
    "MemoryMap",
    "MemoryModule",
    "CacheConfig",
    "LRUCacheSimulator",
    "CacheStatistics",
    "CacheClassification",
    "InstructionCacheAnalysis",
    "DataCacheAnalysis",
    "MustMayCacheState",
    "PipelineModel",
    "BlockTimeBounds",
    "TraceTimer",
    "ProcessorConfig",
    "simple_scalar",
    "leon2_like",
    "mpc5554_like",
    "hcs12x_like",
]
