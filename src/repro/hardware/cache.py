"""Concrete set-associative LRU cache simulator.

Used to replay execution traces produced by the IR interpreter and obtain
*observed* hit/miss behaviour and execution times, the measurement-based
counterpart against which the static cache analysis
(:mod:`repro.hardware.cache_analysis`) is validated: a must-hit classification
must never correspond to an observed miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TimingAnalysisError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a set-associative cache."""

    name: str
    num_sets: int
    associativity: int
    line_size: int

    def __post_init__(self) -> None:
        for attribute in ("num_sets", "associativity", "line_size"):
            value = getattr(self, attribute)
            if value <= 0 or value & (value - 1):
                raise TimingAnalysisError(
                    f"{self.name}: {attribute} must be a positive power of two, got {value}"
                )

    @property
    def capacity(self) -> int:
        """Total capacity in bytes."""
        return self.num_sets * self.associativity * self.line_size

    def line_of(self, address: int) -> int:
        """Aligned line address (tag + index bits) of a byte address."""
        return address // self.line_size

    def set_index(self, address: int) -> int:
        return (address // self.line_size) % self.num_sets

    def lines_touched(self, address: int, size: int) -> List[int]:
        """Line addresses touched by an access of ``size`` bytes."""
        first = self.line_of(address)
        last = self.line_of(address + max(size, 1) - 1)
        return list(range(first, last + 1))


@dataclass
class CacheStatistics:
    """Hit/miss counters of a concrete cache simulation."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStatistics") -> "CacheStatistics":
        return CacheStatistics(self.hits + other.hits, self.misses + other.misses)


class LRUCacheSimulator:
    """A concrete LRU cache: deterministic replacement, no write allocate choice
    (write-allocate, write-back is assumed, matching the abstract model)."""

    def __init__(self, config: CacheConfig):
        self.config = config
        # Each set is an ordered list of line addresses, most recent first.
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self.stats = CacheStatistics()

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]
        self.stats = CacheStatistics()

    def contains(self, address: int) -> bool:
        line = self.config.line_of(address)
        index = self.config.set_index(address)
        return line in self._sets[index]

    def access(self, address: int, size: int = 4) -> bool:
        """Perform an access; returns True on (full) hit.

        Accesses spanning several lines count as a hit only if every line hits;
        every touched line is updated in LRU order.
        """
        all_hit = True
        for line in self.config.lines_touched(address, size):
            if not self._access_line(line):
                all_hit = False
        if all_hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        return all_hit

    def _access_line(self, line: int) -> bool:
        index = line % self.config.num_sets
        cache_set = self._sets[index]
        if line in cache_set:
            cache_set.remove(line)
            cache_set.insert(0, line)
            return True
        cache_set.insert(0, line)
        if len(cache_set) > self.config.associativity:
            cache_set.pop()
        return False

    # ------------------------------------------------------------------ #
    def contents(self) -> Dict[int, List[int]]:
        """Current contents per set (most recently used first)."""
        return {index: list(lines) for index, lines in enumerate(self._sets)}

    def age_of(self, address: int) -> Optional[int]:
        """LRU age (0 = most recent) of the line containing ``address``."""
        line = self.config.line_of(address)
        index = self.config.set_index(address)
        cache_set = self._sets[index]
        if line in cache_set:
            return cache_set.index(line)
        return None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.config.name}: {self.config.capacity} bytes, "
            f"{self.config.num_sets} sets x {self.config.associativity} ways, "
            f"{self.stats.hits} hits / {self.stats.misses} misses"
        )
