"""Abstract LRU cache analysis (must / may) in the style of Ferdinand et al.

The *must* cache maps memory lines to an upper bound on their LRU age: a line
present in the must cache is guaranteed to be cached in every execution, so an
access to it is classified *always hit* (AH).  The *may* cache maps lines to a
lower bound on their age: a line absent from it can never be cached, so the
access is *always miss* (AM).  Everything else is *not classified* (NC) and is
charged as a miss by the WCET analysis.

Two properties of this analysis carry the paper's arguments:

* an access with an *imprecise* address cannot be classified and, worse,
  damages the must cache for every later access — large address intervals age
  all lines and completely unknown addresses empty the must cache ("invalidates
  large parts of the abstract cache (or even the whole cache)", Section 4.3);
* a call clobbers the must cache (the callee's code/data evicts unknown lines),
  so code structure (calls inside loops, unavailable library bodies) directly
  influences how many accesses stay classifiable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.domains.interval import Interval
from repro.analysis.value import AccessInfo
from repro.analysis.fixpoint import ForwardSolver
from repro.analysis.wto import compute_wto
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.loops import LoopForest, find_loops
from repro.hardware.cache import CacheConfig
from repro.hardware.memory import MemoryMap


class CacheClassification(enum.Enum):
    """Static classification of one memory access."""

    ALWAYS_HIT = "AH"
    ALWAYS_MISS = "AM"
    NOT_CLASSIFIED = "NC"


#: Number of distinct lines above which an imprecise access is treated as
#: "unknown address" and empties the must cache entirely.
IMPRECISE_ACCESS_LINE_LIMIT = 8


class MustMayCacheState:
    """Joint must/may abstract cache state."""

    def __init__(
        self,
        config: CacheConfig,
        must: Optional[Dict[int, int]] = None,
        may: Optional[Dict[int, int]] = None,
    ):
        self.config = config
        #: line -> upper bound on age (0 .. associativity-1)
        self.must: Dict[int, int] = dict(must or {})
        #: line -> lower bound on age
        self.may: Dict[int, int] = dict(may or {})

    # ------------------------------------------------------------------ #
    def copy(self) -> "MustMayCacheState":
        return MustMayCacheState(self.config, self.must, self.may)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MustMayCacheState):
            return NotImplemented
        return self.must == other.must and self.may == other.may

    # ------------------------------------------------------------------ #
    # Classification
    # ------------------------------------------------------------------ #
    def classify(self, line: int) -> CacheClassification:
        if line in self.must:
            return CacheClassification.ALWAYS_HIT
        if line not in self.may:
            return CacheClassification.ALWAYS_MISS
        return CacheClassification.NOT_CLASSIFIED

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def access_line(self, line: int) -> None:
        """Access a precisely known line (both must and may update)."""
        assoc = self.config.associativity
        set_index = line % self.config.num_sets

        old_must_age = self.must.get(line, assoc)
        for other, age in list(self.must.items()):
            if other == line or other % self.config.num_sets != set_index:
                continue
            if age < old_must_age:
                new_age = age + 1
                if new_age >= assoc:
                    del self.must[other]
                else:
                    self.must[other] = new_age
        self.must[line] = 0

        old_may_age = self.may.get(line, assoc)
        for other, age in list(self.may.items()):
            if other == line or other % self.config.num_sets != set_index:
                continue
            if age <= old_may_age:
                new_age = age + 1
                if new_age >= assoc:
                    del self.may[other]
                else:
                    self.may[other] = new_age
        self.may[line] = 0

    def access_imprecise(self, lines: Optional[Iterable[int]]) -> None:
        """Access whose address is only known as a set of possible lines.

        ``lines=None`` (or too many possibilities) models a completely unknown
        pointer: the must cache is emptied, and the may cache is left as-is
        (everything could additionally be cached, which only weakens AM
        classifications conservatively by keeping existing entries).
        """
        if lines is not None:
            lines = list(lines)
        if lines is None or len(lines) > IMPRECISE_ACCESS_LINE_LIMIT:
            self.must.clear()
            return
        assoc = self.config.associativity
        touched_sets = {line % self.config.num_sets for line in lines}
        # The access hits exactly one of the candidate lines; every line in a
        # touched set may age by one.
        for other, age in list(self.must.items()):
            if other % self.config.num_sets in touched_sets:
                new_age = age + 1
                if new_age >= assoc:
                    del self.must[other]
                else:
                    self.must[other] = new_age
        # Each candidate may now be cached with age 0.
        for line in lines:
            self.may[line] = 0

    def clobber(self) -> None:
        """Forget all guarantees (used at call sites)."""
        self.must.clear()

    # ------------------------------------------------------------------ #
    # Lattice
    # ------------------------------------------------------------------ #
    def join(self, other: "MustMayCacheState") -> "MustMayCacheState":
        must: Dict[int, int] = {}
        for line, age in self.must.items():
            if line in other.must:
                must[line] = max(age, other.must[line])
        may: Dict[int, int] = dict(self.may)
        for line, age in other.may.items():
            may[line] = min(age, may.get(line, age))
        return MustMayCacheState(self.config, must, may)

    def includes(self, other: "MustMayCacheState") -> bool:
        """True if ``self`` is less precise than (or equal to) ``other``."""
        joined = self.join(other)
        return joined == self


@dataclass
class CacheAnalysisResult:
    """Per-access classifications for one function."""

    function_name: str
    config: CacheConfig
    classifications: Dict[int, CacheClassification] = field(default_factory=dict)
    #: abstract cache state at the entry of each block (for inspection/tests)
    block_in: Dict[int, MustMayCacheState] = field(default_factory=dict)

    def classification_for(self, instruction_address: int) -> CacheClassification:
        return self.classifications.get(
            instruction_address, CacheClassification.NOT_CLASSIFIED
        )

    def count(self, kind: CacheClassification) -> int:
        return sum(1 for value in self.classifications.values() if value is kind)

    def summary(self) -> Dict[str, int]:
        return {
            "AH": self.count(CacheClassification.ALWAYS_HIT),
            "AM": self.count(CacheClassification.ALWAYS_MISS),
            "NC": self.count(CacheClassification.NOT_CLASSIFIED),
        }


class _AbstractCacheAnalysis:
    """Shared fixpoint machinery for instruction and data cache analysis."""

    def __init__(self, cfg: ControlFlowGraph, config: CacheConfig, loops: Optional[LoopForest]):
        self.cfg = cfg
        self.config = config
        self.loops = loops if loops is not None else find_loops(cfg)
        self._recording: Optional[Dict[int, CacheClassification]] = None

    def _transfer(self, block_id: int, state: MustMayCacheState) -> Dict[int, MustMayCacheState]:
        out = state.copy()
        self._process_block(block_id, out)
        successors = self.cfg.successors(block_id)
        return {successor: out.copy() for successor in successors}

    def _process_block(self, block_id: int, state: MustMayCacheState) -> None:
        raise NotImplementedError

    def run(self) -> CacheAnalysisResult:
        solver = ForwardSolver(
            cfg=self.cfg,
            transfer=self._transfer,
            join=lambda a, b: a.join(b),
            widen=lambda a, b: a.join(b),
            includes=lambda old, new: old.includes(new),
            bottom=lambda: MustMayCacheState(self.config),
            widening_points=self.loops.headers(),
            wto=compute_wto(self.cfg, self.loops),
        )
        fixpoint = solver.solve(MustMayCacheState(self.config))
        result = CacheAnalysisResult(self.cfg.function_name, self.config)
        result.block_in = fixpoint.block_in
        self._recording = result.classifications
        for block_id, state in fixpoint.block_in.items():
            self._process_block(block_id, state.copy())
        self._recording = None
        return result

    def _record(self, address: int, classification: CacheClassification) -> None:
        if self._recording is not None:
            self._recording[address] = classification


class InstructionCacheAnalysis(_AbstractCacheAnalysis):
    """Classify every instruction fetch of a function as AH / AM / NC."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        config: CacheConfig,
        loops: Optional[LoopForest] = None,
        calls_clobber: bool = True,
    ):
        super().__init__(cfg, config, loops)
        self.calls_clobber = calls_clobber

    def _process_block(self, block_id: int, state: MustMayCacheState) -> None:
        block = self.cfg.block(block_id)
        for instr in block.instructions:
            line = self.config.line_of(instr.address)
            self._record(instr.address, state.classify(line))
            state.access_line(line)
            if instr.is_call and self.calls_clobber:
                # The callee's fetches evict an unknown set of lines.
                state.clobber()


class DataCacheAnalysis(_AbstractCacheAnalysis):
    """Classify every data access of a function as AH / AM / NC.

    ``accesses`` maps instruction addresses to the
    :class:`~repro.analysis.value.AccessInfo` computed by the value analysis;
    accesses to uncached memory regions (device I/O) are skipped — they always
    pay the module latency and never touch the cache.
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        config: CacheConfig,
        accesses: Dict[int, AccessInfo],
        memory_map: MemoryMap,
        loops: Optional[LoopForest] = None,
        calls_clobber: bool = True,
    ):
        super().__init__(cfg, config, loops)
        self.accesses = accesses
        self.memory_map = memory_map
        self.calls_clobber = calls_clobber

    def _candidate_lines(self, info: AccessInfo) -> Optional[List[int]]:
        """Possible cache lines of an access (None = completely unknown)."""
        if info.unknown or info.absolute.is_top:
            return None
        interval = info.absolute
        if not interval.is_finite:
            return None
        first = self.config.line_of(interval.lo)
        last = self.config.line_of(interval.hi + info.size - 1)
        if last - first + 1 > 4 * IMPRECISE_ACCESS_LINE_LIMIT:
            return None
        return list(range(first, last + 1))

    def _process_block(self, block_id: int, state: MustMayCacheState) -> None:
        block = self.cfg.block(block_id)
        for instr in block.instructions:
            if instr.is_call and self.calls_clobber:
                state.clobber()
                continue
            if not instr.is_memory_access:
                continue
            info = self.accesses.get(instr.address)
            if info is None:
                self._record(instr.address, CacheClassification.NOT_CLASSIFIED)
                state.clobber()
                continue
            _, _, may_be_cached = self.memory_map.latency_bounds(
                info.absolute, info.is_load
            )
            if not may_be_cached:
                # Uncached region: the access bypasses the cache entirely.
                continue
            lines = self._candidate_lines(info)
            if lines is not None and len(lines) == 1:
                self._record(instr.address, state.classify(lines[0]))
                state.access_line(lines[0])
            else:
                self._record(instr.address, CacheClassification.NOT_CLASSIFIED)
                state.access_imprecise(lines)
