"""Memory map: modules with individual access latencies.

The paper's "imprecise memory accesses" discussion hinges on the fact that an
access whose address is unknown must be charged with the latency of the
*slowest* memory module it might hit, and that memory-mapped device regions
(CAN/FlexRay controllers) are typically much slower than internal RAM.  The
:class:`MemoryMap` encodes exactly that: given the abstract address interval of
an access it returns the set of modules possibly touched and the worst-case /
best-case latency over them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import TimingAnalysisError
from repro.analysis.domains.interval import Interval
from repro.ir import program as ir_program


@dataclass(frozen=True)
class MemoryModule:
    """One address range with fixed access latencies (in cycles)."""

    name: str
    base: int
    size: int
    read_latency: int
    write_latency: int
    #: Whether accesses to this module go through the data cache.
    cached: bool = True

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, interval: Interval) -> bool:
        if interval.is_bottom:
            return False
        module_range = Interval(self.base, self.end - 1)
        return not module_range.meet(interval).is_bottom

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: [{self.base:#010x}, {self.end:#010x}) "
            f"read={self.read_latency} write={self.write_latency} "
            f"{'cached' if self.cached else 'uncached'}"
        )


class MemoryMap:
    """An ordered collection of non-overlapping memory modules."""

    def __init__(self, modules: Sequence[MemoryModule]):
        self.modules: List[MemoryModule] = sorted(modules, key=lambda m: m.base)
        for first, second in zip(self.modules, self.modules[1:]):
            if first.end > second.base:
                raise TimingAnalysisError(
                    f"memory modules {first.name!r} and {second.name!r} overlap"
                )
        if not self.modules:
            raise TimingAnalysisError("memory map must contain at least one module")

    # ------------------------------------------------------------------ #
    def module_for(self, address: int) -> Optional[MemoryModule]:
        for module in self.modules:
            if module.contains(address):
                return module
        return None

    def module_named(self, name: str) -> MemoryModule:
        for module in self.modules:
            if module.name == name:
                return module
        raise TimingAnalysisError(f"no memory module named {name!r}")

    def modules_for_interval(self, interval: Interval) -> List[MemoryModule]:
        """All modules an access with the given address interval may touch.

        A top (unknown) interval matches every module — the worst case the
        paper describes for unknown pointers.
        """
        if interval.is_bottom:
            return []
        if interval.is_top:
            return list(self.modules)
        return [module for module in self.modules if module.overlaps(interval)]

    # ------------------------------------------------------------------ #
    def latency_bounds(
        self, interval: Interval, is_load: bool
    ) -> Tuple[int, int, bool]:
        """Return ``(best, worst, may_be_cached)`` latency for an access.

        ``worst`` is the maximum latency over all modules possibly touched
        (what the WCET analysis charges); ``best`` the minimum (for BCET);
        ``may_be_cached`` is False only if *no* possibly-touched module is
        cached, in which case the cache analysis ignores the access.
        """
        modules = self.modules_for_interval(interval)
        if not modules:
            # An infeasible access contributes nothing.
            return 0, 0, False
        if is_load:
            latencies = [module.read_latency for module in modules]
        else:
            latencies = [module.write_latency for module in modules]
        may_be_cached = any(module.cached for module in modules)
        return min(latencies), max(latencies), may_be_cached

    def worst_case_latency(self, interval: Interval, is_load: bool) -> int:
        return self.latency_bounds(interval, is_load)[1]

    def slowest_module(self) -> MemoryModule:
        return max(self.modules, key=lambda m: max(m.read_latency, m.write_latency))

    def __iter__(self):
        return iter(self.modules)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "\n".join(str(module) for module in self.modules)


# --------------------------------------------------------------------------- #
# Standard maps
# --------------------------------------------------------------------------- #
def default_memory_map(
    ram_read: int = 2,
    ram_write: int = 2,
    flash_read: int = 6,
    device_read: int = 20,
    device_write: int = 20,
) -> MemoryMap:
    """Memory map matching the default program layout of :mod:`repro.ir.program`.

    * code resides in flash (read-only, slower than RAM),
    * static data, stack and heap reside in internal RAM,
    * the device region models memory-mapped I/O controllers: slow and
      uncached (so every access pays the full latency).
    """
    return MemoryMap(
        [
            MemoryModule(
                name="flash",
                base=ir_program.CODE_BASE,
                size=0x0010_0000,
                read_latency=flash_read,
                write_latency=flash_read,
                cached=True,
            ),
            MemoryModule(
                name="ram",
                base=ir_program.DATA_BASE,
                size=0x0100_0000,
                read_latency=ram_read,
                write_latency=ram_write,
                cached=True,
            ),
            MemoryModule(
                name="stack",
                base=ir_program.STACK_TOP - ir_program.STACK_SIZE,
                size=ir_program.STACK_SIZE + 0x10,
                read_latency=ram_read,
                write_latency=ram_write,
                cached=True,
            ),
            MemoryModule(
                name="heap",
                base=ir_program.HEAP_BASE,
                size=ir_program.HEAP_SIZE,
                read_latency=ram_read + 2,
                write_latency=ram_write + 2,
                cached=True,
            ),
            MemoryModule(
                name="device",
                base=ir_program.DEVICE_BASE,
                size=ir_program.DEVICE_SIZE,
                read_latency=device_read,
                write_latency=device_write,
                cached=False,
            ),
        ]
    )
