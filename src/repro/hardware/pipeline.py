"""In-order pipeline cost model.

Two users share the same per-instruction cost structure so that the soundness
invariant (static bound ≥ observed time) holds by construction:

* :class:`PipelineModel` computes *static* lower/upper execution-time bounds of
  a basic block, given the cache classifications and abstract access addresses
  of its instructions (this is the "Pipeline Analysis" box of Figure 1 — the
  per-block timing information handed to path analysis);
* :class:`TraceTimer` replays a concrete execution trace of the interpreter
  through concrete caches and produces the *observed* cycle count.

The cost of an instruction is::

    fetch cost  (instruction cache hit/miss or plain code-memory latency)
  + base cost   (per opcode class, from the processor configuration)
  + memory cost (data cache hit/miss and memory-module latency, for load/store)
  + branch penalty (if the instruction transfers control)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.value import AccessInfo
from repro.cfg.graph import BasicBlock
from repro.hardware.cache import CacheConfig, CacheStatistics, LRUCacheSimulator
from repro.hardware.cache_analysis import CacheClassification
from repro.hardware.processor import ProcessorConfig
from repro.ir.instructions import INSTRUCTION_SIZE, Instruction, OpClass
from repro.ir.interpreter import ExecutionTrace
from repro.ir.program import Program


@dataclass
class BlockTimeBounds:
    """Static execution-time bounds of one basic block (excluding callees)."""

    block_id: int
    wcet_cycles: int
    bcet_cycles: int
    #: breakdown of the WCET bound (for reports)
    fetch_cycles: int = 0
    compute_cycles: int = 0
    memory_cycles: int = 0
    branch_cycles: int = 0

    def __post_init__(self) -> None:
        if self.bcet_cycles > self.wcet_cycles:
            raise ValueError("block BCET bound exceeds its WCET bound")


class PipelineModel:
    """Static per-block timing model for one processor configuration."""

    def __init__(self, processor: ProcessorConfig):
        self.processor = processor
        # Configuration-derived constants, resolved once instead of per
        # instruction (code_fetch_latency/slowest_module scan the memory map).
        self._code_fetch_latency = processor.code_fetch_latency()
        slowest = processor.memory_map.slowest_module()
        self._slowest_latency = max(slowest.read_latency, slowest.write_latency)
        #: address -> (base cycles, is memory access, branch best, branch worst);
        #: all static per instruction, resolved once per model.
        self._static_parts: Dict[int, tuple] = {}

    # ------------------------------------------------------------------ #
    # Per-instruction costs
    # ------------------------------------------------------------------ #
    def base_cost(self, instruction: Instruction) -> int:
        return self.processor.latency_of(instruction.op_class)

    def fetch_cost_bounds(
        self, instruction: Instruction, icache_class: Optional[CacheClassification]
    ) -> Tuple[int, int]:
        """(best, worst) fetch cost of one instruction."""
        miss_cost = self._code_fetch_latency
        hit_cost = self.processor.icache_hit_cycles
        if self.processor.icache is None:
            return miss_cost, miss_cost
        if icache_class is CacheClassification.ALWAYS_HIT:
            return hit_cost, hit_cost
        if icache_class is CacheClassification.ALWAYS_MISS:
            return hit_cost, miss_cost  # best case stays optimistic (sound BCET)
        return hit_cost, miss_cost

    def memory_cost_bounds(
        self,
        instruction: Instruction,
        access: Optional[AccessInfo],
        dcache_class: Optional[CacheClassification],
    ) -> Tuple[int, int]:
        """(best, worst) data-memory cost of one instruction (0 if not memory)."""
        if not instruction.is_memory_access:
            return 0, 0
        if access is None:
            # Nothing known: assume the slowest module in the worst case.
            return self.processor.dcache_hit_cycles, self._slowest_latency
        best_lat, worst_lat, may_be_cached = self.processor.memory_map.latency_bounds(
            access.absolute, access.is_load
        )
        if self.processor.dcache is None or not may_be_cached:
            return best_lat, worst_lat
        hit = self.processor.dcache_hit_cycles
        if dcache_class is CacheClassification.ALWAYS_HIT:
            return hit, hit
        return min(hit, best_lat), worst_lat

    def branch_cost_bounds(self, instruction: Instruction) -> Tuple[int, int]:
        if instruction.op_class in (OpClass.BRANCH, OpClass.CALL, OpClass.RETURN):
            penalty = self.processor.branch_penalty
            # Conditional branches may fall through (no penalty) in the best case.
            best = 0 if instruction.is_conditional_branch else penalty
            return best, penalty
        return 0, 0

    # ------------------------------------------------------------------ #
    def block_time_bounds(
        self,
        block: BasicBlock,
        icache_classes: Optional[Dict[int, CacheClassification]] = None,
        dcache_classes: Optional[Dict[int, CacheClassification]] = None,
        accesses: Optional[Dict[int, AccessInfo]] = None,
    ) -> BlockTimeBounds:
        """Compute static (BCET, WCET) cycle bounds for a basic block.

        Callee execution times are *not* included: the WCET analyzer adds the
        callee bound at each call site during path analysis.
        """
        icache_classes = icache_classes or {}
        dcache_classes = dcache_classes or {}
        accesses = accesses or {}

        static_parts = self._static_parts

        wcet = bcet = 0
        fetch_total = compute_total = memory_total = branch_total = 0
        for instr in block.instructions:
            address = instr.address
            parts = static_parts.get(address)
            if parts is None:
                parts = (
                    self.base_cost(instr),
                    instr.is_memory_access,
                    *self.branch_cost_bounds(instr),
                )
                static_parts[address] = parts
            base, is_memory, branch_best, branch_worst = parts
            fetch_best, fetch_worst = self.fetch_cost_bounds(
                instr, icache_classes.get(address)
            )
            if is_memory:
                mem_best, mem_worst = self.memory_cost_bounds(
                    instr, accesses.get(address), dcache_classes.get(address)
                )
            else:
                mem_best = mem_worst = 0
            wcet += fetch_worst + base + mem_worst + branch_worst
            bcet += fetch_best + base + mem_best + branch_best
            fetch_total += fetch_worst
            compute_total += base
            memory_total += mem_worst
            branch_total += branch_worst
        return BlockTimeBounds(
            block_id=block.id,
            wcet_cycles=wcet,
            bcet_cycles=bcet,
            fetch_cycles=fetch_total,
            compute_cycles=compute_total,
            memory_cycles=memory_total,
            branch_cycles=branch_total,
        )


@dataclass
class TraceTimingResult:
    """Observed execution time of one concrete run."""

    cycles: int
    instructions: int
    icache_stats: Optional[CacheStatistics] = None
    dcache_stats: Optional[CacheStatistics] = None


class TraceTimer:
    """Replay an interpreter trace through concrete caches and count cycles.

    The per-instruction *static* cost ingredients (base cost, memory-access
    and control-transfer classification) depend only on the program and the
    processor, so they are precomputed once per timer into an address-indexed
    table; per-address memory-module lookups are memoised the same way.
    Construct one timer per (processor, program) pair and call :meth:`time`
    for every trace — the concrete cache simulators are fresh per call.
    """

    def __init__(self, processor: ProcessorConfig, program: Program):
        self.processor = processor
        self.program = program
        program.ensure_layout()
        #: address -> (base cycles, is memory access, pays transfer penalty,
        #: is conditional branch)
        self._static_costs: Optional[Dict[int, tuple]] = None
        #: data address -> (read latency, write latency, goes through dcache)
        self._module_info: Dict[int, tuple] = {}

    def _build_static_costs(self) -> Dict[int, tuple]:
        table: Dict[int, tuple] = {}
        latency_of = self.processor.latency_of
        transfer_classes = (OpClass.BRANCH, OpClass.CALL, OpClass.RETURN)
        for function in self.program:
            for instr in function.instructions:
                op_class = instr.op_class
                table[instr.address] = (
                    latency_of(op_class),
                    instr.is_memory_access,
                    op_class in transfer_classes,
                    instr.is_conditional_branch,
                )
        self._static_costs = table
        return table

    def _module_info_for(self, address: int) -> tuple:
        info = self._module_info.get(address)
        if info is None:
            module = self.processor.memory_map.module_for(address)
            if module is not None:
                info = (module.read_latency, module.write_latency, module.cached)
            else:
                slowest = self.processor.memory_map.slowest_module()
                worst = max(slowest.read_latency, slowest.write_latency)
                info = (worst, worst, False)
            self._module_info[address] = info
        return info

    def time(self, trace: ExecutionTrace) -> TraceTimingResult:
        processor = self.processor
        icache = LRUCacheSimulator(processor.icache) if processor.icache else None
        dcache = LRUCacheSimulator(processor.dcache) if processor.dcache else None
        code_latency = processor.code_fetch_latency()
        icache_hit_cycles = processor.icache_hit_cycles
        dcache_hit_cycles = processor.dcache_hit_cycles
        branch_penalty = processor.branch_penalty

        costs = self._static_costs
        if costs is None:
            costs = self._build_static_costs()
        module_info = self._module_info_for

        cycles = 0
        access_index = 0
        accesses = trace.memory_accesses
        num_accesses = len(accesses)
        addresses = trace.instruction_addresses
        num_addresses = len(addresses)

        for position, address in enumerate(addresses):
            base, is_memory, pays_transfer, is_conditional = costs[address]

            # --- fetch ------------------------------------------------- #
            if icache is not None:
                hit = icache.access(address, INSTRUCTION_SIZE)
                cycles += icache_hit_cycles if hit else code_latency
            else:
                cycles += code_latency

            # --- execute ------------------------------------------------ #
            cycles += base

            # --- data memory -------------------------------------------- #
            if is_memory:
                if (
                    access_index < num_accesses
                    and accesses[access_index].instruction_address == address
                ):
                    access = accesses[access_index]
                    access_index += 1
                    read_latency, write_latency, cached = module_info(access.address)
                    latency = read_latency if access.is_load else write_latency
                    if dcache is not None and cached:
                        hit = dcache.access(access.address, access.size)
                        cycles += dcache_hit_cycles if hit else latency
                    else:
                        cycles += latency
                # else: predicated access that did not take effect — only the
                # fetch and base cost are charged.

            # --- control transfer penalty -------------------------------- #
            # Unconditional transfers (br/call/ret/ibr) always redirect the
            # fetch stream and pay the penalty, even when the target happens
            # to be the next sequential address — matching the static model,
            # which charges them unconditionally.  Conditional branches pay
            # only when they actually leave the fall-through path.
            if pays_transfer:
                taken = True
                if is_conditional and position + 1 < num_addresses:
                    taken = addresses[position + 1] != address + INSTRUCTION_SIZE
                if taken:
                    cycles += branch_penalty

        return TraceTimingResult(
            cycles=cycles,
            instructions=num_addresses,
            icache_stats=icache.stats if icache else None,
            dcache_stats=dcache.stats if dcache else None,
        )
