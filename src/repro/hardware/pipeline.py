"""In-order pipeline cost model.

Two users share the same per-instruction cost structure so that the soundness
invariant (static bound ≥ observed time) holds by construction:

* :class:`PipelineModel` computes *static* lower/upper execution-time bounds of
  a basic block, given the cache classifications and abstract access addresses
  of its instructions (this is the "Pipeline Analysis" box of Figure 1 — the
  per-block timing information handed to path analysis);
* :class:`TraceTimer` replays a concrete execution trace of the interpreter
  through concrete caches and produces the *observed* cycle count.

The cost of an instruction is::

    fetch cost  (instruction cache hit/miss or plain code-memory latency)
  + base cost   (per opcode class, from the processor configuration)
  + memory cost (data cache hit/miss and memory-module latency, for load/store)
  + branch penalty (if the instruction transfers control)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.domains.interval import Interval
from repro.analysis.value import AccessInfo
from repro.cfg.graph import BasicBlock
from repro.hardware.cache import CacheConfig, CacheStatistics, LRUCacheSimulator
from repro.hardware.cache_analysis import CacheClassification
from repro.hardware.processor import ProcessorConfig
from repro.ir.instructions import INSTRUCTION_SIZE, Instruction, OpClass
from repro.ir.interpreter import ExecutionTrace
from repro.ir.program import Program


@dataclass
class BlockTimeBounds:
    """Static execution-time bounds of one basic block (excluding callees)."""

    block_id: int
    wcet_cycles: int
    bcet_cycles: int
    #: breakdown of the WCET bound (for reports)
    fetch_cycles: int = 0
    compute_cycles: int = 0
    memory_cycles: int = 0
    branch_cycles: int = 0

    def __post_init__(self) -> None:
        if self.bcet_cycles > self.wcet_cycles:
            raise ValueError("block BCET bound exceeds its WCET bound")


class PipelineModel:
    """Static per-block timing model for one processor configuration."""

    def __init__(self, processor: ProcessorConfig):
        self.processor = processor

    # ------------------------------------------------------------------ #
    # Per-instruction costs
    # ------------------------------------------------------------------ #
    def base_cost(self, instruction: Instruction) -> int:
        return self.processor.latency_of(instruction.op_class)

    def fetch_cost_bounds(
        self, instruction: Instruction, icache_class: Optional[CacheClassification]
    ) -> Tuple[int, int]:
        """(best, worst) fetch cost of one instruction."""
        miss_cost = self.processor.code_fetch_latency()
        hit_cost = self.processor.icache_hit_cycles
        if self.processor.icache is None:
            return miss_cost, miss_cost
        if icache_class is CacheClassification.ALWAYS_HIT:
            return hit_cost, hit_cost
        if icache_class is CacheClassification.ALWAYS_MISS:
            return hit_cost, miss_cost  # best case stays optimistic (sound BCET)
        return hit_cost, miss_cost

    def memory_cost_bounds(
        self,
        instruction: Instruction,
        access: Optional[AccessInfo],
        dcache_class: Optional[CacheClassification],
    ) -> Tuple[int, int]:
        """(best, worst) data-memory cost of one instruction (0 if not memory)."""
        if not instruction.is_memory_access:
            return 0, 0
        if access is None:
            # Nothing known: assume the slowest module in the worst case.
            slowest = self.processor.memory_map.slowest_module()
            worst = max(slowest.read_latency, slowest.write_latency)
            return self.processor.dcache_hit_cycles, worst
        best_lat, worst_lat, may_be_cached = self.processor.memory_map.latency_bounds(
            access.absolute, access.is_load
        )
        if self.processor.dcache is None or not may_be_cached:
            return best_lat, worst_lat
        hit = self.processor.dcache_hit_cycles
        if dcache_class is CacheClassification.ALWAYS_HIT:
            return hit, hit
        return min(hit, best_lat), worst_lat

    def branch_cost_bounds(self, instruction: Instruction) -> Tuple[int, int]:
        if instruction.op_class in (OpClass.BRANCH, OpClass.CALL, OpClass.RETURN):
            penalty = self.processor.branch_penalty
            # Conditional branches may fall through (no penalty) in the best case.
            best = 0 if instruction.is_conditional_branch else penalty
            return best, penalty
        return 0, 0

    # ------------------------------------------------------------------ #
    def block_time_bounds(
        self,
        block: BasicBlock,
        icache_classes: Optional[Dict[int, CacheClassification]] = None,
        dcache_classes: Optional[Dict[int, CacheClassification]] = None,
        accesses: Optional[Dict[int, AccessInfo]] = None,
    ) -> BlockTimeBounds:
        """Compute static (BCET, WCET) cycle bounds for a basic block.

        Callee execution times are *not* included: the WCET analyzer adds the
        callee bound at each call site during path analysis.
        """
        icache_classes = icache_classes or {}
        dcache_classes = dcache_classes or {}
        accesses = accesses or {}

        wcet = bcet = 0
        fetch_total = compute_total = memory_total = branch_total = 0
        for instr in block.instructions:
            fetch_best, fetch_worst = self.fetch_cost_bounds(
                instr, icache_classes.get(instr.address)
            )
            base = self.base_cost(instr)
            mem_best, mem_worst = self.memory_cost_bounds(
                instr, accesses.get(instr.address), dcache_classes.get(instr.address)
            )
            branch_best, branch_worst = self.branch_cost_bounds(instr)
            wcet += fetch_worst + base + mem_worst + branch_worst
            bcet += fetch_best + base + mem_best + branch_best
            fetch_total += fetch_worst
            compute_total += base
            memory_total += mem_worst
            branch_total += branch_worst
        return BlockTimeBounds(
            block_id=block.id,
            wcet_cycles=wcet,
            bcet_cycles=bcet,
            fetch_cycles=fetch_total,
            compute_cycles=compute_total,
            memory_cycles=memory_total,
            branch_cycles=branch_total,
        )


@dataclass
class TraceTimingResult:
    """Observed execution time of one concrete run."""

    cycles: int
    instructions: int
    icache_stats: Optional[CacheStatistics] = None
    dcache_stats: Optional[CacheStatistics] = None


class TraceTimer:
    """Replay an interpreter trace through concrete caches and count cycles."""

    def __init__(self, processor: ProcessorConfig, program: Program):
        self.processor = processor
        self.program = program
        program.ensure_layout()

    def time(self, trace: ExecutionTrace) -> TraceTimingResult:
        processor = self.processor
        model = PipelineModel(processor)
        icache = LRUCacheSimulator(processor.icache) if processor.icache else None
        dcache = LRUCacheSimulator(processor.dcache) if processor.dcache else None
        code_latency = processor.code_fetch_latency()

        cycles = 0
        access_index = 0
        accesses = trace.memory_accesses
        addresses = trace.instruction_addresses

        for position, address in enumerate(addresses):
            instr = self.program.instruction_at(address)

            # --- fetch ------------------------------------------------- #
            if icache is not None:
                hit = icache.access(address, INSTRUCTION_SIZE)
                cycles += processor.icache_hit_cycles if hit else code_latency
            else:
                cycles += code_latency

            # --- execute ------------------------------------------------ #
            cycles += model.base_cost(instr)

            # --- data memory -------------------------------------------- #
            if instr.is_memory_access:
                if (
                    access_index < len(accesses)
                    and accesses[access_index].instruction_address == address
                ):
                    access = accesses[access_index]
                    access_index += 1
                    module = processor.memory_map.module_for(access.address)
                    latency_interval = Interval.const(access.address)
                    best, worst = 0, 0
                    if module is not None:
                        latency = (
                            module.read_latency if access.is_load else module.write_latency
                        )
                    else:
                        slowest = processor.memory_map.slowest_module()
                        latency = max(slowest.read_latency, slowest.write_latency)
                    if dcache is not None and module is not None and module.cached:
                        hit = dcache.access(access.address, access.size)
                        cycles += processor.dcache_hit_cycles if hit else latency
                    else:
                        cycles += latency
                # else: predicated access that did not take effect — only the
                # fetch and base cost are charged.

            # --- control transfer penalty -------------------------------- #
            # Unconditional transfers (br/call/ret/ibr) always redirect the
            # fetch stream and pay the penalty, even when the target happens
            # to be the next sequential address — matching the static model,
            # which charges them unconditionally.  Conditional branches pay
            # only when they actually leave the fall-through path.
            if instr.op_class in (OpClass.BRANCH, OpClass.CALL, OpClass.RETURN):
                taken = True
                if instr.is_conditional_branch and position + 1 < len(addresses):
                    taken = addresses[position + 1] != address + INSTRUCTION_SIZE
                if taken:
                    cycles += processor.branch_penalty

        return TraceTimingResult(
            cycles=cycles,
            instructions=len(addresses),
            icache_stats=icache.stats if icache else None,
            dcache_stats=dcache.stats if dcache else None,
        )
