"""Processor configurations bundling pipeline latencies, caches and memory map.

The presets are *inspired by* (not cycle-accurate models of) the platforms the
paper mentions:

* :func:`leon2_like` — the LEON2 of the COLA project: instruction + data cache,
  moderate memory latencies;
* :func:`mpc5554_like` — the Freescale MPC5554: instruction cache only, slow
  flash, single-precision FPU (double-precision work falls back to software
  arithmetic, which is what the lDivMod/soft-float study exercises);
* :func:`hcs12x_like` — the Freescale HCS12X targeted by the CodeWarrior
  lDivMod routine: no caches, uniform memory;
* :func:`simple_scalar` — an idealised unit-latency machine used by tests and
  by experiments that want to isolate path-analysis effects from
  micro-architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.hardware.cache import CacheConfig
from repro.hardware.memory import MemoryMap, default_memory_map
from repro.ir.instructions import OpClass


@dataclass(frozen=True)
class ProcessorConfig:
    """Everything the timing analysis needs to know about the platform."""

    name: str
    #: Base execution cycles per opcode class (excluding memory/fetch time).
    op_latencies: Dict[OpClass, int]
    #: Extra cycles charged when a control transfer is (or may be) taken.
    branch_penalty: int
    memory_map: MemoryMap
    icache: Optional[CacheConfig] = None
    dcache: Optional[CacheConfig] = None
    #: Cycles for an instruction fetch that hits the instruction cache
    #: (or for every fetch if there is no instruction cache but code memory is
    #: fast; without a cache the code-memory latency is always charged).
    icache_hit_cycles: int = 1
    #: Cycles for a data access that hits the data cache.
    dcache_hit_cycles: int = 1

    def latency_of(self, op_class: OpClass) -> int:
        return self.op_latencies[op_class]

    def with_caches(
        self, icache: Optional[CacheConfig], dcache: Optional[CacheConfig]
    ) -> "ProcessorConfig":
        """A copy of this configuration with different cache geometry."""
        return replace(self, icache=icache, dcache=dcache)

    def without_caches(self) -> "ProcessorConfig":
        return replace(self, icache=None, dcache=None)

    def code_fetch_latency(self) -> int:
        """Worst-case latency of fetching one instruction from code memory."""
        # Code lives in the module that contains the code base address.
        from repro.ir.program import CODE_BASE

        module = self.memory_map.module_for(CODE_BASE)
        if module is None:
            return max(m.read_latency for m in self.memory_map)
        return module.read_latency


_DEFAULT_LATENCIES: Dict[OpClass, int] = {
    OpClass.ALU: 1,
    OpClass.MUL: 2,
    OpClass.DIV: 12,
    OpClass.FPU: 4,
    OpClass.LOAD: 1,   # address generation; memory latency is added separately
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.CALL: 2,
    OpClass.RETURN: 2,
    OpClass.SYSTEM: 1,
}


def simple_scalar(name: str = "simple-scalar") -> ProcessorConfig:
    """Idealised uncached machine with unit memory latency (for clean tests)."""
    return ProcessorConfig(
        name=name,
        op_latencies=dict(_DEFAULT_LATENCIES),
        branch_penalty=1,
        memory_map=default_memory_map(
            ram_read=1, ram_write=1, flash_read=1, device_read=1, device_write=1
        ),
        icache=None,
        dcache=None,
        icache_hit_cycles=1,
        dcache_hit_cycles=1,
    )


def leon2_like() -> ProcessorConfig:
    """LEON2-flavoured configuration: I+D caches, moderate memory latencies."""
    return ProcessorConfig(
        name="leon2-like",
        op_latencies=dict(_DEFAULT_LATENCIES),
        branch_penalty=2,
        memory_map=default_memory_map(
            ram_read=4, ram_write=4, flash_read=8, device_read=24, device_write=24
        ),
        icache=CacheConfig(name="icache", num_sets=64, associativity=2, line_size=16),
        dcache=CacheConfig(name="dcache", num_sets=32, associativity=2, line_size=16),
        icache_hit_cycles=1,
        dcache_hit_cycles=1,
    )


def mpc5554_like() -> ProcessorConfig:
    """MPC5554-flavoured configuration: unified cache modelled as I-cache only,
    slow flash, no data cache."""
    return ProcessorConfig(
        name="mpc5554-like",
        op_latencies={
            **_DEFAULT_LATENCIES,
            OpClass.DIV: 14,
            OpClass.FPU: 5,
        },
        branch_penalty=3,
        memory_map=default_memory_map(
            ram_read=3, ram_write=3, flash_read=10, device_read=32, device_write=32
        ),
        icache=CacheConfig(name="icache", num_sets=128, associativity=4, line_size=32),
        dcache=None,
        icache_hit_cycles=1,
        dcache_hit_cycles=1,
    )


def hcs12x_like() -> ProcessorConfig:
    """HCS12X-flavoured configuration: no caches, uniform slow-ish memory,
    expensive division (the platform of the lDivMod case study)."""
    return ProcessorConfig(
        name="hcs12x-like",
        op_latencies={
            **_DEFAULT_LATENCIES,
            OpClass.MUL: 3,
            OpClass.DIV: 20,
            OpClass.FPU: 30,   # no FPU: float operations trap to software
        },
        branch_penalty=1,
        memory_map=default_memory_map(
            ram_read=2, ram_write=2, flash_read=3, device_read=16, device_write=16
        ),
        icache=None,
        dcache=None,
        icache_hit_cycles=1,
        dcache_hit_cycles=1,
    )
