"""Register-level intermediate representation ("the binary").

The paper analyses binary executables with aiT.  We do not have real target
binaries, so this package provides a small RISC-like register IR that plays the
role of the binary: the mini-C compiler (:mod:`repro.minic`) lowers source code
into it, the CFG reconstruction (:mod:`repro.cfg`) decodes it, the value and
loop-bound analyses (:mod:`repro.analysis`) interpret it abstractly, the
hardware model (:mod:`repro.hardware`) assigns instruction timings, and the
concrete :class:`~repro.ir.interpreter.Interpreter` executes it to provide
measured execution times for comparison against the static WCET bound.

Public API
----------

* :class:`Opcode`, :class:`Instruction`, operand types (:class:`Reg`,
  :class:`Imm`, :class:`Sym`, :class:`Label`)
* :class:`Function`, :class:`DataObject`, :class:`Program`
* :class:`ProgramBuilder`, :class:`FunctionBuilder` — fluent construction
* :func:`parse_assembly` — textual assembly front end
* :class:`Interpreter`, :class:`ExecutionResult` — concrete execution
"""

from repro.ir.instructions import (
    Imm,
    Instruction,
    Label,
    Opcode,
    Operand,
    OpClass,
    Reg,
    Sym,
)
from repro.ir.program import DataObject, Function, Program
from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.asmparser import parse_assembly
from repro.ir.interpreter import ExecutionResult, Interpreter, MachineState

__all__ = [
    "Opcode",
    "OpClass",
    "Operand",
    "Reg",
    "Imm",
    "Sym",
    "Label",
    "Instruction",
    "Function",
    "DataObject",
    "Program",
    "ProgramBuilder",
    "FunctionBuilder",
    "parse_assembly",
    "Interpreter",
    "MachineState",
    "ExecutionResult",
]
