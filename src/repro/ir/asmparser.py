"""Textual assembly front end for the repro IR.

The format is a line-oriented, human-writable assembly used by tests, examples
and the documentation.  A small program looks like::

    .data buffer 64
    .data canreg 16 region=device

    .func main
        mov   r3, 0
    loop:
        add   r3, r3, 1
        slt   r4, r3, 10
        bt    r4, loop
        la    r5, buffer
        load  r6, [r5 + 4]
        store r6, [r5 + 8]
        call  helper
        halt

    .func helper params=1
        ret

Syntax summary
--------------

``.data NAME SIZE [region=data|device|heap] [readonly] [init=v1,v2,...]``
    Declares a data object.

``.func NAME [params=N] [variadic]``
    Starts a new function; subsequent instruction lines belong to it.

``LABEL:``
    Attaches a label to the next instruction (may share its line).

``opcode operands... [?pREG]``
    An instruction; a trailing ``?rN`` marks it predicated on register ``rN``.
    Memory operands are written ``[rBASE + OFFSET]`` or ``[rBASE]``.

``#`` and ``;`` start comments.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import AssemblyError
from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.instructions import Imm, Instruction, Label, Opcode, Reg, Sym
from repro.ir.program import Program

_MEM_RE = re.compile(
    r"^\[\s*(?P<base>[A-Za-z][A-Za-z0-9]*)\s*(?:\+\s*(?P<off>-?\d+))?\s*\]$"
)
_LABEL_RE = re.compile(r"^(?P<label>[A-Za-z_.][\w.]*)\s*:\s*(?P<rest>.*)$")
_INT_RE = re.compile(r"^-?(0x[0-9a-fA-F]+|\d+)$")
_FLOAT_RE = re.compile(r"^-?\d+\.\d*([eE][-+]?\d+)?$")


def _strip_comment(line: str) -> str:
    for marker in ("#", ";"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def _parse_number(token: str, line_no: int):
    if _INT_RE.match(token):
        return int(token, 0)
    if _FLOAT_RE.match(token):
        return float(token)
    raise AssemblyError(f"expected a number, got {token!r}", line_no)


def _is_register(token: str) -> bool:
    token = token.lower()
    if token in ("sp", "fp", "lr"):
        return True
    return bool(re.match(r"^r\d+$", token))


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas, keeping ``[r1 + 4]`` groups intact."""
    parts: List[str] = []
    depth = 0
    current = ""
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    return parts


class _AsmParser:
    def __init__(self, text: str, entry: str):
        self.lines = text.splitlines()
        self.builder = ProgramBuilder(entry=entry)
        self.current: Optional[FunctionBuilder] = None

    def parse(self) -> Program:
        for index, raw in enumerate(self.lines, start=1):
            line = _strip_comment(raw)
            if not line:
                continue
            if line.startswith(".data"):
                self._parse_data(line, index)
            elif line.startswith(".func"):
                self._parse_func(line, index)
            else:
                self._parse_instruction(line, index)
        return self.builder.build()

    # ------------------------------------------------------------------ #
    def _parse_data(self, line: str, line_no: int) -> None:
        tokens = line.split()
        if len(tokens) < 3:
            raise AssemblyError(".data needs a name and a size", line_no)
        name = tokens[1]
        try:
            size = int(tokens[2], 0)
        except ValueError as exc:
            raise AssemblyError(f"bad data size {tokens[2]!r}", line_no) from exc
        region = "data"
        readonly = False
        initial: Tuple[int, ...] = ()
        for extra in tokens[3:]:
            if extra.startswith("region="):
                region = extra.split("=", 1)[1]
            elif extra == "readonly":
                readonly = True
            elif extra.startswith("init="):
                values = extra.split("=", 1)[1]
                try:
                    initial = tuple(int(v, 0) for v in values.split(",") if v)
                except ValueError as exc:
                    raise AssemblyError(f"bad init list {values!r}", line_no) from exc
            else:
                raise AssemblyError(f"unknown .data attribute {extra!r}", line_no)
        self.builder.data(name, size, initial=initial, region=region, readonly=readonly)

    def _parse_func(self, line: str, line_no: int) -> None:
        tokens = line.split()
        if len(tokens) < 2:
            raise AssemblyError(".func needs a name", line_no)
        name = tokens[1]
        num_params = 0
        variadic = False
        for extra in tokens[2:]:
            if extra.startswith("params="):
                try:
                    num_params = int(extra.split("=", 1)[1])
                except ValueError as exc:
                    raise AssemblyError(f"bad params count in {extra!r}", line_no) from exc
            elif extra == "variadic":
                variadic = True
            else:
                raise AssemblyError(f"unknown .func attribute {extra!r}", line_no)
        self.current = self.builder.function(name, num_params=num_params, variadic=variadic)

    # ------------------------------------------------------------------ #
    def _parse_instruction(self, line: str, line_no: int) -> None:
        if self.current is None:
            raise AssemblyError("instruction outside of a .func block", line_no)

        match = _LABEL_RE.match(line)
        while match and not _is_opcode(match.group("label")):
            self.current.label(match.group("label"))
            line = match.group("rest").strip()
            if not line:
                return
            match = _LABEL_RE.match(line)

        pred: Optional[str] = None
        pred_match = re.search(r"\?\s*([A-Za-z]\w*)\s*$", line)
        if pred_match:
            pred = pred_match.group(1)
            line = line[: pred_match.start()].strip()

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        try:
            opcode = Opcode(mnemonic)
        except ValueError as exc:
            raise AssemblyError(f"unknown opcode {mnemonic!r}", line_no) from exc
        operands = _split_operands(operand_text)
        self._emit(opcode, operands, pred, line_no)

    def _emit(
        self, opcode: Opcode, operands: List[str], pred: Optional[str], line_no: int
    ) -> None:
        fb = self.current
        assert fb is not None

        def value(token: str):
            if _is_register(token):
                return Reg(token)
            return Imm(_parse_number(token, line_no))

        def mem(token: str) -> Tuple[str, int]:
            match = _MEM_RE.match(token)
            if not match:
                raise AssemblyError(f"bad memory operand {token!r}", line_no)
            return match.group("base"), int(match.group("off") or 0)

        try:
            if opcode is Opcode.MOV:
                fb.mov(operands[0], value(operands[1]), pred=pred)
            elif opcode is Opcode.LA:
                fb.la(operands[0], operands[1], pred=pred)
            elif opcode in (Opcode.LOAD, Opcode.LOADB):
                base, offset = mem(operands[1])
                method = fb.load if opcode is Opcode.LOAD else fb.loadb
                method(operands[0], base, offset, pred=pred)
            elif opcode in (Opcode.STORE, Opcode.STOREB):
                base, offset = mem(operands[1])
                method = fb.store if opcode is Opcode.STORE else fb.storeb
                method(operands[0], base, offset, pred=pred)
            elif opcode is Opcode.BR:
                fb.br(operands[0])
            elif opcode is Opcode.BT:
                fb.bt(operands[0], operands[1])
            elif opcode is Opcode.BF:
                fb.bf(operands[0], operands[1])
            elif opcode is Opcode.IBR:
                fb.ibr(operands[0])
            elif opcode is Opcode.CALL:
                fb.call(operands[0])
            elif opcode is Opcode.ICALL:
                fb.icall(operands[0])
            elif opcode is Opcode.RET:
                fb.ret()
            elif opcode is Opcode.HALT:
                fb.halt()
            elif opcode is Opcode.NOP:
                fb.nop(pred=pred)
            elif opcode in (Opcode.NOT, Opcode.NEG, Opcode.FNEG, Opcode.ITOF, Opcode.FTOI):
                fb.emit(
                    Instruction(opcode, dest=Reg(operands[0]), operands=(value(operands[1]),))
                )
            else:
                # Generic three-operand form (ALU / compare / FP binary ops).
                if len(operands) != 3:
                    raise AssemblyError(
                        f"{opcode.value} expects 3 operands, got {len(operands)}", line_no
                    )
                fb.emit(
                    Instruction(
                        opcode,
                        dest=Reg(operands[0]),
                        operands=(value(operands[1]), value(operands[2])),
                        pred=Reg(pred) if pred else None,
                    )
                )
        except IndexError as exc:
            raise AssemblyError(
                f"not enough operands for {opcode.value!r}", line_no
            ) from exc


def _is_opcode(token: str) -> bool:
    try:
        Opcode(token.lower())
        return True
    except ValueError:
        return False


def parse_assembly(text: str, entry: str = "main") -> Program:
    """Parse textual assembly into a validated, laid-out :class:`Program`."""
    return _AsmParser(text, entry).parse()
