"""Fluent builders for IR programs.

The builders are the programmatic front end used by the mini-C code generator
(:mod:`repro.minic.codegen`), by the workload catalogue
(:mod:`repro.workloads`) and by tests.  They take care of operand wrapping,
label bookkeeping and structural validation so call sites stay readable::

    pb = ProgramBuilder(entry="main")
    fb = pb.function("main")
    fb.mov("r3", 0)
    fb.label("loop")
    fb.add("r3", "r3", 1)
    fb.slt("r4", "r3", 10)
    fb.bt("r4", "loop")
    fb.halt()
    program = pb.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.errors import IRError
from repro.ir.instructions import (
    Imm,
    Instruction,
    Label,
    Opcode,
    Operand,
    Reg,
    Sym,
)
from repro.ir.program import DataObject, Function, Program

RegLike = Union[str, Reg]
ValueLike = Union[str, Reg, Imm, int, float]


def _reg(value: RegLike) -> Reg:
    if isinstance(value, Reg):
        return value
    return Reg(value)


def _value(value: ValueLike) -> Operand:
    """Wrap a register name or Python number into an operand."""
    if isinstance(value, (Reg, Imm)):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return Imm(value)
    if isinstance(value, bool):
        return Imm(int(value))
    if isinstance(value, str):
        return Reg(value)
    raise IRError(f"cannot use {value!r} as an instruction operand")


class FunctionBuilder:
    """Builds one :class:`~repro.ir.program.Function` instruction by instruction."""

    def __init__(self, name: str, num_params: int = 0, variadic: bool = False):
        self.name = name
        self.num_params = num_params
        self.variadic = variadic
        self._instructions: List[Instruction] = []
        self._pending_label: Optional[str] = None
        self._pending_comment: str = ""
        self._source_line: int = 0
        self._label_counter = 0

    # ------------------------------------------------------------------ #
    # Label / metadata handling
    # ------------------------------------------------------------------ #
    def label(self, name: str) -> "FunctionBuilder":
        """Attach ``name`` as the label of the next emitted instruction."""
        if self._pending_label is not None:
            # Two labels on the same spot: emit a nop to carry the first one.
            self._emit(Instruction(Opcode.NOP))
        self._pending_label = name
        return self

    def fresh_label(self, hint: str = "L") -> str:
        """Return a new label name unique within this function."""
        self._label_counter += 1
        return f".{hint}{self._label_counter}"

    def comment(self, text: str) -> "FunctionBuilder":
        """Attach a comment to the next emitted instruction."""
        self._pending_comment = text
        return self

    def at_line(self, line: int) -> "FunctionBuilder":
        """Record the current source line for subsequently emitted instructions."""
        self._source_line = line
        return self

    def _emit(
        self,
        instruction: Instruction,
        pred: Optional[RegLike] = None,
    ) -> Instruction:
        extra = {}
        if self._pending_label is not None:
            extra["label"] = self._pending_label
            self._pending_label = None
        if self._pending_comment:
            extra["comment"] = self._pending_comment
            self._pending_comment = ""
        if self._source_line:
            extra["source_line"] = self._source_line
        if pred is not None:
            extra["pred"] = _reg(pred)
        if extra:
            instruction = Instruction(
                opcode=instruction.opcode,
                dest=instruction.dest,
                operands=instruction.operands,
                offset=instruction.offset,
                label=extra.get("label", instruction.label),
                comment=extra.get("comment", instruction.comment),
                source_line=extra.get("source_line", instruction.source_line),
                pred=extra.get("pred", instruction.pred),
            )
        self._instructions.append(instruction)
        return instruction

    def emit(self, instruction: Instruction) -> Instruction:
        """Emit a pre-built instruction (label/comment pending state applies)."""
        return self._emit(instruction)

    # ------------------------------------------------------------------ #
    # Data movement
    # ------------------------------------------------------------------ #
    def mov(self, rd: RegLike, src: ValueLike, pred: Optional[RegLike] = None):
        return self._emit(
            Instruction(Opcode.MOV, dest=_reg(rd), operands=(_value(src),)), pred
        )

    def la(self, rd: RegLike, symbol: str, pred: Optional[RegLike] = None):
        return self._emit(
            Instruction(Opcode.LA, dest=_reg(rd), operands=(Sym(symbol),)), pred
        )

    # ------------------------------------------------------------------ #
    # Integer ALU
    # ------------------------------------------------------------------ #
    def _binary(self, opcode: Opcode, rd: RegLike, ra: ValueLike, rb: ValueLike, pred):
        return self._emit(
            Instruction(opcode, dest=_reg(rd), operands=(_value(ra), _value(rb))),
            pred,
        )

    def add(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.ADD, rd, ra, rb, pred)

    def sub(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.SUB, rd, ra, rb, pred)

    def mul(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.MUL, rd, ra, rb, pred)

    def divs(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.DIVS, rd, ra, rb, pred)

    def divu(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.DIVU, rd, ra, rb, pred)

    def rems(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.REMS, rd, ra, rb, pred)

    def remu(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.REMU, rd, ra, rb, pred)

    def and_(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.AND, rd, ra, rb, pred)

    def or_(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.OR, rd, ra, rb, pred)

    def xor(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.XOR, rd, ra, rb, pred)

    def shl(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.SHL, rd, ra, rb, pred)

    def shr(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.SHR, rd, ra, rb, pred)

    def sra(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.SRA, rd, ra, rb, pred)

    def not_(self, rd, ra, pred=None):
        return self._emit(
            Instruction(Opcode.NOT, dest=_reg(rd), operands=(_value(ra),)), pred
        )

    def neg(self, rd, ra, pred=None):
        return self._emit(
            Instruction(Opcode.NEG, dest=_reg(rd), operands=(_value(ra),)), pred
        )

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    def seq(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.SEQ, rd, ra, rb, pred)

    def sne(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.SNE, rd, ra, rb, pred)

    def slt(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.SLT, rd, ra, rb, pred)

    def sle(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.SLE, rd, ra, rb, pred)

    def sgt(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.SGT, rd, ra, rb, pred)

    def sge(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.SGE, rd, ra, rb, pred)

    def sltu(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.SLTU, rd, ra, rb, pred)

    def sgeu(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.SGEU, rd, ra, rb, pred)

    # ------------------------------------------------------------------ #
    # Floating point
    # ------------------------------------------------------------------ #
    def fadd(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.FADD, rd, ra, rb, pred)

    def fsub(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.FSUB, rd, ra, rb, pred)

    def fmul(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.FMUL, rd, ra, rb, pred)

    def fdiv(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.FDIV, rd, ra, rb, pred)

    def fneg(self, rd, ra, pred=None):
        return self._emit(
            Instruction(Opcode.FNEG, dest=_reg(rd), operands=(_value(ra),)), pred
        )

    def itof(self, rd, ra, pred=None):
        return self._emit(
            Instruction(Opcode.ITOF, dest=_reg(rd), operands=(_value(ra),)), pred
        )

    def ftoi(self, rd, ra, pred=None):
        return self._emit(
            Instruction(Opcode.FTOI, dest=_reg(rd), operands=(_value(ra),)), pred
        )

    def fseq(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.FSEQ, rd, ra, rb, pred)

    def fsne(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.FSNE, rd, ra, rb, pred)

    def fslt(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.FSLT, rd, ra, rb, pred)

    def fsle(self, rd, ra, rb, pred=None):
        return self._binary(Opcode.FSLE, rd, ra, rb, pred)

    # ------------------------------------------------------------------ #
    # Memory
    # ------------------------------------------------------------------ #
    def load(self, rd: RegLike, base: RegLike, offset: int = 0, pred=None):
        return self._emit(
            Instruction(
                Opcode.LOAD, dest=_reg(rd), operands=(_reg(base),), offset=offset
            ),
            pred,
        )

    def store(self, rs: RegLike, base: RegLike, offset: int = 0, pred=None):
        return self._emit(
            Instruction(
                Opcode.STORE, operands=(_reg(rs), _reg(base)), offset=offset
            ),
            pred,
        )

    def loadb(self, rd: RegLike, base: RegLike, offset: int = 0, pred=None):
        return self._emit(
            Instruction(
                Opcode.LOADB, dest=_reg(rd), operands=(_reg(base),), offset=offset
            ),
            pred,
        )

    def storeb(self, rs: RegLike, base: RegLike, offset: int = 0, pred=None):
        return self._emit(
            Instruction(
                Opcode.STOREB, operands=(_reg(rs), _reg(base)), offset=offset
            ),
            pred,
        )

    # ------------------------------------------------------------------ #
    # Control flow
    # ------------------------------------------------------------------ #
    def br(self, target: str):
        return self._emit(Instruction(Opcode.BR, operands=(Label(target),)))

    def bt(self, cond: RegLike, target: str):
        return self._emit(
            Instruction(Opcode.BT, operands=(_reg(cond), Label(target)))
        )

    def bf(self, cond: RegLike, target: str):
        return self._emit(
            Instruction(Opcode.BF, operands=(_reg(cond), Label(target)))
        )

    def ibr(self, target_reg: RegLike):
        return self._emit(Instruction(Opcode.IBR, operands=(_reg(target_reg),)))

    def call(self, function_name: str):
        return self._emit(Instruction(Opcode.CALL, operands=(Sym(function_name),)))

    def icall(self, target_reg: RegLike):
        return self._emit(Instruction(Opcode.ICALL, operands=(_reg(target_reg),)))

    def ret(self):
        return self._emit(Instruction(Opcode.RET))

    def halt(self):
        return self._emit(Instruction(Opcode.HALT))

    def nop(self, pred=None):
        return self._emit(Instruction(Opcode.NOP), pred)

    # ------------------------------------------------------------------ #
    def build(self) -> Function:
        """Finalize and return the function (validates structure)."""
        if self._pending_label is not None:
            self._emit(Instruction(Opcode.NOP))
        function = Function(
            name=self.name,
            instructions=list(self._instructions),
            num_params=self.num_params,
            variadic=self.variadic,
        )
        function.validate()
        return function


class ProgramBuilder:
    """Builds a complete :class:`~repro.ir.program.Program`."""

    def __init__(self, entry: str = "main"):
        self.entry = entry
        self._functions: Dict[str, FunctionBuilder] = {}
        self._order: List[str] = []
        self._data: List[DataObject] = []

    def function(
        self, name: str, num_params: int = 0, variadic: bool = False
    ) -> FunctionBuilder:
        """Create (or fetch) the builder for function ``name``."""
        if name in self._functions:
            return self._functions[name]
        builder = FunctionBuilder(name, num_params=num_params, variadic=variadic)
        self._functions[name] = builder
        self._order.append(name)
        return builder

    def data(
        self,
        name: str,
        size: int,
        initial: Sequence[int] = (),
        region: str = "data",
        readonly: bool = False,
    ) -> DataObject:
        obj = DataObject(
            name=name,
            size=size,
            initial=tuple(initial),
            region=region,
            readonly=readonly,
        )
        self._data.append(obj)
        return obj

    def build(self) -> Program:
        """Assemble, validate and lay out the program."""
        program = Program(entry=self.entry)
        for name in self._order:
            program.add_function(self._functions[name].build())
        for obj in self._data:
            program.add_data(obj)
        program.validate()
        return program
