"""Instruction set of the repro IR.

The IR is a three-address, load/store register machine with:

* 32 general-purpose registers ``r0`` .. ``r31`` plus the conventional aliases
  ``sp`` (stack pointer, = r29), ``fp`` (frame pointer, = r30) and ``lr``
  (link register, = r31);
* 32-bit two's-complement integer arithmetic and IEEE-like floating-point
  operations (registers are untyped; the opcode decides the interpretation);
* explicit compare instructions producing 0/1 in a register;
* direct and *indirect* branches and calls (the latter model the function
  pointers discussed in Section 3.2 of the paper);
* optional per-instruction predication (``pred`` register) used by the
  single-path transformation study (Section 2 of the paper): a predicated
  instruction is always fetched and occupies the pipeline, but only commits its
  architectural effect when the predicate register is non-zero.

Every instruction occupies :data:`INSTRUCTION_SIZE` bytes; addresses are
assigned when a :class:`~repro.ir.program.Program` is laid out.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

from repro.errors import IRError

#: Size in bytes of every encoded instruction (fixed-width RISC encoding).
INSTRUCTION_SIZE = 4

#: Number of general purpose registers.
NUM_REGISTERS = 32

#: Conventional register aliases (resolved to ``rN`` names).
REGISTER_ALIASES = {
    "sp": "r29",
    "fp": "r30",
    "lr": "r31",
}

#: Registers used to pass the first arguments of a call (codegen convention).
ARGUMENT_REGISTERS = ("r3", "r4", "r5", "r6", "r7", "r8", "r9", "r10")

#: Register holding a function's return value.
RETURN_VALUE_REGISTER = "r3"

#: Callee-saved registers (preserved across calls by the code generator).
CALLEE_SAVED_REGISTERS = tuple(f"r{i}" for i in range(14, 29))

#: Caller-saved scratch registers.
CALLER_SAVED_REGISTERS = tuple(f"r{i}" for i in range(3, 14))


def canonical_register(name: str) -> str:
    """Return the canonical ``rN`` name for a register or alias.

    Raises :class:`IRError` if the name does not denote a register.
    """
    name = name.lower()
    name = REGISTER_ALIASES.get(name, name)
    if not name.startswith("r"):
        raise IRError(f"not a register name: {name!r}")
    try:
        index = int(name[1:])
    except ValueError as exc:
        raise IRError(f"not a register name: {name!r}") from exc
    if not 0 <= index < NUM_REGISTERS:
        raise IRError(f"register index out of range: {name!r}")
    return f"r{index}"


class OpClass(enum.Enum):
    """Coarse classification of opcodes used by the pipeline timing model."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FPU = "fpu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    RETURN = "return"
    SYSTEM = "system"


class Opcode(enum.Enum):
    """All opcodes of the repro IR."""

    # Data movement
    MOV = "mov"          # mov rd, src
    LA = "la"            # la rd, symbol      (load address of data object)

    # Integer ALU (rd, ra, rb|imm)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIVS = "divs"        # signed division (trapping on zero)
    DIVU = "divu"        # unsigned division
    REMS = "rems"
    REMU = "remu"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"          # logical shift right
    SRA = "sra"          # arithmetic shift right
    NOT = "not"          # rd, ra
    NEG = "neg"          # rd, ra

    # Integer comparisons (rd := ra OP rb ? 1 : 0); signed unless suffixed u
    SEQ = "seq"
    SNE = "sne"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"
    SLTU = "sltu"
    SGEU = "sgeu"

    # Floating point (registers interpreted as floats)
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    ITOF = "itof"        # int -> float
    FTOI = "ftoi"        # float -> int (truncate)
    FSEQ = "fseq"
    FSNE = "fsne"
    FSLT = "fslt"
    FSLE = "fsle"

    # Memory (word = 4 bytes)
    LOAD = "load"        # load rd, [ra + off]
    STORE = "store"      # store rs, [ra + off]
    LOADB = "loadb"      # byte load (zero-extended)
    STOREB = "storeb"    # byte store

    # Control flow
    BR = "br"            # br label
    BT = "bt"            # bt rc, label   (branch if rc != 0)
    BF = "bf"            # bf rc, label   (branch if rc == 0)
    IBR = "ibr"          # ibr ra         (indirect branch, computed goto)
    CALL = "call"        # call fname
    ICALL = "icall"      # icall ra       (indirect call through register)
    RET = "ret"

    # System
    HALT = "halt"
    NOP = "nop"


#: Opcodes whose result interpretation is floating point.
FLOAT_OPCODES = frozenset(
    {
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.FNEG,
        Opcode.ITOF,
        Opcode.FSEQ,
        Opcode.FSNE,
        Opcode.FSLT,
        Opcode.FSLE,
    }
)

#: Comparison opcodes (integer and float) — always produce 0 or 1.
COMPARE_OPCODES = frozenset(
    {
        Opcode.SEQ,
        Opcode.SNE,
        Opcode.SLT,
        Opcode.SLE,
        Opcode.SGT,
        Opcode.SGE,
        Opcode.SLTU,
        Opcode.SGEU,
        Opcode.FSEQ,
        Opcode.FSNE,
        Opcode.FSLT,
        Opcode.FSLE,
    }
)

#: Control transfer opcodes that terminate a basic block.
TERMINATOR_OPCODES = frozenset(
    {
        Opcode.BR,
        Opcode.BT,
        Opcode.BF,
        Opcode.IBR,
        Opcode.RET,
        Opcode.HALT,
    }
)

#: Conditional branches.
CONDITIONAL_BRANCHES = frozenset({Opcode.BT, Opcode.BF})


_OPCLASS_TABLE = {
    Opcode.MOV: OpClass.ALU,
    Opcode.LA: OpClass.ALU,
    Opcode.ADD: OpClass.ALU,
    Opcode.SUB: OpClass.ALU,
    Opcode.MUL: OpClass.MUL,
    Opcode.DIVS: OpClass.DIV,
    Opcode.DIVU: OpClass.DIV,
    Opcode.REMS: OpClass.DIV,
    Opcode.REMU: OpClass.DIV,
    Opcode.AND: OpClass.ALU,
    Opcode.OR: OpClass.ALU,
    Opcode.XOR: OpClass.ALU,
    Opcode.SHL: OpClass.ALU,
    Opcode.SHR: OpClass.ALU,
    Opcode.SRA: OpClass.ALU,
    Opcode.NOT: OpClass.ALU,
    Opcode.NEG: OpClass.ALU,
    Opcode.SEQ: OpClass.ALU,
    Opcode.SNE: OpClass.ALU,
    Opcode.SLT: OpClass.ALU,
    Opcode.SLE: OpClass.ALU,
    Opcode.SGT: OpClass.ALU,
    Opcode.SGE: OpClass.ALU,
    Opcode.SLTU: OpClass.ALU,
    Opcode.SGEU: OpClass.ALU,
    Opcode.FADD: OpClass.FPU,
    Opcode.FSUB: OpClass.FPU,
    Opcode.FMUL: OpClass.FPU,
    Opcode.FDIV: OpClass.FPU,
    Opcode.FNEG: OpClass.FPU,
    Opcode.ITOF: OpClass.FPU,
    Opcode.FTOI: OpClass.FPU,
    Opcode.FSEQ: OpClass.FPU,
    Opcode.FSNE: OpClass.FPU,
    Opcode.FSLT: OpClass.FPU,
    Opcode.FSLE: OpClass.FPU,
    Opcode.LOAD: OpClass.LOAD,
    Opcode.LOADB: OpClass.LOAD,
    Opcode.STORE: OpClass.STORE,
    Opcode.STOREB: OpClass.STORE,
    Opcode.BR: OpClass.BRANCH,
    Opcode.BT: OpClass.BRANCH,
    Opcode.BF: OpClass.BRANCH,
    Opcode.IBR: OpClass.BRANCH,
    Opcode.CALL: OpClass.CALL,
    Opcode.ICALL: OpClass.CALL,
    Opcode.RET: OpClass.RETURN,
    Opcode.HALT: OpClass.SYSTEM,
    Opcode.NOP: OpClass.SYSTEM,
}


@dataclass(frozen=True)
class Reg:
    """A register operand."""

    name: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", canonical_register(self.name))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """An immediate integer or floating-point operand."""

    value: Union[int, float]

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Sym:
    """A symbolic reference to a data object or function (for ``la``/``call``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Label:
    """A code label operand (branch target within a function)."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[Reg, Imm, Sym, Label]


@dataclass(frozen=True)
class Instruction:
    """A single IR instruction.

    Attributes
    ----------
    opcode:
        The operation.
    dest:
        Destination register (``None`` for stores, branches, ...).
    operands:
        Source operands in instruction order.
    label:
        Optional code label attached to this instruction (branch target).
    pred:
        Optional predicate register — if set, the architectural effect only
        happens when the predicate register is non-zero, but the instruction is
        always fetched and timed (single-path paradigm support).
    offset:
        Constant displacement for memory operands (``load``/``store``).
    comment:
        Free-form comment carried through from source or builder, used by
        reports and by annotation matching (e.g. source line tags).
    source_line:
        Mini-C source line that produced this instruction (0 if unknown).
    address:
        Byte address of the instruction once the program has been laid out;
        -1 before layout.
    """

    opcode: Opcode
    dest: Optional[Reg] = None
    operands: Tuple[Operand, ...] = ()
    label: Optional[str] = None
    pred: Optional[Reg] = None
    offset: int = 0
    comment: str = ""
    source_line: int = 0
    address: int = -1

    # ------------------------------------------------------------------ #
    # Classification helpers
    # ------------------------------------------------------------------ #
    @property
    def op_class(self) -> OpClass:
        """Coarse opcode class used by the pipeline timing model."""
        return _OPCLASS_TABLE[self.opcode]

    @property
    def is_terminator(self) -> bool:
        """True if the instruction always ends a basic block."""
        return self.opcode in TERMINATOR_OPCODES

    @property
    def is_branch(self) -> bool:
        return self.opcode in (Opcode.BR, Opcode.BT, Opcode.BF, Opcode.IBR)

    @property
    def is_conditional_branch(self) -> bool:
        return self.opcode in CONDITIONAL_BRANCHES

    @property
    def is_call(self) -> bool:
        return self.opcode in (Opcode.CALL, Opcode.ICALL)

    @property
    def is_indirect(self) -> bool:
        """True for indirect control transfers (function pointers, computed goto)."""
        return self.opcode in (Opcode.IBR, Opcode.ICALL)

    @property
    def is_memory_access(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.LOADB, Opcode.STORE, Opcode.STOREB)

    @property
    def is_load(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.LOADB)

    @property
    def is_store(self) -> bool:
        return self.opcode in (Opcode.STORE, Opcode.STOREB)

    @property
    def is_float(self) -> bool:
        return self.opcode in FLOAT_OPCODES

    @property
    def is_compare(self) -> bool:
        return self.opcode in COMPARE_OPCODES

    @property
    def is_predicated(self) -> bool:
        return self.pred is not None

    # ------------------------------------------------------------------ #
    # Dataflow helpers
    # ------------------------------------------------------------------ #
    def defined_register(self) -> Optional[str]:
        """Name of the register written by this instruction, if any."""
        if self.dest is not None:
            return self.dest.name
        return None

    def used_registers(self) -> Tuple[str, ...]:
        """Names of all registers read by this instruction."""
        used = [op.name for op in self.operands if isinstance(op, Reg)]
        if self.pred is not None:
            used.append(self.pred.name)
        return tuple(used)

    def branch_target(self) -> Optional[str]:
        """Label targeted by a direct branch, else ``None``."""
        if self.opcode in (Opcode.BR, Opcode.BT, Opcode.BF):
            for op in self.operands:
                if isinstance(op, Label):
                    return op.name
        return None

    def call_target(self) -> Optional[str]:
        """Function name targeted by a direct call, else ``None``."""
        if self.opcode is Opcode.CALL:
            for op in self.operands:
                if isinstance(op, Sym):
                    return op.name
        return None

    def with_address(self, address: int) -> "Instruction":
        """Return a copy of the instruction placed at ``address``.

        Bypasses :func:`dataclasses.replace` (which re-runs ``__init__`` and
        field validation) — layout relocates every instruction of every
        program, and the fields other than the address are copied verbatim.
        """
        clone = Instruction.__new__(Instruction)
        clone.__dict__.update(self.__dict__)
        clone.__dict__["address"] = address
        return clone

    def with_label(self, label: str) -> "Instruction":
        return replace(self, label=label)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.label:
            parts.append(f"{self.label}:")
        text = self.opcode.value
        ops = []
        if self.dest is not None:
            ops.append(str(self.dest))
        for op in self.operands:
            ops.append(str(op))
        if self.is_memory_access:
            # memory operands render as [base + offset]
            ops = []
            if self.is_load and self.dest is not None:
                ops.append(str(self.dest))
            if self.is_store and self.operands:
                ops.append(str(self.operands[0]))
            base = None
            for op in self.operands[1:] if self.is_store else self.operands:
                if isinstance(op, Reg):
                    base = op
                    break
            if base is not None:
                ops.append(f"[{base} + {self.offset}]")
        if ops:
            text += " " + ", ".join(ops)
        if self.pred is not None:
            text += f" ?{self.pred}"
        parts.append(text)
        return " ".join(parts)


#: Frozen membership sets for the validator — hash lookups instead of the
#: linear tuple scans this hot path used to pay per instruction.
_BINARY_ALU_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIVS,
        Opcode.DIVU,
        Opcode.REMS,
        Opcode.REMU,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.SRA,
    }
)
_UNARY_OPCODES = frozenset(
    {Opcode.NOT, Opcode.NEG, Opcode.FNEG, Opcode.ITOF, Opcode.FTOI}
)
_INDIRECT_OPCODES = frozenset({Opcode.ICALL, Opcode.IBR})
_LOAD_OPCODES = frozenset({Opcode.LOAD, Opcode.LOADB})
_STORE_OPCODES = frozenset({Opcode.STORE, Opcode.STOREB})


def validate_instruction(instr: Instruction) -> None:
    """Check structural well-formedness of an instruction.

    Raises :class:`IRError` describing the first problem found.  The check is
    deliberately strict: the analyses downstream rely on these invariants.
    """
    op = instr.opcode
    if op in _BINARY_ALU_OPCODES:
        if instr.dest is None or len(instr.operands) != 2:
            raise IRError(f"{op.value} requires a destination and two source operands")
        return
    if op is Opcode.MOV:
        if instr.dest is None or len(instr.operands) != 1:
            raise IRError("mov requires a destination and one source operand")
        return
    if op in _LOAD_OPCODES:
        if instr.dest is None:
            raise IRError("load requires a destination register")
        if not any(isinstance(o, Reg) for o in instr.operands):
            raise IRError("load requires a base address register")
        return
    if op in _STORE_OPCODES:
        regs = [o for o in instr.operands if isinstance(o, Reg)]
        if len(regs) < 2:
            raise IRError("store requires a value register and a base register")
        return
    if op in COMPARE_OPCODES:
        if instr.dest is None or len(instr.operands) != 2:
            raise IRError(f"{op.value} requires a destination and two source operands")
        return
    if op is Opcode.BR:
        if not any(isinstance(o, Label) for o in instr.operands):
            raise IRError("br requires a label operand")
        return
    if op in CONDITIONAL_BRANCHES:
        has_label = any(isinstance(o, Label) for o in instr.operands)
        has_reg = any(isinstance(o, Reg) for o in instr.operands)
        if not (has_label and has_reg):
            raise IRError(f"{op.value} requires a condition register and a label")
        return
    if op is Opcode.CALL:
        if not any(isinstance(o, Sym) for o in instr.operands):
            raise IRError("call requires a function symbol operand")
        return
    if op in _INDIRECT_OPCODES:
        if not any(isinstance(o, Reg) for o in instr.operands):
            raise IRError(f"{op.value} requires a register operand")
        return
    if op in _UNARY_OPCODES:
        if instr.dest is None or len(instr.operands) != 1:
            raise IRError(f"{op.value} requires a destination and one source operand")
        return
    if op is Opcode.LA:
        if instr.dest is None or not any(isinstance(o, Sym) for o in instr.operands):
            raise IRError("la requires a destination register and a symbol")
        return
