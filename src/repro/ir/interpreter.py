"""Concrete interpreter for IR programs.

The interpreter plays two roles in the reproduction:

1. It is the *measurement-based* counterpart to the static WCET analyzer: the
   execution trace it produces can be replayed through the concrete cache and
   pipeline simulators of :mod:`repro.hardware` to obtain an observed execution
   time, which by the soundness invariant must never exceed the static bound.
2. It validates the mini-C code generator and the workload programs
   (functional correctness, loop iteration counts, ...).

Semantics
---------

* Registers hold either 32-bit two's-complement integers or Python floats
  (the opcode decides the interpretation; ``itof``/``ftoi`` convert).
* Memory is a flat 32-bit byte-addressable space backed by a sparse word map.
* Integer division truncates towards zero (C semantics) and traps on zero.
* A predicated instruction whose predicate register is zero performs no
  architectural effect, but is still recorded in the trace as fetched — this is
  exactly the cost model under which the paper criticises the single-path
  paradigm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExecutionError, IRError
from repro.ir.instructions import (
    ARGUMENT_REGISTERS,
    INSTRUCTION_SIZE,
    NUM_REGISTERS,
    RETURN_VALUE_REGISTER,
    Imm,
    Instruction,
    Label,
    Opcode,
    Reg,
    Sym,
)
from repro.ir.program import Program, STACK_TOP, WORD_SIZE

MASK32 = 0xFFFF_FFFF
SIGN_BIT = 0x8000_0000

Number = Union[int, float]


def to_signed(value: int) -> int:
    """Interpret a 32-bit pattern as a signed integer."""
    value &= MASK32
    return value - 0x1_0000_0000 if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Interpret a (possibly negative) integer as its 32-bit unsigned pattern."""
    return value & MASK32


def wrap32(value: int) -> int:
    """Wrap an integer to signed 32-bit two's complement."""
    return to_signed(value & MASK32)


@dataclass
class MemoryAccess:
    """One data memory access performed during execution."""

    address: int
    size: int
    is_load: bool
    instruction_address: int


@dataclass
class ExecutionTrace:
    """Complete record of one program execution.

    ``instruction_addresses`` is the sequence of fetched instruction addresses
    (the program path); ``memory_accesses`` the data accesses in program order.
    Both are consumed by the concrete cache/pipeline simulators.
    """

    instruction_addresses: List[int] = field(default_factory=list)
    memory_accesses: List[MemoryAccess] = field(default_factory=list)
    block_counts: Dict[int, int] = field(default_factory=dict)
    call_counts: Dict[str, int] = field(default_factory=dict)

    def record_instruction(self, address: int) -> None:
        self.instruction_addresses.append(address)

    def record_access(self, access: MemoryAccess) -> None:
        self.memory_accesses.append(access)

    @property
    def length(self) -> int:
        return len(self.instruction_addresses)


@dataclass
class ExecutionResult:
    """Outcome of :meth:`Interpreter.run`."""

    return_value: int
    steps: int
    halted: bool
    registers: Dict[str, Number]
    trace: ExecutionTrace
    function_name: str

    def executed_addresses(self) -> List[int]:
        return self.trace.instruction_addresses


class MachineState:
    """Registers + memory of the abstract machine."""

    def __init__(self) -> None:
        self.registers: Dict[str, Number] = {f"r{i}": 0 for i in range(NUM_REGISTERS)}
        # Sparse word-addressed memory: word-aligned address -> value.
        self._memory: Dict[int, Number] = {}

    # ------------------------------------------------------------------ #
    def get_register(self, name: str) -> Number:
        return self.registers[name]

    def set_register(self, name: str, value: Number) -> None:
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, int):
            value = wrap32(value)
        self.registers[name] = value

    # ------------------------------------------------------------------ #
    def load_word(self, address: int) -> Number:
        if address % WORD_SIZE:
            raise ExecutionError(f"unaligned word load at {address:#x}")
        return self._memory.get(address, 0)

    def store_word(self, address: int, value: Number) -> None:
        if address % WORD_SIZE:
            raise ExecutionError(f"unaligned word store at {address:#x}")
        if isinstance(value, int):
            value = wrap32(value)
        self._memory[address] = value

    def load_byte(self, address: int) -> int:
        base = address - (address % WORD_SIZE)
        word = self._memory.get(base, 0)
        if isinstance(word, float):
            raise ExecutionError(f"byte load from float-typed word at {address:#x}")
        shift = 8 * (address % WORD_SIZE)
        return (to_unsigned(word) >> shift) & 0xFF

    def store_byte(self, address: int, value: int) -> None:
        base = address - (address % WORD_SIZE)
        word = self._memory.get(base, 0)
        if isinstance(word, float):
            word = 0
        shift = 8 * (address % WORD_SIZE)
        mask = 0xFF << shift
        new = (to_unsigned(word) & ~mask) | ((value & 0xFF) << shift)
        self._memory[base] = to_signed(new)

    def dump_memory(self) -> Dict[int, Number]:
        return dict(self._memory)


@dataclass
class _Frame:
    return_address: int
    function_name: str


class Interpreter:
    """Executes a laid-out :class:`~repro.ir.program.Program`.

    The program is *pre-decoded* at construction: every instruction is
    compiled into a small Python closure that performs exactly its
    architectural effect and returns the control transfer (if any).  The main
    loop is then one dict lookup plus one call per executed instruction —
    no per-step opcode dispatch, operand classification or label resolution.
    Constructing one interpreter and calling :meth:`run` many times (as the
    differential oracle does per input vector) amortises the decode to zero.

    Parameters
    ----------
    program:
        The program to execute; it is laid out and validated if necessary.
    max_steps:
        Execution is aborted with :class:`ExecutionError` after this many
        instructions — a safety net for diverging workloads under test.
    trace_instructions:
        Set to ``False`` to skip recording the full instruction trace (block
        counts are still collected); useful for very long runs.
    """

    def __init__(
        self,
        program: Program,
        max_steps: int = 2_000_000,
        trace_instructions: bool = True,
    ):
        program.validate()
        self.program = program
        self.max_steps = max_steps
        self.trace_instructions = trace_instructions
        #: address -> (predicate register name or None, step closure).
        self._decoded: Dict[int, tuple] = {}
        for function in program:
            labels = function.label_addresses()
            for instr in function.instructions:
                self._decoded[instr.address] = (
                    instr.pred.name if instr.pred is not None else None,
                    self._compile(instr, function, labels),
                )

    # ------------------------------------------------------------------ #
    def run(
        self,
        function_name: Optional[str] = None,
        args: Sequence[Number] = (),
        initial_memory: Optional[Dict[int, Number]] = None,
        initial_data: Optional[Dict[str, Sequence[Number]]] = None,
    ) -> ExecutionResult:
        """Execute ``function_name`` (default: the program entry) to completion.

        ``args`` are placed in the argument registers r3..r10.
        ``initial_memory`` maps absolute word addresses to initial values;
        ``initial_data`` maps data-object names to sequences of word values,
        a convenient way to set up input buffers per run.
        """
        name = function_name or self.program.entry
        function = self.program.function(name)
        if len(args) > len(ARGUMENT_REGISTERS):
            raise ExecutionError(
                f"at most {len(ARGUMENT_REGISTERS)} register arguments supported"
            )

        state = MachineState()
        state.set_register("r29", STACK_TOP)  # sp
        state.set_register("r30", STACK_TOP)  # fp
        for register, value in zip(ARGUMENT_REGISTERS, args):
            state.set_register(register, value)

        # Initialise static data.
        for obj in self.program.data_objects.values():
            for index, value in enumerate(obj.initial):
                state.store_word(obj.address + index * WORD_SIZE, value)
        if initial_data:
            for obj_name, values in initial_data.items():
                obj = self.program.data(obj_name)
                for index, value in enumerate(values):
                    if index * WORD_SIZE >= obj.size:
                        raise ExecutionError(
                            f"initial data for {obj_name!r} exceeds its size"
                        )
                    state.store_word(obj.address + index * WORD_SIZE, value)
        if initial_memory:
            for address, value in initial_memory.items():
                state.store_word(address, value)

        trace = ExecutionTrace()
        trace.call_counts[name] = 1
        frames: List[_Frame] = []
        pc = function.entry_address
        steps = 0
        halted = False

        # Local bindings for the hot loop.
        decoded = self._decoded
        max_steps = self.max_steps
        trace_instructions = self.trace_instructions
        record = trace.instruction_addresses.append
        block_counts = trace.block_counts
        registers = state.registers
        to_int = self._int

        while True:
            if steps >= max_steps:
                raise ExecutionError(
                    f"execution exceeded {self.max_steps} steps (diverging program?)"
                )
            entry = decoded.get(pc)
            if entry is None:
                # Outside every function: raise the canonical lookup error.
                self.program.function_at(pc).instruction_at(pc)
                raise ExecutionError(f"cannot decode instruction at {pc:#x}")
            steps += 1
            if trace_instructions:
                record(pc)
            block_counts[pc] = block_counts.get(pc, 0) + 1

            pred_name, step = entry
            if pred_name is not None and to_int(registers[pred_name]) == 0:
                pc += INSTRUCTION_SIZE
                continue
            control = step(state, trace, frames)
            if control is None:
                pc += INSTRUCTION_SIZE
            elif control is _HALT:
                halted = True
                break
            elif control is _RETURN:
                if not frames:
                    break
                pc = frames.pop().return_address
            else:
                pc = control

        return ExecutionResult(
            return_value=self._int(state.get_register(RETURN_VALUE_REGISTER)),
            steps=steps,
            halted=halted,
            registers=dict(state.registers),
            trace=trace,
            function_name=name,
        )

    # ------------------------------------------------------------------ #
    # Instruction semantics (decode-time compilation)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _int(value: Number) -> int:
        if isinstance(value, float):
            return wrap32(int(value))
        return value

    def _getter(self, operand):
        """Compile one operand into a ``state -> value`` accessor."""
        if isinstance(operand, Reg):
            name = operand.name
            return lambda state: state.registers[name]
        if isinstance(operand, Imm):
            value = operand.value
            return lambda state: value
        if isinstance(operand, Sym):
            address = self.program.symbol_address(operand.name)
            return lambda state: address
        raise ExecutionError(f"cannot evaluate operand {operand!r}")

    def _compile(self, instr: Instruction, function, labels: Dict[str, int]):
        """Compile one instruction into a ``(state, trace, frames)`` closure.

        The closure performs the architectural effect (predication has
        already been decided by the caller) and returns the control transfer:
        ``None`` to fall through, a target address, or the ``_HALT`` /
        ``_RETURN`` sentinels.
        """
        op = instr.opcode
        program = self.program
        to_int = self._int

        if op is Opcode.NOP:
            return lambda state, trace, frames: None
        if op is Opcode.HALT:
            return lambda state, trace, frames: _HALT
        if op is Opcode.RET:
            return lambda state, trace, frames: _RETURN

        if op is Opcode.MOV:
            dest = instr.dest.name
            get = self._getter(instr.operands[0])

            def step(state, trace, frames):
                state.set_register(dest, get(state))
                return None
            return step

        if op is Opcode.LA:
            dest = instr.dest.name
            address = program.symbol_address(instr.operands[0].name)

            def step(state, trace, frames):
                state.registers[dest] = address
                return None
            return step

        if op in _INT_BINOPS:
            dest = instr.dest.name
            compute = _INT_BINOPS[op]
            get_a = self._getter(instr.operands[0])
            get_b = self._getter(instr.operands[1])

            def step(state, trace, frames):
                state.registers[dest] = compute(
                    to_int(get_a(state)), to_int(get_b(state))
                )
                return None
            return step

        if op in (Opcode.NOT, Opcode.NEG):
            dest = instr.dest.name
            get = self._getter(instr.operands[0])
            negate = op is Opcode.NEG

            def step(state, trace, frames):
                value = to_int(get(state))
                state.registers[dest] = wrap32(-value if negate else ~value)
                return None
            return step

        if op in _FLOAT_BINOPS:
            dest = instr.dest.name
            compute = _FLOAT_BINOPS[op]
            get_a = self._getter(instr.operands[0])
            get_b = self._getter(instr.operands[1])

            def step(state, trace, frames):
                state.set_register(
                    dest, compute(float(get_a(state)), float(get_b(state)))
                )
                return None
            return step

        if op is Opcode.FNEG:
            dest = instr.dest.name
            get = self._getter(instr.operands[0])

            def step(state, trace, frames):
                state.registers[dest] = -float(get(state))
                return None
            return step

        if op is Opcode.ITOF:
            dest = instr.dest.name
            get = self._getter(instr.operands[0])

            def step(state, trace, frames):
                state.registers[dest] = float(to_int(get(state)))
                return None
            return step

        if op is Opcode.FTOI:
            dest = instr.dest.name
            get = self._getter(instr.operands[0])

            def step(state, trace, frames):
                state.registers[dest] = wrap32(int(float(get(state))))
                return None
            return step

        if op in (Opcode.LOAD, Opcode.LOADB):
            dest = instr.dest.name
            get_base = self._getter(instr.operands[0])
            offset = instr.offset
            pc = instr.address
            if op is Opcode.LOAD:
                def step(state, trace, frames):
                    address = to_unsigned(to_int(get_base(state)) + offset)
                    trace.memory_accesses.append(
                        MemoryAccess(address, WORD_SIZE, True, pc)
                    )
                    state.registers[dest] = state.load_word(address)
                    return None
            else:
                def step(state, trace, frames):
                    address = to_unsigned(to_int(get_base(state)) + offset)
                    trace.memory_accesses.append(MemoryAccess(address, 1, True, pc))
                    state.registers[dest] = state.load_byte(address)
                    return None
            return step

        if op in (Opcode.STORE, Opcode.STOREB):
            get_value = self._getter(instr.operands[0])
            get_base = self._getter(instr.operands[1])
            offset = instr.offset
            pc = instr.address
            is_word = op is Opcode.STORE
            size = WORD_SIZE if is_word else 1

            def step(state, trace, frames):
                value = get_value(state)
                address = to_unsigned(to_int(get_base(state)) + offset)
                obj = program.data_object_at(address)
                if obj is not None and obj.readonly:
                    raise ExecutionError(
                        f"store to read-only data object {obj.name!r} at {address:#x}"
                    )
                trace.memory_accesses.append(MemoryAccess(address, size, False, pc))
                if is_word:
                    state.store_word(address, value)
                else:
                    state.store_byte(address, to_int(value))
                return None
            return step

        if op in (Opcode.BR, Opcode.BT, Opcode.BF):
            label = instr.branch_target()
            if label is None:
                def step(state, trace, frames):
                    raise ExecutionError("branch without a label target")
                return step
            try:
                target = labels[label]
            except KeyError:
                message = (
                    f"undefined label {label!r} in function {function.name!r}"
                )

                def step(state, trace, frames):
                    raise ExecutionError(message)
                return step
            if op is Opcode.BR:
                return lambda state, trace, frames: target
            get_cond = self._getter(instr.operands[0])
            branch_if_true = op is Opcode.BT

            def step(state, trace, frames):
                taken = (to_int(get_cond(state)) != 0) == branch_if_true
                return target if taken else None
            return step

        if op is Opcode.IBR:
            get = self._getter(instr.operands[0])
            return lambda state, trace, frames: to_unsigned(to_int(get(state)))

        if op is Opcode.CALL:
            target_name = instr.call_target()
            entry = program.function(target_name).entry_address
            return_address = instr.address + INSTRUCTION_SIZE
            caller = function.name

            def step(state, trace, frames):
                frames.append(_Frame(return_address, caller))
                counts = trace.call_counts
                counts[target_name] = counts.get(target_name, 0) + 1
                if len(frames) > 4096:
                    raise ExecutionError("call stack overflow (runaway recursion?)")
                return entry
            return step

        if op is Opcode.ICALL:
            get = self._getter(instr.operands[0])
            return_address = instr.address + INSTRUCTION_SIZE
            caller = function.name

            def step(state, trace, frames):
                target = to_unsigned(to_int(get(state)))
                callee = program.function_by_entry(target)
                if callee is None:
                    raise ExecutionError(
                        f"indirect call to {target:#x}, which is not a function entry"
                    )
                frames.append(_Frame(return_address, caller))
                counts = trace.call_counts
                counts[callee.name] = counts.get(callee.name, 0) + 1
                if len(frames) > 4096:
                    raise ExecutionError("call stack overflow (runaway recursion?)")
                return callee.entry_address
            return step

        def step(state, trace, frames):
            raise ExecutionError(f"unimplemented opcode {op.value!r}")
        return step


# Sentinels used by _execute to signal control transfers.
_HALT = object()
_RETURN = object()


def _divide_trunc(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return wrap32(quotient)


def _remainder_trunc(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer remainder by zero")
    return wrap32(a - _divide_trunc(a, b) * b)


def _divu(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer division by zero")
    return wrap32(to_unsigned(a) // to_unsigned(b))


def _remu(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer remainder by zero")
    return wrap32(to_unsigned(a) % to_unsigned(b))


_INT_BINOPS = {
    Opcode.ADD: lambda a, b: wrap32(a + b),
    Opcode.SUB: lambda a, b: wrap32(a - b),
    Opcode.MUL: lambda a, b: wrap32(a * b),
    Opcode.DIVS: _divide_trunc,
    Opcode.DIVU: _divu,
    Opcode.REMS: _remainder_trunc,
    Opcode.REMU: _remu,
    Opcode.AND: lambda a, b: wrap32(to_unsigned(a) & to_unsigned(b)),
    Opcode.OR: lambda a, b: wrap32(to_unsigned(a) | to_unsigned(b)),
    Opcode.XOR: lambda a, b: wrap32(to_unsigned(a) ^ to_unsigned(b)),
    Opcode.SHL: lambda a, b: wrap32(to_unsigned(a) << (to_unsigned(b) & 31)),
    Opcode.SHR: lambda a, b: wrap32(to_unsigned(a) >> (to_unsigned(b) & 31)),
    Opcode.SRA: lambda a, b: wrap32(a >> (to_unsigned(b) & 31)),
    Opcode.SEQ: lambda a, b: int(a == b),
    Opcode.SNE: lambda a, b: int(a != b),
    Opcode.SLT: lambda a, b: int(a < b),
    Opcode.SLE: lambda a, b: int(a <= b),
    Opcode.SGT: lambda a, b: int(a > b),
    Opcode.SGE: lambda a, b: int(a >= b),
    Opcode.SLTU: lambda a, b: int(to_unsigned(a) < to_unsigned(b)),
    Opcode.SGEU: lambda a, b: int(to_unsigned(a) >= to_unsigned(b)),
}

_FLOAT_BINOPS = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: a / b if b != 0.0 else float("inf") if a > 0 else float("-inf") if a < 0 else float("nan"),
    Opcode.FSEQ: lambda a, b: int(a == b),
    Opcode.FSNE: lambda a, b: int(a != b),
    Opcode.FSLT: lambda a, b: int(a < b),
    Opcode.FSLE: lambda a, b: int(a <= b),
}
