"""Concrete interpreter for IR programs.

The interpreter plays two roles in the reproduction:

1. It is the *measurement-based* counterpart to the static WCET analyzer: the
   execution trace it produces can be replayed through the concrete cache and
   pipeline simulators of :mod:`repro.hardware` to obtain an observed execution
   time, which by the soundness invariant must never exceed the static bound.
2. It validates the mini-C code generator and the workload programs
   (functional correctness, loop iteration counts, ...).

Semantics
---------

* Registers hold either 32-bit two's-complement integers or Python floats
  (the opcode decides the interpretation; ``itof``/``ftoi`` convert).
* Memory is a flat 32-bit byte-addressable space backed by a sparse word map.
* Integer division truncates towards zero (C semantics) and traps on zero.
* A predicated instruction whose predicate register is zero performs no
  architectural effect, but is still recorded in the trace as fetched — this is
  exactly the cost model under which the paper criticises the single-path
  paradigm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExecutionError, IRError
from repro.ir.instructions import (
    ARGUMENT_REGISTERS,
    INSTRUCTION_SIZE,
    NUM_REGISTERS,
    RETURN_VALUE_REGISTER,
    Imm,
    Instruction,
    Label,
    Opcode,
    Reg,
    Sym,
)
from repro.ir.program import Program, STACK_TOP, WORD_SIZE

MASK32 = 0xFFFF_FFFF
SIGN_BIT = 0x8000_0000

Number = Union[int, float]


def to_signed(value: int) -> int:
    """Interpret a 32-bit pattern as a signed integer."""
    value &= MASK32
    return value - 0x1_0000_0000 if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    """Interpret a (possibly negative) integer as its 32-bit unsigned pattern."""
    return value & MASK32


def wrap32(value: int) -> int:
    """Wrap an integer to signed 32-bit two's complement."""
    return to_signed(value & MASK32)


@dataclass
class MemoryAccess:
    """One data memory access performed during execution."""

    address: int
    size: int
    is_load: bool
    instruction_address: int


@dataclass
class ExecutionTrace:
    """Complete record of one program execution.

    ``instruction_addresses`` is the sequence of fetched instruction addresses
    (the program path); ``memory_accesses`` the data accesses in program order.
    Both are consumed by the concrete cache/pipeline simulators.
    """

    instruction_addresses: List[int] = field(default_factory=list)
    memory_accesses: List[MemoryAccess] = field(default_factory=list)
    block_counts: Dict[int, int] = field(default_factory=dict)
    call_counts: Dict[str, int] = field(default_factory=dict)

    def record_instruction(self, address: int) -> None:
        self.instruction_addresses.append(address)

    def record_access(self, access: MemoryAccess) -> None:
        self.memory_accesses.append(access)

    @property
    def length(self) -> int:
        return len(self.instruction_addresses)


@dataclass
class ExecutionResult:
    """Outcome of :meth:`Interpreter.run`."""

    return_value: int
    steps: int
    halted: bool
    registers: Dict[str, Number]
    trace: ExecutionTrace
    function_name: str

    def executed_addresses(self) -> List[int]:
        return self.trace.instruction_addresses


class MachineState:
    """Registers + memory of the abstract machine."""

    def __init__(self) -> None:
        self.registers: Dict[str, Number] = {f"r{i}": 0 for i in range(NUM_REGISTERS)}
        # Sparse word-addressed memory: word-aligned address -> value.
        self._memory: Dict[int, Number] = {}

    # ------------------------------------------------------------------ #
    def get_register(self, name: str) -> Number:
        return self.registers[name]

    def set_register(self, name: str, value: Number) -> None:
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, int):
            value = wrap32(value)
        self.registers[name] = value

    # ------------------------------------------------------------------ #
    def load_word(self, address: int) -> Number:
        if address % WORD_SIZE:
            raise ExecutionError(f"unaligned word load at {address:#x}")
        return self._memory.get(address, 0)

    def store_word(self, address: int, value: Number) -> None:
        if address % WORD_SIZE:
            raise ExecutionError(f"unaligned word store at {address:#x}")
        if isinstance(value, int):
            value = wrap32(value)
        self._memory[address] = value

    def load_byte(self, address: int) -> int:
        base = address - (address % WORD_SIZE)
        word = self._memory.get(base, 0)
        if isinstance(word, float):
            raise ExecutionError(f"byte load from float-typed word at {address:#x}")
        shift = 8 * (address % WORD_SIZE)
        return (to_unsigned(word) >> shift) & 0xFF

    def store_byte(self, address: int, value: int) -> None:
        base = address - (address % WORD_SIZE)
        word = self._memory.get(base, 0)
        if isinstance(word, float):
            word = 0
        shift = 8 * (address % WORD_SIZE)
        mask = 0xFF << shift
        new = (to_unsigned(word) & ~mask) | ((value & 0xFF) << shift)
        self._memory[base] = to_signed(new)

    def dump_memory(self) -> Dict[int, Number]:
        return dict(self._memory)


@dataclass
class _Frame:
    return_address: int
    function_name: str


class Interpreter:
    """Executes a laid-out :class:`~repro.ir.program.Program`.

    Parameters
    ----------
    program:
        The program to execute; it is laid out and validated if necessary.
    max_steps:
        Execution is aborted with :class:`ExecutionError` after this many
        instructions — a safety net for diverging workloads under test.
    trace_instructions:
        Set to ``False`` to skip recording the full instruction trace (block
        counts are still collected); useful for very long runs.
    """

    def __init__(
        self,
        program: Program,
        max_steps: int = 2_000_000,
        trace_instructions: bool = True,
    ):
        program.validate()
        self.program = program
        self.max_steps = max_steps
        self.trace_instructions = trace_instructions

    # ------------------------------------------------------------------ #
    def run(
        self,
        function_name: Optional[str] = None,
        args: Sequence[Number] = (),
        initial_memory: Optional[Dict[int, Number]] = None,
        initial_data: Optional[Dict[str, Sequence[Number]]] = None,
    ) -> ExecutionResult:
        """Execute ``function_name`` (default: the program entry) to completion.

        ``args`` are placed in the argument registers r3..r10.
        ``initial_memory`` maps absolute word addresses to initial values;
        ``initial_data`` maps data-object names to sequences of word values,
        a convenient way to set up input buffers per run.
        """
        name = function_name or self.program.entry
        function = self.program.function(name)
        if len(args) > len(ARGUMENT_REGISTERS):
            raise ExecutionError(
                f"at most {len(ARGUMENT_REGISTERS)} register arguments supported"
            )

        state = MachineState()
        state.set_register("r29", STACK_TOP)  # sp
        state.set_register("r30", STACK_TOP)  # fp
        for register, value in zip(ARGUMENT_REGISTERS, args):
            state.set_register(register, value)

        # Initialise static data.
        for obj in self.program.data_objects.values():
            for index, value in enumerate(obj.initial):
                state.store_word(obj.address + index * WORD_SIZE, value)
        if initial_data:
            for obj_name, values in initial_data.items():
                obj = self.program.data(obj_name)
                for index, value in enumerate(values):
                    if index * WORD_SIZE >= obj.size:
                        raise ExecutionError(
                            f"initial data for {obj_name!r} exceeds its size"
                        )
                    state.store_word(obj.address + index * WORD_SIZE, value)
        if initial_memory:
            for address, value in initial_memory.items():
                state.store_word(address, value)

        trace = ExecutionTrace()
        trace.call_counts[name] = 1
        frames: List[_Frame] = []
        pc = function.entry_address
        current_function = function
        steps = 0
        halted = False
        label_cache: Dict[str, Dict[str, int]] = {}

        while True:
            if steps >= self.max_steps:
                raise ExecutionError(
                    f"execution exceeded {self.max_steps} steps (diverging program?)"
                )
            if not (
                current_function.entry_address
                <= pc
                < current_function.end_address
            ):
                current_function = self.program.function_at(pc)
            instr = current_function.instruction_at(pc)
            steps += 1
            if self.trace_instructions:
                trace.record_instruction(pc)
            trace.block_counts[pc] = trace.block_counts.get(pc, 0) + 1

            next_pc = pc + INSTRUCTION_SIZE
            take_effect = True
            if instr.pred is not None:
                take_effect = self._int(state.get_register(instr.pred.name)) != 0

            if take_effect:
                control = self._execute(
                    instr, state, trace, current_function, label_cache, frames, pc
                )
                if control is _HALT:
                    halted = True
                    break
                if control is _RETURN:
                    if not frames:
                        break
                    frame = frames.pop()
                    next_pc = frame.return_address
                elif control is not None:
                    next_pc = control
            pc = next_pc

        return ExecutionResult(
            return_value=self._int(state.get_register(RETURN_VALUE_REGISTER)),
            steps=steps,
            halted=halted,
            registers=dict(state.registers),
            trace=trace,
            function_name=name,
        )

    # ------------------------------------------------------------------ #
    # Instruction semantics
    # ------------------------------------------------------------------ #
    @staticmethod
    def _int(value: Number) -> int:
        if isinstance(value, float):
            return wrap32(int(value))
        return value

    def _operand_value(self, operand, state: MachineState) -> Number:
        if isinstance(operand, Reg):
            return state.get_register(operand.name)
        if isinstance(operand, Imm):
            return operand.value
        if isinstance(operand, Sym):
            return self.program.symbol_address(operand.name)
        raise ExecutionError(f"cannot evaluate operand {operand!r}")

    def _execute(
        self,
        instr: Instruction,
        state: MachineState,
        trace: ExecutionTrace,
        function,
        label_cache: Dict[str, Dict[str, int]],
        frames: List[_Frame],
        pc: int,
    ):
        op = instr.opcode
        val = lambda index: self._operand_value(instr.operands[index], state)

        if op is Opcode.NOP:
            return None
        if op is Opcode.HALT:
            return _HALT
        if op is Opcode.MOV:
            state.set_register(instr.dest.name, val(0))
            return None
        if op is Opcode.LA:
            symbol = instr.operands[0]
            state.set_register(instr.dest.name, self.program.symbol_address(symbol.name))
            return None

        if op in _INT_BINOPS:
            a = self._int(val(0))
            b = self._int(val(1))
            state.set_register(instr.dest.name, _INT_BINOPS[op](a, b))
            return None
        if op is Opcode.NOT:
            state.set_register(instr.dest.name, wrap32(~self._int(val(0))))
            return None
        if op is Opcode.NEG:
            state.set_register(instr.dest.name, wrap32(-self._int(val(0))))
            return None

        if op in _FLOAT_BINOPS:
            a = float(val(0))
            b = float(val(1))
            state.set_register(instr.dest.name, _FLOAT_BINOPS[op](a, b))
            return None
        if op is Opcode.FNEG:
            state.set_register(instr.dest.name, -float(val(0)))
            return None
        if op is Opcode.ITOF:
            state.set_register(instr.dest.name, float(self._int(val(0))))
            return None
        if op is Opcode.FTOI:
            state.set_register(instr.dest.name, wrap32(int(float(val(0)))))
            return None

        if op in (Opcode.LOAD, Opcode.LOADB):
            base = self._int(val(0))
            address = to_unsigned(base + instr.offset)
            size = WORD_SIZE if op is Opcode.LOAD else 1
            trace.record_access(
                MemoryAccess(address=address, size=size, is_load=True, instruction_address=pc)
            )
            if op is Opcode.LOAD:
                state.set_register(instr.dest.name, state.load_word(address))
            else:
                state.set_register(instr.dest.name, state.load_byte(address))
            return None
        if op in (Opcode.STORE, Opcode.STOREB):
            value = val(0)
            base = self._int(val(1))
            address = to_unsigned(base + instr.offset)
            size = WORD_SIZE if op is Opcode.STORE else 1
            obj = self.program.data_object_at(address)
            if obj is not None and obj.readonly:
                raise ExecutionError(
                    f"store to read-only data object {obj.name!r} at {address:#x}"
                )
            trace.record_access(
                MemoryAccess(address=address, size=size, is_load=False, instruction_address=pc)
            )
            if op is Opcode.STORE:
                state.store_word(address, value)
            else:
                state.store_byte(address, self._int(value))
            return None

        if op is Opcode.BR:
            return self._label_address(function, instr.branch_target(), label_cache)
        if op in (Opcode.BT, Opcode.BF):
            cond = self._int(val(0))
            taken = (cond != 0) if op is Opcode.BT else (cond == 0)
            if taken:
                return self._label_address(function, instr.branch_target(), label_cache)
            return None
        if op is Opcode.IBR:
            target = to_unsigned(self._int(val(0)))
            return target
        if op is Opcode.CALL:
            target_name = instr.call_target()
            callee = self.program.function(target_name)
            frames.append(_Frame(pc + INSTRUCTION_SIZE, function.name))
            trace.call_counts[target_name] = trace.call_counts.get(target_name, 0) + 1
            if len(frames) > 4096:
                raise ExecutionError("call stack overflow (runaway recursion?)")
            return callee.entry_address
        if op is Opcode.ICALL:
            target = to_unsigned(self._int(val(0)))
            callee = self.program.function_by_entry(target)
            if callee is None:
                raise ExecutionError(
                    f"indirect call to {target:#x}, which is not a function entry"
                )
            frames.append(_Frame(pc + INSTRUCTION_SIZE, function.name))
            trace.call_counts[callee.name] = trace.call_counts.get(callee.name, 0) + 1
            if len(frames) > 4096:
                raise ExecutionError("call stack overflow (runaway recursion?)")
            return callee.entry_address
        if op is Opcode.RET:
            return _RETURN

        raise ExecutionError(f"unimplemented opcode {op.value!r}")

    def _label_address(self, function, label: Optional[str], cache) -> int:
        if label is None:
            raise ExecutionError("branch without a label target")
        table = cache.get(function.name)
        if table is None:
            table = function.label_addresses()
            cache[function.name] = table
        try:
            return table[label]
        except KeyError as exc:
            raise ExecutionError(
                f"undefined label {label!r} in function {function.name!r}"
            ) from exc


# Sentinels used by _execute to signal control transfers.
_HALT = object()
_RETURN = object()


def _divide_trunc(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return wrap32(quotient)


def _remainder_trunc(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer remainder by zero")
    return wrap32(a - _divide_trunc(a, b) * b)


def _divu(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer division by zero")
    return wrap32(to_unsigned(a) // to_unsigned(b))


def _remu(a: int, b: int) -> int:
    if b == 0:
        raise ExecutionError("integer remainder by zero")
    return wrap32(to_unsigned(a) % to_unsigned(b))


_INT_BINOPS = {
    Opcode.ADD: lambda a, b: wrap32(a + b),
    Opcode.SUB: lambda a, b: wrap32(a - b),
    Opcode.MUL: lambda a, b: wrap32(a * b),
    Opcode.DIVS: _divide_trunc,
    Opcode.DIVU: _divu,
    Opcode.REMS: _remainder_trunc,
    Opcode.REMU: _remu,
    Opcode.AND: lambda a, b: wrap32(to_unsigned(a) & to_unsigned(b)),
    Opcode.OR: lambda a, b: wrap32(to_unsigned(a) | to_unsigned(b)),
    Opcode.XOR: lambda a, b: wrap32(to_unsigned(a) ^ to_unsigned(b)),
    Opcode.SHL: lambda a, b: wrap32(to_unsigned(a) << (to_unsigned(b) & 31)),
    Opcode.SHR: lambda a, b: wrap32(to_unsigned(a) >> (to_unsigned(b) & 31)),
    Opcode.SRA: lambda a, b: wrap32(a >> (to_unsigned(b) & 31)),
    Opcode.SEQ: lambda a, b: int(a == b),
    Opcode.SNE: lambda a, b: int(a != b),
    Opcode.SLT: lambda a, b: int(a < b),
    Opcode.SLE: lambda a, b: int(a <= b),
    Opcode.SGT: lambda a, b: int(a > b),
    Opcode.SGE: lambda a, b: int(a >= b),
    Opcode.SLTU: lambda a, b: int(to_unsigned(a) < to_unsigned(b)),
    Opcode.SGEU: lambda a, b: int(to_unsigned(a) >= to_unsigned(b)),
}

_FLOAT_BINOPS = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: a / b if b != 0.0 else float("inf") if a > 0 else float("-inf") if a < 0 else float("nan"),
    Opcode.FSEQ: lambda a, b: int(a == b),
    Opcode.FSNE: lambda a, b: int(a != b),
    Opcode.FSLT: lambda a, b: int(a < b),
    Opcode.FSLE: lambda a, b: int(a <= b),
}
