"""Programs, functions and data objects of the repro IR.

A :class:`Program` is the unit the WCET analyzer works on — the moral
equivalent of the "input executable" in Figure 1 of the paper.  It owns

* a set of :class:`Function` objects (the code segment),
* a set of :class:`DataObject` objects (the data segment), and
* an address layout: every instruction and data object gets a byte address in
  a flat 32-bit address space so the cache and memory-map analyses can reason
  about concrete addresses.

The default layout places code at :data:`CODE_BASE`, data at
:data:`DATA_BASE` and reserves a descending stack starting at
:data:`STACK_TOP`; memory-mapped device regions can be added on top of that by
the hardware model (:mod:`repro.hardware.memory`).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import IRError
from repro.ir.instructions import (
    INSTRUCTION_SIZE,
    Instruction,
    Opcode,
    validate_instruction,
)

#: Base address of the code segment.
CODE_BASE = 0x0000_1000
#: Base address of the static data segment.
DATA_BASE = 0x2000_0000
#: Initial stack pointer (stack grows towards lower addresses).
STACK_TOP = 0x3FFF_FFF0
#: Size of the stack region in bytes.
STACK_SIZE = 0x0010_0000
#: Base address of the heap region used by the (MISRA-discouraged) allocator.
HEAP_BASE = 0x4000_0000
#: Size of the heap region in bytes.
HEAP_SIZE = 0x0010_0000
#: Base address of the memory-mapped device region (CAN/FlexRay controllers...).
DEVICE_BASE = 0x8000_0000
#: Size of the memory-mapped device region.
DEVICE_SIZE = 0x0001_0000

WORD_SIZE = 4


@dataclass
class DataObject:
    """A statically allocated data object (global variable, buffer, table).

    Attributes
    ----------
    name:
        Symbol name.
    size:
        Size in bytes (word aligned by the layout).
    initial:
        Optional initial word values (missing words are zero).
    region:
        Logical region name; ``"data"`` objects live in RAM, ``"device"``
        objects are placed in the memory-mapped I/O region (slow, uncached) —
        this is how the "imprecise memory accesses" experiment of Section 4.3
        distinguishes fast and slow memory.
    readonly:
        Whether the object models constant data (e.g. lookup tables).
    address:
        Assigned base address after layout (-1 before).
    """

    name: str
    size: int
    initial: Tuple[int, ...] = ()
    region: str = "data"
    readonly: bool = False
    address: int = -1

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise IRError(f"data object {self.name!r} must have positive size")
        # Word-align the size so layout arithmetic stays simple.
        if self.size % WORD_SIZE:
            self.size += WORD_SIZE - (self.size % WORD_SIZE)
        self.initial = tuple(self.initial)
        if len(self.initial) * WORD_SIZE > self.size:
            raise IRError(
                f"data object {self.name!r}: {len(self.initial)} initial words "
                f"do not fit into {self.size} bytes"
            )

    @property
    def end_address(self) -> int:
        """First byte address past the object (valid after layout)."""
        return self.address + self.size

    def contains(self, address: int) -> bool:
        """True if ``address`` falls inside this object (after layout)."""
        return self.address <= address < self.end_address


@dataclass
class Function:
    """A function: a named, contiguous sequence of instructions.

    The instruction list is laid out contiguously in the code segment; the
    entry point is the first instruction.  Labels are local to the function.
    """

    name: str
    instructions: List[Instruction] = field(default_factory=list)
    #: Number of formal parameters (metadata used by the call-graph and the
    #: guideline checker; the calling convention passes them in r3..r10).
    num_params: int = 0
    #: True if the function was produced from a variadic mini-C declaration.
    variadic: bool = False
    #: Source file / provenance note.
    source: str = ""
    #: Entry address after layout.
    entry_address: int = -1

    def __post_init__(self) -> None:
        if not self.name:
            raise IRError("function must have a name")

    # ------------------------------------------------------------------ #
    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def size(self) -> int:
        """Size of the function body in bytes."""
        return len(self.instructions) * INSTRUCTION_SIZE

    @property
    def end_address(self) -> int:
        return self.entry_address + self.size

    def labels(self) -> Dict[str, int]:
        """Map from label name to instruction index."""
        result: Dict[str, int] = {}
        for index, instr in enumerate(self.instructions):
            if instr.label:
                if instr.label in result:
                    raise IRError(
                        f"duplicate label {instr.label!r} in function {self.name!r}"
                    )
                result[instr.label] = index
        return result

    def label_addresses(self) -> Dict[str, int]:
        """Map from label name to instruction address (after layout)."""
        return {
            label: self.instructions[index].address
            for label, index in self.labels().items()
        }

    def instruction_at(self, address: int) -> Instruction:
        """Return the instruction located at ``address``.

        Raises :class:`IRError` if the address is not inside this function.
        """
        if self.entry_address < 0:
            raise IRError(f"function {self.name!r} has not been laid out")
        offset = address - self.entry_address
        if offset < 0 or offset % INSTRUCTION_SIZE or offset >= self.size:
            raise IRError(
                f"address {address:#x} is not an instruction of {self.name!r}"
            )
        return self.instructions[offset // INSTRUCTION_SIZE]

    def validate(self) -> None:
        """Validate all instructions and branch-target labels."""
        labels = self.labels()
        for instr in self.instructions:
            validate_instruction(instr)
            target = instr.branch_target()
            if target is not None and target not in labels:
                raise IRError(
                    f"function {self.name!r}: branch to undefined label {target!r}"
                )
        if self.instructions:
            last = self.instructions[-1]
            if not last.is_terminator:
                raise IRError(
                    f"function {self.name!r} does not end in a terminator "
                    f"(found {last.opcode.value!r})"
                )


class Program:
    """A complete IR program: functions plus data objects plus layout.

    Parameters
    ----------
    entry:
        Name of the entry function (the "task" analysed for its WCET — the
        paper notes a task usually corresponds to a specific entry point of
        the analysed executable).
    """

    def __init__(self, entry: str = "main"):
        self.entry = entry
        self._functions: Dict[str, Function] = {}
        self._data: Dict[str, DataObject] = {}
        self._laid_out = False
        self._validated = False
        # Address indexes (built by layout): O(1)/O(log n) lookups on the
        # paths the interpreter and trace timer hit once per executed
        # instruction.
        self._instr_index: Dict[int, Instruction] = {}
        self._function_starts: List[int] = []
        self._functions_in_order: List[Function] = []
        self._function_by_entry: Dict[int, Function] = {}
        self._data_starts: List[int] = []
        self._data_in_order: List[DataObject] = []
        self._symbol_addresses: Dict[str, int] = {}
        self._content_digest: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_function(self, function: Function) -> Function:
        if function.name in self._functions:
            raise IRError(f"duplicate function {function.name!r}")
        self._functions[function.name] = function
        self._laid_out = False
        self._validated = False
        self._content_digest = None
        return function

    def add_data(self, data: DataObject) -> DataObject:
        if data.name in self._data:
            raise IRError(f"duplicate data object {data.name!r}")
        self._data[data.name] = data
        self._laid_out = False
        self._validated = False
        self._content_digest = None
        return data

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def functions(self) -> Dict[str, Function]:
        return dict(self._functions)

    @property
    def data_objects(self) -> Dict[str, DataObject]:
        return dict(self._data)

    def function(self, name: str) -> Function:
        try:
            return self._functions[name]
        except KeyError as exc:
            raise IRError(f"unknown function {name!r}") from exc

    def has_function(self, name: str) -> bool:
        return name in self._functions

    def data(self, name: str) -> DataObject:
        try:
            return self._data[name]
        except KeyError as exc:
            raise IRError(f"unknown data object {name!r}") from exc

    def has_data(self, name: str) -> bool:
        return name in self._data

    def symbol_address(self, name: str) -> int:
        """Address of a function or data symbol (after layout)."""
        self.ensure_layout()
        address = self._symbol_addresses.get(name)
        if address is None:
            raise IRError(f"unknown symbol {name!r}")
        return address

    def function_at(self, address: int) -> Function:
        """Function containing the given code address."""
        self.ensure_layout()
        index = bisect_right(self._function_starts, address) - 1
        if index >= 0:
            function = self._functions_in_order[index]
            if function.entry_address <= address < function.end_address:
                return function
        raise IRError(f"no function contains address {address:#x}")

    def function_by_entry(self, address: int) -> Optional[Function]:
        """Function whose entry point is exactly ``address`` (or ``None``)."""
        self.ensure_layout()
        return self._function_by_entry.get(address)

    def data_object_at(self, address: int) -> Optional[DataObject]:
        """Data object containing ``address`` (or ``None``)."""
        self.ensure_layout()
        index = bisect_right(self._data_starts, address) - 1
        if index >= 0:
            obj = self._data_in_order[index]
            if obj.contains(address):
                return obj
        return None

    def instruction_at(self, address: int) -> Instruction:
        self.ensure_layout()
        instruction = self._instr_index.get(address)
        if instruction is None:
            # Slow path reproduces the precise per-case error messages.
            return self.function_at(address).instruction_at(address)
        return instruction

    def entry_function(self) -> Function:
        return self.function(self.entry)

    def __iter__(self) -> Iterator[Function]:
        return iter(self._functions.values())

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #
    def layout(self) -> None:
        """Assign addresses to all instructions and data objects.

        Functions are placed back to back starting at :data:`CODE_BASE` in
        insertion order; ``data`` region objects start at :data:`DATA_BASE`
        and ``device`` region objects at :data:`DEVICE_BASE`.
        """
        address = CODE_BASE
        for function in self._functions.values():
            function.entry_address = address
            placed = []
            for instr in function.instructions:
                placed.append(instr.with_address(address))
                address += INSTRUCTION_SIZE
            function.instructions = placed

        data_address = DATA_BASE
        device_address = DEVICE_BASE
        for obj in self._data.values():
            if obj.region == "device":
                obj.address = device_address
                device_address += obj.size
            elif obj.region == "heap":
                # Heap-modelled objects are *not* given a static address: the
                # whole point of MISRA rule 20.4 is that their addresses are
                # statically unknown.  They are placed inside the heap region
                # only for the concrete interpreter.
                obj.address = HEAP_BASE + (obj.address if obj.address > 0 else 0)
            else:
                obj.address = data_address
                data_address += obj.size
        # Second pass for heap objects to pack them after each other.
        heap_address = HEAP_BASE
        for obj in self._data.values():
            if obj.region == "heap":
                obj.address = heap_address
                heap_address += obj.size

        self._build_indexes()
        self._laid_out = True

    def _build_indexes(self) -> None:
        """Address indexes for the per-instruction hot paths."""
        self._instr_index = {
            instr.address: instr
            for function in self._functions.values()
            for instr in function.instructions
        }
        ordered = sorted(self._functions.values(), key=lambda f: f.entry_address)
        self._functions_in_order = ordered
        self._function_starts = [f.entry_address for f in ordered]
        self._function_by_entry = {f.entry_address: f for f in ordered}
        data_ordered = sorted(self._data.values(), key=lambda d: d.address)
        self._data_in_order = data_ordered
        self._data_starts = [d.address for d in data_ordered]
        self._symbol_addresses = {
            name: function.entry_address for name, function in self._functions.items()
        }
        self._symbol_addresses.update(
            (name, obj.address) for name, obj in self._data.items()
        )

    @property
    def is_laid_out(self) -> bool:
        return self._laid_out

    def ensure_layout(self) -> None:
        if not self._laid_out:
            self.layout()

    def validate(self) -> None:
        """Validate every function and the entry point, then lay out.

        Validation is structural and the program is immutable once built (any
        ``add_function``/``add_data`` resets the flag), so repeated calls —
        one per interpreter construction in a differential sweep — are
        answered from the cached verdict.
        """
        if self._validated and self._laid_out:
            return
        if self.entry not in self._functions:
            raise IRError(f"entry function {self.entry!r} is not defined")
        for function in self._functions.values():
            function.validate()
            for instr in function.instructions:
                target = instr.call_target()
                if target is not None and target not in self._functions:
                    raise IRError(
                        f"function {function.name!r} calls undefined function "
                        f"{target!r}"
                    )
        self.ensure_layout()
        self._validated = True

    def content_digest(self) -> str:
        """Stable digest of the laid-out program content.

        Covers every bit of the program the WCET analysis reads: the full
        instruction stream with assigned addresses, the data objects with
        their addresses, regions, sizes and initial values, and the entry
        point.  Two programs with equal digests are indistinguishable to the
        analyzer, which is what makes the digest safe as (part of) a
        function-summary cache key.  Computed once and cached; any
        ``add_function``/``add_data`` invalidates it.
        """
        self.ensure_layout()
        if self._content_digest is None:
            digest = hashlib.sha256()
            digest.update(f"entry {self.entry}\n".encode())
            for function in self._functions.values():
                digest.update(
                    f"F {function.name} @{function.entry_address:#x} "
                    f"params={function.num_params} variadic={function.variadic}\n".encode()
                )
                for instr in function.instructions:
                    digest.update(f"{instr.address:#x} {instr}\n".encode())
            for obj in self._data.values():
                digest.update(
                    f"D {obj.name} @{obj.address:#x} size={obj.size} "
                    f"region={obj.region} ro={obj.readonly} init={obj.initial}\n".encode()
                )
            self._content_digest = digest.hexdigest()[:32]
        return self._content_digest

    # ------------------------------------------------------------------ #
    # Statistics & rendering
    # ------------------------------------------------------------------ #
    def code_size(self) -> int:
        return sum(f.size for f in self._functions.values())

    def instruction_count(self) -> int:
        return sum(len(f) for f in self._functions.values())

    def listing(self) -> str:
        """Produce a human-readable assembly listing of the whole program."""
        self.ensure_layout()
        lines: List[str] = []
        for obj in self._data.values():
            init = f" = {list(obj.initial)}" if obj.initial else ""
            lines.append(
                f".data {obj.name} {obj.size} @{obj.address:#010x} "
                f"[{obj.region}]{init}"
            )
        for function in self._functions.values():
            lines.append(f".func {function.name} @{function.entry_address:#010x}")
            for instr in function.instructions:
                lines.append(f"    {instr.address:#010x}: {instr}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Program(entry={self.entry!r}, functions={len(self._functions)}, "
            f"data={len(self._data)}, instructions={self.instruction_count()})"
        )
