"""Mini-C frontend: lexer, parser, type checker and IR code generator.

The paper discusses coding guidelines at the *source* level (MISRA-C) and
timing analysis at the *binary* level (aiT).  This package provides both ends
for the reproduction: a small C-like language rich enough to express every
code pattern the paper discusses — counter and data-dependent loops, ``goto``
into loops, ``continue``, recursion, variadic functions, function pointers,
dynamic allocation, ``setjmp``/``longjmp``, floating-point loop conditions —
plus a code generator that lowers it onto the :mod:`repro.ir` register IR the
WCET analyzer consumes.

Typical use::

    from repro.minic import compile_source
    program = compile_source(source_text)              # -> repro.ir.Program
    ast = parse_source(source_text)                    # -> AST for the checker
"""

from repro.minic.ast import (
    ArrayType,
    AssignExpr,
    BinaryExpr,
    BreakStmt,
    CallExpr,
    CompilationUnit,
    CompoundStmt,
    ContinueStmt,
    DoWhileStmt,
    ExprStmt,
    FloatLiteral,
    ForStmt,
    FunctionDef,
    FunctionType,
    GotoStmt,
    Identifier,
    IfStmt,
    IndexExpr,
    IntLiteral,
    LabelStmt,
    Parameter,
    PointerType,
    ReturnStmt,
    ScalarType,
    Type,
    UnaryExpr,
    VarDecl,
    WhileStmt,
)
from repro.minic.lexer import Token, TokenKind, tokenize
from repro.minic.cparser import parse_source
from repro.minic.typecheck import TypeChecker, check_types
from repro.minic.codegen import CodeGenerator, compile_source, compile_unit

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "parse_source",
    "check_types",
    "TypeChecker",
    "CodeGenerator",
    "compile_source",
    "compile_unit",
    "CompilationUnit",
    "FunctionDef",
    "VarDecl",
    "Parameter",
    "Type",
    "ScalarType",
    "PointerType",
    "ArrayType",
    "FunctionType",
    "CompoundStmt",
    "IfStmt",
    "WhileStmt",
    "DoWhileStmt",
    "ForStmt",
    "ReturnStmt",
    "BreakStmt",
    "ContinueStmt",
    "GotoStmt",
    "LabelStmt",
    "ExprStmt",
    "IntLiteral",
    "FloatLiteral",
    "Identifier",
    "UnaryExpr",
    "BinaryExpr",
    "AssignExpr",
    "CallExpr",
    "IndexExpr",
]
