"""Abstract syntax tree of the mini-C language.

All nodes carry their source ``line`` so that the guideline checker can report
findings with locations and the code generator can tag the emitted IR
instructions (annotations and reports refer back to source lines).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


# --------------------------------------------------------------------------- #
# Types
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScalarType:
    """``int``, ``unsigned``, ``float`` or ``void``."""

    name: str  # "int" | "unsigned" | "float" | "void"

    @property
    def is_float(self) -> bool:
        return self.name == "float"

    @property
    def is_integer(self) -> bool:
        return self.name in ("int", "unsigned")

    @property
    def is_unsigned(self) -> bool:
        return self.name == "unsigned"

    @property
    def is_void(self) -> bool:
        return self.name == "void"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType:
    """Pointer to another type."""

    pointee: "Type"

    @property
    def is_float(self) -> bool:
        return False

    @property
    def is_integer(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType:
    """Fixed-size one-dimensional array."""

    element: "Type"
    length: int

    @property
    def is_float(self) -> bool:
        return False

    @property
    def is_integer(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class FunctionType:
    """Type of a function (used for function pointers)."""

    return_type: "Type"
    parameters: Tuple["Type", ...]
    variadic: bool = False

    @property
    def is_float(self) -> bool:
        return False

    @property
    def is_integer(self) -> bool:
        return False

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.parameters)
        if self.variadic:
            params = params + ", ..." if params else "..."
        return f"{self.return_type}({params})"


Type = Union[ScalarType, PointerType, ArrayType, FunctionType]

INT = ScalarType("int")
UNSIGNED = ScalarType("unsigned")
FLOAT = ScalarType("float")
VOID = ScalarType("void")


def type_is_float(t: Optional[Type]) -> bool:
    return isinstance(t, ScalarType) and t.is_float


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
@dataclass
class Expr:
    """Base class for expressions; ``ctype`` is filled in by the type checker."""

    line: int = 0
    ctype: Optional[Type] = None


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class Identifier(Expr):
    name: str = ""
    #: Resolved declaration (VarDecl, Parameter or FunctionDef); set by the
    #: type checker.
    decl: Optional[object] = None


@dataclass
class UnaryExpr(Expr):
    """``op`` in ``- ! ~ * & ++pre --pre post++ post--``."""

    op: str = ""
    operand: Optional[Expr] = None
    postfix: bool = False


@dataclass
class BinaryExpr(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class AssignExpr(Expr):
    """``target op= value`` where op is '' for plain assignment."""

    op: str = ""
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    callee: Optional[Expr] = None
    arguments: List[Expr] = field(default_factory=list)


@dataclass
class IndexExpr(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #
@dataclass
class Stmt:
    line: int = 0


@dataclass
class CompoundStmt(Stmt):
    statements: List["Node"] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    condition: Optional[Expr] = None
    then_branch: Optional[Stmt] = None
    else_branch: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    condition: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhileStmt(Stmt):
    body: Optional[Stmt] = None
    condition: Optional[Expr] = None


@dataclass
class ForStmt(Stmt):
    init: Optional["Node"] = None          # expression statement or declaration
    condition: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class GotoStmt(Stmt):
    label: str = ""


@dataclass
class LabelStmt(Stmt):
    label: str = ""
    statement: Optional[Stmt] = None


@dataclass
class EmptyStmt(Stmt):
    pass


# --------------------------------------------------------------------------- #
# Declarations
# --------------------------------------------------------------------------- #
@dataclass
class VarDecl(Stmt):
    """A variable declaration (global or local)."""

    name: str = ""
    var_type: Optional[Type] = None
    init: Optional[Expr] = None
    is_global: bool = False
    #: Filled by the code generator: True when the address of the variable is
    #: taken somewhere (forces a stack slot instead of a register).
    address_taken: bool = False


@dataclass
class Parameter:
    name: str
    param_type: Type
    line: int = 0


@dataclass
class FunctionDef:
    """A function definition (or a prototype when ``body`` is ``None``)."""

    name: str
    return_type: Type
    parameters: List[Parameter] = field(default_factory=list)
    variadic: bool = False
    body: Optional[CompoundStmt] = None
    line: int = 0

    @property
    def is_prototype(self) -> bool:
        return self.body is None

    def function_type(self) -> FunctionType:
        return FunctionType(
            return_type=self.return_type,
            parameters=tuple(p.param_type for p in self.parameters),
            variadic=self.variadic,
        )


Node = Union[Stmt, Expr, VarDecl, FunctionDef]


@dataclass
class CompilationUnit:
    """A parsed source file: globals + functions, in declaration order."""

    globals: List[VarDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
    source_name: str = "<memory>"

    def function(self, name: str) -> Optional[FunctionDef]:
        for function in self.functions:
            if function.name == name and not function.is_prototype:
                return function
        for function in self.functions:
            if function.name == name:
                return function
        return None

    def defined_functions(self) -> List[FunctionDef]:
        return [f for f in self.functions if not f.is_prototype]


# --------------------------------------------------------------------------- #
# Generic traversal helpers (used by the guideline checker)
# --------------------------------------------------------------------------- #
#: Attributes that hold *references* to other nodes (resolved declarations,
#: computed types) rather than syntactic children; traversals must not follow
#: them or globals would appear "inside" every function that mentions them.
_NON_CHILD_ATTRIBUTES = {"decl", "ctype"}


#: Per-class cache of the attribute names a traversal must look at.  AST
#: nodes are dataclasses, so their syntactic children always live in declared
#: fields; the only dynamically attached attributes (``decl``, ``ctype``) are
#: exactly the non-child references excluded from traversal.
_CHILD_FIELD_CACHE: dict = {}

_CHILD_TYPES = None  # resolved lazily: (Expr, Stmt, VarDecl, FunctionDef)


def _child_fields(cls: type):
    names = _CHILD_FIELD_CACHE.get(cls)
    if names is None:
        if dataclasses.is_dataclass(cls):
            names = tuple(
                f.name
                for f in dataclasses.fields(cls)
                if f.name not in _NON_CHILD_ATTRIBUTES
            )
        else:
            names = None
        _CHILD_FIELD_CACHE[cls] = names
    return names


def child_nodes(node: object) -> List[object]:
    """Immediate syntactic AST children of ``node``."""
    global _CHILD_TYPES
    if _CHILD_TYPES is None:
        _CHILD_TYPES = (Expr, Stmt, VarDecl, FunctionDef)
    child_types = _CHILD_TYPES
    children: List[object] = []
    append = children.append

    names = _child_fields(node.__class__)
    if names is None:
        # Non-dataclass object: fall back to instance-dict discovery.
        if not hasattr(node, "__dict__"):
            return children
        names = tuple(
            name for name in vars(node) if name not in _NON_CHILD_ATTRIBUTES
        )
    def add_from_list(values: list) -> None:
        for item in values:
            if isinstance(item, child_types):
                append(item)
            elif isinstance(item, list):
                add_from_list(item)

    for name in names:
        value = getattr(node, name)
        if isinstance(value, child_types):
            append(value)
        elif isinstance(value, list):
            add_from_list(value)
    return children


def walk(node: object):
    """Depth-first pre-order traversal over all AST nodes under ``node``."""
    yield node
    for child in child_nodes(node):
        yield from walk(child)
