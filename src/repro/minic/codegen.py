"""Code generation from mini-C ASTs to the repro register IR.

Design decisions that matter for the downstream analyses:

* **Scalar locals live in callee-saved registers** (r14..r28) whenever their
  address is not taken and a register is free.  This keeps loop counters in
  registers across iterations, so the data-flow loop-bound analysis recognises
  the counter pattern — exactly the property MISRA rules 13.4/13.6 try to
  protect at the source level.  Address-taken locals and arrays get stack
  slots.
* **Loop headers get stable labels** ``loop_<line>`` (source line of the loop)
  so design-level annotations (``loopbound handle_message.loop_42 16``) can
  reference them without knowing generated addresses.
* **Counter updates compile to in-place ``add/sub``** on the home register
  (``i = i + 1`` → ``add r14, r14, 1``), preserving the counter pattern.
* Calls spill live expression temporaries to dedicated frame slots and reload
  them afterwards, so expression evaluation is correct across calls without a
  full register allocator.
* ``malloc``/``free``/``setjmp``/``longjmp`` are synthesised as small IR
  library functions; dynamic allocation returns pointers whose addresses the
  value analysis cannot resolve, which is precisely the rule 20.4 penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import CodegenError
from repro.ir.builder import FunctionBuilder, ProgramBuilder
from repro.ir.instructions import ARGUMENT_REGISTERS
from repro.ir.program import Program, WORD_SIZE
from repro.minic import ast
from repro.minic.cparser import parse_source
from repro.minic.typecheck import check_types

#: Registers usable as expression temporaries (caller saved).
TEMP_REGISTERS = tuple(f"r{i}" for i in range(3, 14))
#: Registers usable as homes for scalar locals (callee saved).
HOME_REGISTERS = tuple(f"r{i}" for i in range(14, 29))
#: Stack pointer register name.
SP = "r29"
#: Size of the heap pool backing malloc(), in bytes.
HEAP_POOL_SIZE = 8192


@dataclass
class _VariableHome:
    """Where a local variable lives: a register or a stack slot."""

    name: str
    register: Optional[str] = None
    stack_offset: Optional[int] = None
    var_type: Optional[ast.Type] = None
    is_parameter: bool = False

    @property
    def in_register(self) -> bool:
        return self.register is not None


@dataclass
class _LoopContext:
    break_label: str
    continue_label: str


class _TempPool:
    """Expression temporaries with spill bookkeeping."""

    def __init__(self) -> None:
        self.free: List[str] = list(TEMP_REGISTERS)
        self.live: List[str] = []

    def alloc(self) -> str:
        if not self.free:
            raise CodegenError(
                "expression too complex: ran out of temporary registers"
            )
        register = self.free.pop(0)
        self.live.append(register)
        return register

    def release(self, register: Optional[str]) -> None:
        if register is None:
            return
        if register in self.live:
            self.live.remove(register)
            self.free.insert(0, register)

    def live_registers(self) -> List[str]:
        return list(self.live)


class _Value:
    """Result of expression codegen: a register (owned temp or borrowed home)
    or an immediate constant."""

    def __init__(
        self,
        register: Optional[str] = None,
        immediate: Optional[Union[int, float]] = None,
        owned: bool = False,
    ):
        self.register = register
        self.immediate = immediate
        self.owned = owned

    @property
    def is_immediate(self) -> bool:
        return self.immediate is not None

    def operand(self) -> Union[str, int, float]:
        if self.is_immediate:
            return self.immediate
        return self.register


class CodeGenerator:
    """Compiles one type-checked compilation unit into an IR program."""

    def __init__(self, unit: ast.CompilationUnit, entry: str = "main"):
        self.unit = unit
        self.entry = entry
        self.builder = ProgramBuilder(entry=entry)
        self._label_counter = 0
        self._uses_malloc = False
        self._uses_setjmp = False
        self._global_types: Dict[str, ast.Type] = {}

    # ------------------------------------------------------------------ #
    def generate(self) -> Program:
        for declaration in self.unit.globals:
            self._emit_global(declaration)
        for function in self.unit.defined_functions():
            self._emit_function(function)
        self._emit_builtins()
        return self.builder.build()

    # ------------------------------------------------------------------ #
    # Globals
    # ------------------------------------------------------------------ #
    def _emit_global(self, declaration: ast.VarDecl) -> None:
        var_type = declaration.var_type
        self._global_types[declaration.name] = var_type
        if isinstance(var_type, ast.ArrayType):
            size = max(var_type.length, 1) * WORD_SIZE
            initial: Tuple[int, ...] = ()
        else:
            size = WORD_SIZE
            initial = ()
        if isinstance(declaration.init, ast.IntLiteral):
            initial = (declaration.init.value,)
        elif isinstance(declaration.init, ast.UnaryExpr) and declaration.init.op == "-":
            operand = declaration.init.operand
            if isinstance(operand, ast.IntLiteral):
                initial = (-operand.value,)
        self.builder.data(declaration.name, size, initial=initial)

    # ------------------------------------------------------------------ #
    # Functions
    # ------------------------------------------------------------------ #
    def _emit_function(self, function: ast.FunctionDef) -> None:
        generator = _FunctionEmitter(self, function)
        generator.emit()

    def _emit_builtins(self) -> None:
        if self._uses_malloc:
            self.builder.data("__heap_pool", HEAP_POOL_SIZE, region="heap")
            self.builder.data("__heap_next", WORD_SIZE, initial=(0,))
            fb = self.builder.function("malloc", num_params=1)
            fb.comment("bump allocator over __heap_pool (MISRA rule 20.4 territory)")
            fb.la("r4", "__heap_next")
            fb.load("r5", "r4", 0)
            fb.la("r6", "__heap_pool")
            fb.add("r6", "r6", "r5")
            fb.add("r5", "r5", "r3")
            fb.add("r5", "r5", 3)
            fb.mov("r7", -4)
            fb.and_("r5", "r5", "r7")
            fb.store("r5", "r4", 0)
            fb.mov("r3", "r6")
            fb.ret()

            fb = self.builder.function("free", num_params=1)
            fb.comment("no-op: the bump allocator never releases memory")
            fb.ret()
        if self._uses_setjmp:
            fb = self.builder.function("setjmp", num_params=1)
            fb.comment("stubbed: always returns 0 (direct path)")
            fb.mov("r3", 0)
            fb.ret()
            fb = self.builder.function("longjmp", num_params=2)
            fb.comment("stubbed: returns to the caller instead of unwinding")
            fb.ret()

    def fresh_label(self, hint: str) -> str:
        self._label_counter += 1
        return f".{hint}{self._label_counter}"


class _FunctionEmitter:
    """Emits the IR of one function."""

    def __init__(self, parent: CodeGenerator, function: ast.FunctionDef):
        self.parent = parent
        self.function = function
        self.fb: FunctionBuilder = parent.builder.function(
            function.name,
            num_params=len(function.parameters),
            variadic=function.variadic,
        )
        self.temps = _TempPool()
        self.homes: Dict[int, _VariableHome] = {}     # keyed by id(decl)
        self.loop_stack: List[_LoopContext] = []
        self.epilogue_label = self.parent.fresh_label("epilogue")
        self.frame_size = 0
        self.spill_base = 0
        self.saved_registers: List[str] = []
        self.used_labels: set = set()

    # ------------------------------------------------------------------ #
    # Frame layout
    # ------------------------------------------------------------------ #
    def _collect_locals(self) -> List[ast.VarDecl]:
        declarations: List[ast.VarDecl] = []
        if self.function.body is not None:
            for node in ast.walk(self.function.body):
                if isinstance(node, ast.VarDecl):
                    declarations.append(node)
        return declarations

    def _assign_homes(self) -> None:
        available = list(HOME_REGISTERS)
        stack_offset = 0

        def alloc_stack(size: int) -> int:
            nonlocal stack_offset
            offset = stack_offset
            stack_offset += size
            return offset

        # Parameters first (so the most frequently used values get registers).
        for parameter in self.function.parameters:
            home = _VariableHome(
                name=parameter.name, var_type=parameter.param_type, is_parameter=True
            )
            if available:
                home.register = available.pop(0)
            else:
                home.stack_offset = alloc_stack(WORD_SIZE)
            self.homes[id(parameter)] = home

        for declaration in self._collect_locals():
            var_type = declaration.var_type
            home = _VariableHome(name=declaration.name, var_type=var_type)
            if isinstance(var_type, ast.ArrayType):
                home.stack_offset = alloc_stack(max(var_type.length, 1) * WORD_SIZE)
            elif declaration.address_taken or not available:
                home.stack_offset = alloc_stack(WORD_SIZE)
            else:
                home.register = available.pop(0)
            self.homes[id(declaration)] = home

        # Spill area for expression temporaries across calls.
        self.spill_base = stack_offset
        stack_offset += len(TEMP_REGISTERS) * WORD_SIZE
        # Save area for the callee-saved registers we use as homes.
        self.saved_registers = [
            home.register for home in self.homes.values() if home.register is not None
        ]
        self.save_area = stack_offset
        stack_offset += len(self.saved_registers) * WORD_SIZE
        # Word-align the frame.
        self.frame_size = (stack_offset + WORD_SIZE - 1) & ~(WORD_SIZE - 1)

    # ------------------------------------------------------------------ #
    def emit(self) -> None:
        self._assign_homes()
        fb = self.fb

        # Prologue.
        if self.frame_size:
            fb.sub(SP, SP, self.frame_size)
        for index, register in enumerate(self.saved_registers):
            fb.store(register, SP, self.save_area + index * WORD_SIZE)
        for position, parameter in enumerate(self.function.parameters):
            if position >= len(ARGUMENT_REGISTERS):
                raise CodegenError(
                    f"{self.function.name}: more than "
                    f"{len(ARGUMENT_REGISTERS)} parameters are not supported"
                )
            home = self.homes[id(parameter)]
            source = ARGUMENT_REGISTERS[position]
            if home.in_register:
                fb.mov(home.register, source)
            else:
                fb.store(source, SP, home.stack_offset)

        # Body.
        self._emit_stmt(self.function.body)

        # Epilogue (also the fall-off-the-end return path).
        fb.label(self.epilogue_label)
        for index, register in enumerate(self.saved_registers):
            fb.load(register, SP, self.save_area + index * WORD_SIZE)
        if self.frame_size:
            fb.add(SP, SP, self.frame_size)
        if self.function.name == self.parent.entry:
            fb.halt()
        else:
            fb.ret()

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _emit_stmt(self, statement: Optional[ast.Stmt]) -> None:
        if statement is None:
            return
        fb = self.fb
        line = getattr(statement, "line", 0)
        if line:
            fb.at_line(line)

        if isinstance(statement, ast.CompoundStmt):
            for item in statement.statements:
                self._emit_stmt(item)
            return
        if isinstance(statement, ast.VarDecl):
            if statement.init is not None:
                self._emit_assign_to_decl(statement, statement.init)
            return
        if isinstance(statement, ast.ExprStmt):
            if statement.expr is not None:
                value = self._emit_expr(statement.expr)
                self._release(value)
            return
        if isinstance(statement, ast.IfStmt):
            self._emit_if(statement)
            return
        if isinstance(statement, ast.WhileStmt):
            self._emit_while(statement)
            return
        if isinstance(statement, ast.DoWhileStmt):
            self._emit_do_while(statement)
            return
        if isinstance(statement, ast.ForStmt):
            self._emit_for(statement)
            return
        if isinstance(statement, ast.ReturnStmt):
            if statement.value is not None:
                value = self._emit_expr(statement.value)
                self._move_into("r3", value)
                self._release(value)
            self.fb.br(self.epilogue_label)
            return
        if isinstance(statement, ast.BreakStmt):
            if not self.loop_stack:
                raise CodegenError(f"line {statement.line}: break outside of a loop")
            self.fb.br(self.loop_stack[-1].break_label)
            return
        if isinstance(statement, ast.ContinueStmt):
            if not self.loop_stack:
                raise CodegenError(f"line {statement.line}: continue outside of a loop")
            self.fb.br(self.loop_stack[-1].continue_label)
            return
        if isinstance(statement, ast.GotoStmt):
            self.fb.br(f"{statement.label}")
            return
        if isinstance(statement, ast.LabelStmt):
            self.fb.label(statement.label)
            self._emit_stmt(statement.statement)
            return
        if isinstance(statement, ast.EmptyStmt):
            return
        raise CodegenError(f"unhandled statement {type(statement).__name__}")

    # ------------------------------------------------------------------ #
    def _loop_label(self, line: int, hint: str) -> str:
        base = f"loop_{line}" if line else self.parent.fresh_label(hint)
        label = base
        suffix = 1
        while label in self.used_labels:
            suffix += 1
            label = f"{base}_{suffix}"
        self.used_labels.add(label)
        return label

    def _emit_if(self, statement: ast.IfStmt) -> None:
        fb = self.fb
        else_label = self.parent.fresh_label("else")
        end_label = self.parent.fresh_label("endif")
        condition = self._emit_expr(statement.condition)
        register = self._materialise(condition)
        fb.bf(register, else_label if statement.else_branch else end_label)
        self._release(condition)
        self._emit_stmt(statement.then_branch)
        if statement.else_branch is not None:
            fb.br(end_label)
            fb.label(else_label)
            self._emit_stmt(statement.else_branch)
        fb.label(end_label)
        fb.nop()

    def _emit_while(self, statement: ast.WhileStmt) -> None:
        fb = self.fb
        header = self._loop_label(statement.line, "while")
        exit_label = self.parent.fresh_label("endwhile")
        fb.label(header)
        condition = self._emit_expr(statement.condition)
        register = self._materialise(condition)
        fb.bf(register, exit_label)
        self._release(condition)
        self.loop_stack.append(_LoopContext(exit_label, header))
        self._emit_stmt(statement.body)
        self.loop_stack.pop()
        fb.br(header)
        fb.label(exit_label)
        fb.nop()

    def _emit_do_while(self, statement: ast.DoWhileStmt) -> None:
        fb = self.fb
        header = self._loop_label(statement.line, "dowhile")
        continue_label = self.parent.fresh_label("docond")
        exit_label = self.parent.fresh_label("enddo")
        fb.label(header)
        self.loop_stack.append(_LoopContext(exit_label, continue_label))
        self._emit_stmt(statement.body)
        self.loop_stack.pop()
        fb.label(continue_label)
        condition = self._emit_expr(statement.condition)
        register = self._materialise(condition)
        fb.bt(register, header)
        self._release(condition)
        fb.label(exit_label)
        fb.nop()

    def _emit_for(self, statement: ast.ForStmt) -> None:
        fb = self.fb
        if isinstance(statement.init, ast.VarDecl):
            if statement.init.init is not None:
                self._emit_assign_to_decl(statement.init, statement.init.init)
        elif isinstance(statement.init, ast.ExprStmt) and statement.init.expr is not None:
            value = self._emit_expr(statement.init.expr)
            self._release(value)
        elif isinstance(statement.init, ast.CompoundStmt):
            self._emit_stmt(statement.init)

        header = self._loop_label(statement.line, "for")
        continue_label = self.parent.fresh_label("forstep")
        exit_label = self.parent.fresh_label("endfor")
        fb.label(header)
        if statement.condition is not None:
            condition = self._emit_expr(statement.condition)
            register = self._materialise(condition)
            fb.bf(register, exit_label)
            self._release(condition)
        self.loop_stack.append(_LoopContext(exit_label, continue_label))
        self._emit_stmt(statement.body)
        self.loop_stack.pop()
        fb.label(continue_label)
        if statement.step is not None:
            value = self._emit_expr(statement.step)
            self._release(value)
        fb.br(header)
        fb.label(exit_label)
        fb.nop()

    # ------------------------------------------------------------------ #
    # Variable access helpers
    # ------------------------------------------------------------------ #
    def _home_of(self, declaration: object) -> Optional[_VariableHome]:
        return self.homes.get(id(declaration))

    def _is_float_expr(self, expr: Optional[ast.Expr]) -> bool:
        return expr is not None and ast.type_is_float(expr.ctype)

    def _emit_assign_to_decl(self, declaration: ast.VarDecl, value_expr: ast.Expr) -> None:
        home = self._home_of(declaration)
        if home is None:
            raise CodegenError(f"no storage assigned to local {declaration.name!r}")
        if home.in_register:
            self._emit_expr_into(home.register, value_expr)
        else:
            value = self._emit_expr(value_expr)
            register = self._materialise(value)
            self.fb.store(register, SP, home.stack_offset)
            self._release(value)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _release(self, value: Optional[_Value]) -> None:
        if value is not None and value.owned:
            self.temps.release(value.register)

    def _materialise(self, value: _Value) -> str:
        """Ensure the value is in a register; returns the register name."""
        if value.register is not None:
            return value.register
        register = self.temps.alloc()
        self.fb.mov(register, value.immediate)
        value.register = register
        value.owned = True
        return register

    def _move_into(self, destination: str, value: _Value) -> None:
        if value.is_immediate:
            self.fb.mov(destination, value.immediate)
        elif value.register != destination:
            self.fb.mov(destination, value.register)

    @staticmethod
    def _fold_constant(expr: ast.Expr):
        """Evaluate integer constant expressions at compile time (or None).

        Keeps loop limits like ``16 - 1`` out of the generated loop body so the
        loop-bound analysis sees a constant comparison operand.
        """
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.UnaryExpr) and not expr.postfix:
            inner = _FunctionEmitter._fold_constant(expr.operand) if expr.operand else None
            if inner is None:
                return None
            if expr.op == "-":
                return -inner
            if expr.op == "~":
                return ~inner
            if expr.op == "!":
                return int(inner == 0)
            return None
        if isinstance(expr, ast.BinaryExpr):
            left = _FunctionEmitter._fold_constant(expr.left) if expr.left else None
            right = _FunctionEmitter._fold_constant(expr.right) if expr.right else None
            if left is None or right is None:
                return None
            try:
                if expr.op == "+":
                    return left + right
                if expr.op == "-":
                    return left - right
                if expr.op == "*":
                    return left * right
                if expr.op == "/" and right != 0:
                    return int(left / right) if (left < 0) != (right < 0) else left // right
                if expr.op == "%" and right != 0:
                    return left - right * (int(left / right) if (left < 0) != (right < 0) else left // right)
                if expr.op == "<<" and 0 <= right < 32:
                    return left << right
                if expr.op == ">>" and 0 <= right < 32:
                    return left >> right
                if expr.op == "&":
                    return left & right
                if expr.op == "|":
                    return left | right
                if expr.op == "^":
                    return left ^ right
                if expr.op == "<":
                    return int(left < right)
                if expr.op == "<=":
                    return int(left <= right)
                if expr.op == ">":
                    return int(left > right)
                if expr.op == ">=":
                    return int(left >= right)
                if expr.op == "==":
                    return int(left == right)
                if expr.op == "!=":
                    return int(left != right)
            except (OverflowError, ValueError):
                return None
        return None

    def _emit_expr(self, expr: ast.Expr) -> _Value:
        if isinstance(expr, ast.IntLiteral):
            return _Value(immediate=expr.value)
        folded = self._fold_constant(expr)
        if folded is not None and isinstance(expr, (ast.BinaryExpr, ast.UnaryExpr)):
            return _Value(immediate=folded)
        if isinstance(expr, ast.FloatLiteral):
            return _Value(immediate=float(expr.value))
        if isinstance(expr, ast.Identifier):
            return self._emit_identifier(expr)
        if isinstance(expr, ast.UnaryExpr):
            return self._emit_unary(expr)
        if isinstance(expr, ast.BinaryExpr):
            return self._emit_binary(expr)
        if isinstance(expr, ast.AssignExpr):
            return self._emit_assignment(expr)
        if isinstance(expr, ast.CallExpr):
            return self._emit_call(expr)
        if isinstance(expr, ast.IndexExpr):
            address, element_float = self._emit_address(expr)
            register = self.temps.alloc()
            self.fb.load(register, address.register, 0)
            self._release(address)
            return _Value(register=register, owned=True)
        raise CodegenError(f"unhandled expression {type(expr).__name__}")

    def _emit_expr_into(self, destination: str, expr: ast.Expr) -> None:
        """Evaluate ``expr`` directly into ``destination`` (a home register).

        Keeps counter updates in the three-address form the loop-bound
        analysis recognises (``add r14, r14, 1``).
        """
        if isinstance(expr, ast.IntLiteral):
            self.fb.mov(destination, expr.value)
            return
        if isinstance(expr, ast.FloatLiteral):
            self.fb.mov(destination, float(expr.value))
            return
        if isinstance(expr, ast.Identifier):
            value = self._emit_identifier(expr)
            self._move_into(destination, value)
            self._release(value)
            return
        if isinstance(expr, ast.BinaryExpr) and expr.op not in ("&&", "||", ","):
            left = self._emit_expr(expr.left)
            right = self._emit_expr(expr.right)
            self._emit_binary_op(destination, expr, left, right)
            self._release(left)
            self._release(right)
            return
        value = self._emit_expr(expr)
        self._move_into(destination, value)
        self._release(value)

    # ------------------------------------------------------------------ #
    def _emit_identifier(self, expr: ast.Identifier) -> _Value:
        declaration = expr.decl
        if isinstance(declaration, ast.FunctionDef):
            register = self.temps.alloc()
            self.fb.la(register, declaration.name)
            return _Value(register=register, owned=True)
        home = self._home_of(declaration)
        if home is not None:
            if home.in_register:
                return _Value(register=home.register, owned=False)
            if isinstance(home.var_type, ast.ArrayType):
                register = self.temps.alloc()
                self.fb.add(register, SP, home.stack_offset)
                return _Value(register=register, owned=True)
            register = self.temps.alloc()
            self.fb.load(register, SP, home.stack_offset)
            return _Value(register=register, owned=True)
        # Global variable.
        if isinstance(declaration, ast.VarDecl) and declaration.is_global:
            register = self.temps.alloc()
            if isinstance(declaration.var_type, ast.ArrayType):
                self.fb.la(register, declaration.name)
            else:
                self.fb.la(register, declaration.name)
                self.fb.load(register, register, 0)
            return _Value(register=register, owned=True)
        raise CodegenError(f"cannot generate access to {expr.name!r}")

    # ------------------------------------------------------------------ #
    def _element_size(self, base_type: Optional[ast.Type]) -> int:
        return WORD_SIZE

    def _emit_address(self, expr: ast.Expr) -> Tuple[_Value, bool]:
        """Produce a register holding the address of an lvalue expression.

        Returns ``(address value, element is float)``.
        """
        if isinstance(expr, ast.Identifier):
            declaration = expr.decl
            home = self._home_of(declaration)
            is_float = ast.type_is_float(expr.ctype)
            if home is not None:
                if home.in_register:
                    raise CodegenError(
                        f"cannot take the address of register variable {expr.name!r}"
                    )
                register = self.temps.alloc()
                self.fb.add(register, SP, home.stack_offset)
                return _Value(register=register, owned=True), is_float
            if isinstance(declaration, ast.VarDecl) and declaration.is_global:
                register = self.temps.alloc()
                self.fb.la(register, declaration.name)
                return _Value(register=register, owned=True), is_float
            if isinstance(declaration, ast.FunctionDef):
                register = self.temps.alloc()
                self.fb.la(register, declaration.name)
                return _Value(register=register, owned=True), False
            raise CodegenError(f"cannot take the address of {expr.name!r}")
        if isinstance(expr, ast.UnaryExpr) and expr.op == "*":
            pointer = self._emit_expr(expr.operand)
            register = self._materialise(pointer)
            pointer.register = register
            return pointer, ast.type_is_float(expr.ctype)
        if isinstance(expr, ast.IndexExpr):
            base_value: _Value
            base = expr.base
            base_value = self._emit_expr(base)
            base_register = self._materialise(base_value)
            index_value = self._emit_expr(expr.index)
            result = self.temps.alloc()
            if index_value.is_immediate:
                self.fb.mov(result, int(index_value.immediate) * WORD_SIZE)
            else:
                self.fb.mul(result, index_value.register, WORD_SIZE)
            self.fb.add(result, base_register, result)
            self._release(base_value)
            self._release(index_value)
            return _Value(register=result, owned=True), ast.type_is_float(expr.ctype)
        raise CodegenError(f"expression is not an lvalue: {type(expr).__name__}")

    # ------------------------------------------------------------------ #
    def _emit_unary(self, expr: ast.UnaryExpr) -> _Value:
        op = expr.op
        if op == "cast":
            value = self._emit_expr(expr.operand)
            source_float = self._is_float_expr(expr.operand)
            target_float = ast.type_is_float(expr.ctype)
            if source_float == target_float:
                return value
            register = self.temps.alloc()
            if target_float:
                self.fb.itof(register, self._materialise(value))
            else:
                self.fb.ftoi(register, self._materialise(value))
            self._release(value)
            return _Value(register=register, owned=True)
        if op in ("++", "--"):
            return self._emit_incdec(expr)
        if op == "&":
            address, _ = self._emit_address(expr.operand)
            return address
        if op == "*":
            pointer = self._emit_expr(expr.operand)
            register = self.temps.alloc()
            self.fb.load(register, self._materialise(pointer), 0)
            self._release(pointer)
            return _Value(register=register, owned=True)
        value = self._emit_expr(expr.operand)
        register = self.temps.alloc()
        operand = value.operand()
        if op == "-":
            if self._is_float_expr(expr.operand):
                self.fb.fneg(register, operand)
            else:
                self.fb.neg(register, operand)
        elif op == "~":
            self.fb.not_(register, operand)
        elif op == "!":
            self.fb.seq(register, operand, 0)
        else:
            raise CodegenError(f"unhandled unary operator {op!r}")
        self._release(value)
        return _Value(register=register, owned=True)

    def _emit_incdec(self, expr: ast.UnaryExpr) -> _Value:
        target = expr.operand
        delta = 1 if expr.op == "++" else -1
        if isinstance(target, ast.Identifier):
            home = self._home_of(target.decl)
            if home is not None and home.in_register:
                result = None
                if expr.postfix:
                    result = self.temps.alloc()
                    self.fb.mov(result, home.register)
                self.fb.add(home.register, home.register, delta)
                if expr.postfix:
                    return _Value(register=result, owned=True)
                return _Value(register=home.register, owned=False)
        # Memory-resident target: load, update, store.
        address, _ = self._emit_address(target)
        register = self.temps.alloc()
        self.fb.load(register, address.register, 0)
        old = None
        if expr.postfix:
            old = self.temps.alloc()
            self.fb.mov(old, register)
        self.fb.add(register, register, delta)
        self.fb.store(register, address.register, 0)
        self._release(address)
        if expr.postfix:
            self.temps.release(register)
            return _Value(register=old, owned=True)
        return _Value(register=register, owned=True)

    # ------------------------------------------------------------------ #
    def _emit_binary(self, expr: ast.BinaryExpr) -> _Value:
        op = expr.op
        if op in ("&&", "||"):
            return self._emit_logical(expr)
        if op == ",":
            left = self._emit_expr(expr.left)
            self._release(left)
            return self._emit_expr(expr.right)
        left = self._emit_expr(expr.left)
        right = self._emit_expr(expr.right)
        destination = self.temps.alloc()
        self._emit_binary_op(destination, expr, left, right)
        self._release(left)
        self._release(right)
        return _Value(register=destination, owned=True)

    def _emit_binary_op(
        self, destination: str, expr: ast.BinaryExpr, left: _Value, right: _Value
    ) -> None:
        fb = self.fb
        op = expr.op
        left_float = self._is_float_expr(expr.left)
        right_float = self._is_float_expr(expr.right)
        use_float = left_float or right_float
        left_unsigned = isinstance(expr.left.ctype, ast.ScalarType) and expr.left.ctype.is_unsigned
        right_unsigned = isinstance(expr.right.ctype, ast.ScalarType) and expr.right.ctype.is_unsigned
        unsigned = left_unsigned or right_unsigned

        a = left.operand()
        b = right.operand()

        # Pointer arithmetic: scale the integer side by the element size.
        left_is_pointer = isinstance(expr.left.ctype, (ast.PointerType, ast.ArrayType))
        right_is_pointer = isinstance(expr.right.ctype, (ast.PointerType, ast.ArrayType))
        if op in ("+", "-") and left_is_pointer and not right_is_pointer:
            scaled = self.temps.alloc()
            if right.is_immediate:
                fb.mov(scaled, int(right.immediate) * WORD_SIZE)
            else:
                fb.mul(scaled, b, WORD_SIZE)
            if op == "+":
                fb.add(destination, a, scaled)
            else:
                fb.sub(destination, a, scaled)
            self.temps.release(scaled)
            return
        if op == "+" and right_is_pointer and not left_is_pointer:
            scaled = self.temps.alloc()
            if left.is_immediate:
                fb.mov(scaled, int(left.immediate) * WORD_SIZE)
            else:
                fb.mul(scaled, a, WORD_SIZE)
            fb.add(destination, scaled, b)
            self.temps.release(scaled)
            return

        if use_float:
            float_ops = {
                "+": fb.fadd, "-": fb.fsub, "*": fb.fmul, "/": fb.fdiv,
                "==": fb.fseq, "!=": fb.fsne, "<": fb.fslt, "<=": fb.fsle,
            }
            if op in float_ops:
                float_ops[op](destination, a, b)
                return
            if op == ">":
                fb.fslt(destination, b, a)
                return
            if op == ">=":
                fb.fsle(destination, b, a)
                return
            raise CodegenError(f"operator {op!r} is not defined for float operands")

        integer_ops = {
            "+": fb.add,
            "-": fb.sub,
            "*": fb.mul,
            "/": fb.divu if unsigned else fb.divs,
            "%": fb.remu if unsigned else fb.rems,
            "&": fb.and_,
            "|": fb.or_,
            "^": fb.xor,
            "<<": fb.shl,
            ">>": fb.shr if unsigned else fb.sra,
            "==": fb.seq,
            "!=": fb.sne,
        }
        if op in integer_ops:
            integer_ops[op](destination, a, b)
            return
        if op == "<":
            (fb.sltu if unsigned else fb.slt)(destination, a, b)
            return
        if op == "<=":
            if unsigned:
                fb.sgeu(destination, b, a)
            else:
                fb.sle(destination, a, b)
            return
        if op == ">":
            (fb.sltu if unsigned else fb.slt)(destination, b, a)
            return
        if op == ">=":
            (fb.sgeu if unsigned else fb.sge)(destination, a, b)
            return
        raise CodegenError(f"unhandled binary operator {op!r}")

    def _emit_logical(self, expr: ast.BinaryExpr) -> _Value:
        fb = self.fb
        result = self.temps.alloc()
        short_label = self.parent.fresh_label("sc")
        end_label = self.parent.fresh_label("scend")
        left = self._emit_expr(expr.left)
        left_register = self._materialise(left)
        if expr.op == "&&":
            fb.bf(left_register, short_label)
        else:
            fb.bt(left_register, short_label)
        self._release(left)
        right = self._emit_expr(expr.right)
        right_register = self._materialise(right)
        fb.sne(result, right_register, 0)
        self._release(right)
        fb.br(end_label)
        fb.label(short_label)
        fb.mov(result, 0 if expr.op == "&&" else 1)
        fb.label(end_label)
        fb.nop()
        return _Value(register=result, owned=True)

    # ------------------------------------------------------------------ #
    def _emit_assignment(self, expr: ast.AssignExpr) -> _Value:
        target = expr.target
        value_expr = expr.value

        # Compound assignment: rewrite a op= b into a = a op b.
        if expr.op:
            value_expr = ast.BinaryExpr(
                line=expr.line, op=expr.op, left=target, right=expr.value
            )
            value_expr.ctype = expr.ctype
            # Re-use the operand types computed by the checker.
            value_expr.left.ctype = target.ctype
            value_expr.right.ctype = expr.value.ctype

        if isinstance(target, ast.Identifier):
            home = self._home_of(target.decl)
            if home is not None and home.in_register:
                self._emit_expr_into(home.register, value_expr)
                return _Value(register=home.register, owned=False)
            if home is not None:
                value = self._emit_expr(value_expr)
                register = self._materialise(value)
                self.fb.store(register, SP, home.stack_offset)
                return value
            declaration = target.decl
            if isinstance(declaration, ast.VarDecl) and declaration.is_global:
                value = self._emit_expr(value_expr)
                register = self._materialise(value)
                address = self.temps.alloc()
                self.fb.la(address, declaration.name)
                self.fb.store(register, address, 0)
                self.temps.release(address)
                return value
            raise CodegenError(f"cannot assign to {target.name!r}")

        address, _ = self._emit_address(target)
        value = self._emit_expr(value_expr)
        register = self._materialise(value)
        self.fb.store(register, address.register, 0)
        self._release(address)
        return value

    # ------------------------------------------------------------------ #
    def _emit_call(self, expr: ast.CallExpr) -> _Value:
        fb = self.fb
        callee = expr.callee
        if len(expr.arguments) > len(ARGUMENT_REGISTERS):
            raise CodegenError("calls with more than 8 arguments are not supported")

        direct_name: Optional[str] = None
        if isinstance(callee, ast.Identifier):
            if isinstance(callee.decl, ast.FunctionDef):
                direct_name = callee.decl.name
            elif callee.decl is None:
                direct_name = callee.name   # builtin (malloc, setjmp, ...)
        if direct_name == "malloc" or direct_name == "free":
            self.parent._uses_malloc = True
        if direct_name in ("setjmp", "longjmp"):
            self.parent._uses_setjmp = True

        # Evaluate the callee (for indirect calls) and all arguments into
        # *owned temporaries* — only those have spill slots.
        callee_value: Optional[_Value] = None
        if direct_name is None:
            callee_value = self._to_temp(self._emit_expr(callee))
        argument_values = [
            self._to_temp(self._emit_expr(argument)) for argument in expr.arguments
        ]
        argument_registers = [value.register for value in argument_values]

        # Spill every live temporary to its frame slot (arguments included) so
        # the callee cannot clobber them; then load arguments into r3..rN.
        live = self.temps.live_registers()
        for register in live:
            fb.store(register, SP, self._spill_slot(register))
        for position, register in enumerate(argument_registers):
            fb.load(ARGUMENT_REGISTERS[position], SP, self._spill_slot(register))

        if direct_name is not None:
            fb.call(direct_name)
        else:
            callee_register = callee_value.register
            # The callee address itself may live in a caller-saved temp that the
            # spill/reload sequence above preserved; reload it right before use.
            fb.load(callee_register, SP, self._spill_slot(callee_register))
            fb.icall(callee_register)

        # Free argument and callee temps, grab the result, restore live temps.
        for value in argument_values:
            self._release(value)
        if callee_value is not None:
            self._release(callee_value)
        result = self.temps.alloc()
        if result != "r3":
            fb.mov(result, "r3")
        for register in self.temps.live_registers():
            if register != result:
                fb.load(register, SP, self._spill_slot(register))
        return _Value(register=result, owned=True)

    def _to_temp(self, value: _Value) -> _Value:
        """Ensure the value lives in an *owned* caller-saved temporary."""
        if value.owned and value.register in TEMP_REGISTERS:
            return value
        register = self.temps.alloc()
        if value.is_immediate:
            self.fb.mov(register, value.immediate)
        else:
            self.fb.mov(register, value.register)
        self._release(value)
        return _Value(register=register, owned=True)

    def _spill_slot(self, register: str) -> int:
        index = TEMP_REGISTERS.index(register)
        return self.spill_base + index * WORD_SIZE


# --------------------------------------------------------------------------- #
# Convenience entry points
# --------------------------------------------------------------------------- #
def compile_unit(unit: ast.CompilationUnit, entry: str = "main") -> Program:
    """Compile a parsed + type-checked unit into a laid-out IR program."""
    check_types(unit)
    return CodeGenerator(unit, entry=entry).generate()


def compile_source(source: str, entry: str = "main") -> Program:
    """Compile mini-C source text into a laid-out IR program."""
    unit = parse_source(source)
    return compile_unit(unit, entry=entry)
