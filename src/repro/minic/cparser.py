"""Recursive-descent parser for mini-C.

The accepted language is a practical subset of C89 sufficient for the code
patterns the paper discusses: scalar types (``int``, ``unsigned``, ``float``,
``void``), pointers, one-dimensional arrays, all structured control flow plus
``goto``/labels, function definitions with optional variadic ``...``
parameters, function calls (including calls through function-pointer
variables), compound assignment and increment/decrement operators, and simple
casts.  Preprocessor lines are skipped by the lexer.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.minic import ast
from repro.minic.lexer import Token, TokenKind, tokenize

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

#: Binary operator precedence levels, weakest first.
_BINARY_LEVELS: List[List[str]] = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", ">", "<=", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class _Parser:
    def __init__(self, tokens: List[Token], source_name: str):
        self.tokens = tokens
        self.position = 0
        self.source_name = source_name

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.position += 1
        return token

    def expect_punct(self, symbol: str) -> Token:
        if not self.current.is_punct(symbol):
            raise ParseError(
                f"expected {symbol!r}, found {self.current.text!r}",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected an identifier, found {self.current.text!r}",
                self.current.line,
                self.current.column,
            )
        return self.advance()

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.current.line, self.current.column)

    # ------------------------------------------------------------------ #
    # Types
    # ------------------------------------------------------------------ #
    def at_type_specifier(self) -> bool:
        return self.current.is_keyword(
            "int", "unsigned", "float", "void", "const", "static", "volatile"
        )

    def parse_type_specifier(self) -> ast.Type:
        # Skip qualifiers / storage classes (they do not affect code generation
        # or the implemented guideline rules).
        while self.current.is_keyword("const", "static", "volatile"):
            self.advance()
        token = self.current
        if token.is_keyword("unsigned"):
            self.advance()
            if self.current.is_keyword("int"):
                self.advance()
            return ast.UNSIGNED
        if token.is_keyword("int"):
            self.advance()
            return ast.INT
        if token.is_keyword("float"):
            self.advance()
            return ast.FLOAT
        if token.is_keyword("void"):
            self.advance()
            return ast.VOID
        raise self.error(f"expected a type name, found {token.text!r}")

    def parse_pointers(self, base: ast.Type) -> ast.Type:
        result = base
        while self.current.is_punct("*"):
            self.advance()
            while self.current.is_keyword("const", "volatile"):
                self.advance()
            result = ast.PointerType(result)
        return result

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #
    def parse_unit(self) -> ast.CompilationUnit:
        unit = ast.CompilationUnit(source_name=self.source_name)
        while self.current.kind is not TokenKind.EOF:
            if self.current.is_punct(";"):
                self.advance()
                continue
            self.parse_external_declaration(unit)
        return unit

    def parse_external_declaration(self, unit: ast.CompilationUnit) -> None:
        line = self.current.line
        base = self.parse_type_specifier()
        declared = self.parse_pointers(base)
        name_token = self.expect_ident()

        if self.current.is_punct("("):
            unit.functions.append(self.parse_function(declared, name_token, line))
            return

        # Global variable declaration(s).
        while True:
            var_type = declared
            if self.current.is_punct("["):
                self.advance()
                if self.current.kind is not TokenKind.INT:
                    raise self.error("global array sizes must be integer literals")
                length = int(self.advance().value)
                self.expect_punct("]")
                var_type = ast.ArrayType(var_type, length)
            init: Optional[ast.Expr] = None
            if self.current.is_punct("="):
                self.advance()
                init = self.parse_assignment()
            unit.globals.append(
                ast.VarDecl(
                    line=line,
                    name=name_token.text,
                    var_type=var_type,
                    init=init,
                    is_global=True,
                )
            )
            if self.current.is_punct(","):
                self.advance()
                declared = self.parse_pointers(base)
                name_token = self.expect_ident()
                continue
            break
        self.expect_punct(";")

    def parse_function(
        self, return_type: ast.Type, name_token: Token, line: int
    ) -> ast.FunctionDef:
        self.expect_punct("(")
        parameters: List[ast.Parameter] = []
        variadic = False
        if self.current.is_punct(")"):
            pass
        elif self.current.is_keyword("void") and self.peek().is_punct(")"):
            self.advance()
        else:
            while True:
                if self.current.is_punct("..."):
                    self.advance()
                    variadic = True
                    break
                param_line = self.current.line
                param_base = self.parse_type_specifier()
                param_type = self.parse_pointers(param_base)
                param_name = ""
                if self.current.kind is TokenKind.IDENT:
                    param_name = self.advance().text
                if self.current.is_punct("["):
                    self.advance()
                    if self.current.kind is TokenKind.INT:
                        self.advance()
                    self.expect_punct("]")
                    param_type = ast.PointerType(param_type)
                parameters.append(
                    ast.Parameter(name=param_name, param_type=param_type, line=param_line)
                )
                if self.current.is_punct(","):
                    self.advance()
                    continue
                break
        self.expect_punct(")")

        body: Optional[ast.CompoundStmt] = None
        if self.current.is_punct("{"):
            body = self.parse_compound()
        else:
            self.expect_punct(";")
        return ast.FunctionDef(
            name=name_token.text,
            return_type=return_type,
            parameters=parameters,
            variadic=variadic,
            body=body,
            line=line,
        )

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def parse_compound(self) -> ast.CompoundStmt:
        start = self.expect_punct("{")
        block = ast.CompoundStmt(line=start.line)
        while not self.current.is_punct("}"):
            if self.current.kind is TokenKind.EOF:
                raise self.error("unterminated block")
            block.statements.append(self.parse_block_item())
        self.expect_punct("}")
        return block

    def parse_block_item(self) -> ast.Node:
        if self.at_type_specifier():
            return self.parse_local_declaration()
        return self.parse_statement()

    def parse_local_declaration(self) -> ast.Stmt:
        line = self.current.line
        base = self.parse_type_specifier()
        declarations: List[ast.VarDecl] = []
        while True:
            var_type = self.parse_pointers(base)
            name = self.expect_ident().text
            if self.current.is_punct("["):
                self.advance()
                if self.current.kind is not TokenKind.INT:
                    raise self.error("local array sizes must be integer literals")
                length = int(self.advance().value)
                self.expect_punct("]")
                var_type = ast.ArrayType(var_type, length)
            init: Optional[ast.Expr] = None
            if self.current.is_punct("="):
                self.advance()
                init = self.parse_assignment()
            declarations.append(
                ast.VarDecl(line=line, name=name, var_type=var_type, init=init)
            )
            if self.current.is_punct(","):
                self.advance()
                continue
            break
        self.expect_punct(";")
        if len(declarations) == 1:
            return declarations[0]
        block = ast.CompoundStmt(line=line)
        block.statements.extend(declarations)
        return block

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        line = token.line

        if token.is_punct("{"):
            return self.parse_compound()
        if token.is_keyword("if"):
            return self.parse_if()
        if token.is_keyword("while"):
            return self.parse_while()
        if token.is_keyword("do"):
            return self.parse_do_while()
        if token.is_keyword("for"):
            return self.parse_for()
        if token.is_keyword("return"):
            self.advance()
            value = None if self.current.is_punct(";") else self.parse_expression()
            self.expect_punct(";")
            return ast.ReturnStmt(line=line, value=value)
        if token.is_keyword("break"):
            self.advance()
            self.expect_punct(";")
            return ast.BreakStmt(line=line)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_punct(";")
            return ast.ContinueStmt(line=line)
        if token.is_keyword("goto"):
            self.advance()
            label = self.expect_ident().text
            self.expect_punct(";")
            return ast.GotoStmt(line=line, label=label)
        if token.kind is TokenKind.IDENT and self.peek().is_punct(":"):
            name = self.advance().text
            self.advance()  # ':'
            statement = (
                ast.EmptyStmt(line=line)
                if self.current.is_punct("}")
                else self.parse_statement()
            )
            return ast.LabelStmt(line=line, label=name, statement=statement)
        if token.is_punct(";"):
            self.advance()
            return ast.EmptyStmt(line=line)

        expr = self.parse_expression()
        self.expect_punct(";")
        return ast.ExprStmt(line=line, expr=expr)

    def parse_if(self) -> ast.IfStmt:
        line = self.advance().line
        self.expect_punct("(")
        condition = self.parse_expression()
        self.expect_punct(")")
        then_branch = self.parse_statement()
        else_branch = None
        if self.current.is_keyword("else"):
            self.advance()
            else_branch = self.parse_statement()
        return ast.IfStmt(
            line=line, condition=condition, then_branch=then_branch, else_branch=else_branch
        )

    def parse_while(self) -> ast.WhileStmt:
        line = self.advance().line
        self.expect_punct("(")
        condition = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.WhileStmt(line=line, condition=condition, body=body)

    def parse_do_while(self) -> ast.DoWhileStmt:
        line = self.advance().line
        body = self.parse_statement()
        if not self.current.is_keyword("while"):
            raise self.error("expected 'while' after do-while body")
        self.advance()
        self.expect_punct("(")
        condition = self.parse_expression()
        self.expect_punct(")")
        self.expect_punct(";")
        return ast.DoWhileStmt(line=line, body=body, condition=condition)

    def parse_for(self) -> ast.ForStmt:
        line = self.advance().line
        self.expect_punct("(")
        init: Optional[ast.Node] = None
        if not self.current.is_punct(";"):
            if self.at_type_specifier():
                init = self.parse_local_declaration()
            else:
                expr = self.parse_expression()
                self.expect_punct(";")
                init = ast.ExprStmt(line=line, expr=expr)
        else:
            self.advance()
        condition = None
        if not self.current.is_punct(";"):
            condition = self.parse_expression()
        self.expect_punct(";")
        step = None
        if not self.current.is_punct(")"):
            step = self.parse_expression()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.ForStmt(line=line, init=init, condition=condition, step=step, body=body)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.current.is_punct(","):
            self.advance()
            right = self.parse_assignment()
            expr = ast.BinaryExpr(line=expr.line, op=",", left=expr, right=right)
        return expr

    def parse_assignment(self) -> ast.Expr:
        target = self.parse_binary(0)
        if self.current.kind is TokenKind.PUNCT and self.current.text in _ASSIGN_OPS:
            op_token = self.advance()
            value = self.parse_assignment()
            op = op_token.text[:-1] if op_token.text != "=" else ""
            return ast.AssignExpr(line=op_token.line, op=op, target=target, value=value)
        if self.current.is_punct("?"):
            raise self.error("the conditional operator '?:' is not supported by mini-C")
        return target

    def parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        operators = _BINARY_LEVELS[level]
        while self.current.kind is TokenKind.PUNCT and self.current.text in operators:
            op_token = self.advance()
            right = self.parse_binary(level + 1)
            left = ast.BinaryExpr(
                line=op_token.line, op=op_token.text, left=left, right=right
            )
        return left

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if token.is_punct("+", "-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            if token.text == "+":
                return operand
            return ast.UnaryExpr(line=token.line, op=token.text, operand=operand)
        if token.is_punct("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.UnaryExpr(line=token.line, op=token.text, operand=operand)
        if token.is_keyword("sizeof"):
            self.advance()
            self.expect_punct("(")
            if self.at_type_specifier():
                self.parse_pointers(self.parse_type_specifier())
            else:
                self.parse_expression()
            self.expect_punct(")")
            return ast.IntLiteral(line=token.line, value=4)
        # Cast: '(' type ')' unary
        if token.is_punct("(") and self.peek().is_keyword(
            "int", "unsigned", "float", "void", "const"
        ):
            self.advance()
            cast_type = self.parse_pointers(self.parse_type_specifier())
            self.expect_punct(")")
            operand = self.parse_unary()
            cast = ast.UnaryExpr(line=token.line, op="cast", operand=operand)
            cast.ctype = cast_type
            return cast
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.current
            if token.is_punct("["):
                self.advance()
                index = self.parse_expression()
                self.expect_punct("]")
                expr = ast.IndexExpr(line=token.line, base=expr, index=index)
            elif token.is_punct("("):
                self.advance()
                arguments: List[ast.Expr] = []
                if not self.current.is_punct(")"):
                    while True:
                        arguments.append(self.parse_assignment())
                        if self.current.is_punct(","):
                            self.advance()
                            continue
                        break
                self.expect_punct(")")
                expr = ast.CallExpr(line=token.line, callee=expr, arguments=arguments)
            elif token.is_punct("++", "--"):
                self.advance()
                expr = ast.UnaryExpr(
                    line=token.line, op=token.text, operand=expr, postfix=True
                )
            else:
                break
        return expr

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind is TokenKind.INT:
            self.advance()
            return ast.IntLiteral(line=token.line, value=int(token.value))
        if token.kind is TokenKind.FLOAT:
            self.advance()
            return ast.FloatLiteral(line=token.line, value=float(token.value))
        if token.kind is TokenKind.IDENT:
            self.advance()
            return ast.Identifier(line=token.line, name=token.text)
        if token.is_punct("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_punct(")")
            return expr
        raise self.error(f"unexpected token {token.text!r} in expression")


def parse_source(source: str, source_name: str = "<memory>") -> ast.CompilationUnit:
    """Parse mini-C source text into a :class:`~repro.minic.ast.CompilationUnit`."""
    tokens = tokenize(source)
    return _Parser(tokens, source_name).parse_unit()
