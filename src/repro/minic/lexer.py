"""Tokenizer for the mini-C language."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ParseError

KEYWORDS = {
    "int",
    "unsigned",
    "float",
    "void",
    "if",
    "else",
    "while",
    "do",
    "for",
    "return",
    "break",
    "continue",
    "goto",
    "sizeof",
    "const",
    "volatile",
    "static",
}


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    PUNCT = "punct"
    STRING = "string"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int
    value: object = None

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *symbols: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in symbols

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}:{self.text!r}@{self.line}"


#: Multi-character punctuation, longest first so the scanner is greedy.
_PUNCTUATION = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
]

_FLOAT_RE = re.compile(r"\d+\.\d*([eE][-+]?\d+)?[fF]?|\d+[eE][-+]?\d+[fF]?|\d+\.\d*")
_HEX_RE = re.compile(r"0[xX][0-9a-fA-F]+[uUlL]*")
_INT_RE = re.compile(r"\d+[uUlL]*")
_IDENT_RE = re.compile(r"[A-Za-z_]\w*")
_STRING_RE = re.compile(r'"([^"\\]|\\.)*"')


def tokenize(source: str) -> List[Token]:
    """Tokenize a mini-C source string; raises :class:`ParseError` on bad input."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> ParseError:
        return ParseError(message, line, column)

    while index < length:
        char = source[index]

        # Whitespace
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue

        # Comments
        if source.startswith("//", index):
            end = source.find("\n", index)
            index = length if end < 0 else end
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[index : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue

        # Preprocessor-style lines are ignored (the workloads use none, but
        # realistic sources may carry #include / #define headers).
        if char == "#" and (column == 1):
            end = source.find("\n", index)
            index = length if end < 0 else end
            continue

        # String literals (only used in comments/asserts of workloads).
        match = _STRING_RE.match(source, index)
        if match:
            text = match.group(0)
            tokens.append(Token(TokenKind.STRING, text, line, column, text[1:-1]))
            index = match.end()
            column += len(text)
            continue

        # Numbers: float before int so "1.5" is not split.
        match = _FLOAT_RE.match(source, index)
        if match and ("." in match.group(0) or "e" in match.group(0).lower()):
            text = match.group(0)
            tokens.append(
                Token(TokenKind.FLOAT, text, line, column, float(text.rstrip("fF")))
            )
            index = match.end()
            column += len(text)
            continue
        match = _HEX_RE.match(source, index)
        if match:
            text = match.group(0)
            tokens.append(
                Token(TokenKind.INT, text, line, column, int(text.rstrip("uUlL"), 16))
            )
            index = match.end()
            column += len(text)
            continue
        match = _INT_RE.match(source, index)
        if match:
            text = match.group(0)
            tokens.append(
                Token(TokenKind.INT, text, line, column, int(text.rstrip("uUlL")))
            )
            index = match.end()
            column += len(text)
            continue

        # Identifiers / keywords
        match = _IDENT_RE.match(source, index)
        if match:
            text = match.group(0)
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, column))
            index = match.end()
            column += len(text)
            continue

        # Punctuation
        for symbol in _PUNCTUATION:
            if source.startswith(symbol, index):
                tokens.append(Token(TokenKind.PUNCT, symbol, line, column))
                index += len(symbol)
                column += len(symbol)
                break
        else:
            raise error(f"unexpected character {char!r}")

    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
