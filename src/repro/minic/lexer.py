"""Tokenizer for the mini-C language."""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ParseError

KEYWORDS = {
    "int",
    "unsigned",
    "float",
    "void",
    "if",
    "else",
    "while",
    "do",
    "for",
    "return",
    "break",
    "continue",
    "goto",
    "sizeof",
    "const",
    "volatile",
    "static",
}


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    FLOAT = "float"
    PUNCT = "punct"
    STRING = "string"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int
    value: object = None

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text in names

    def is_punct(self, *symbols: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text in symbols

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind.value}:{self.text!r}@{self.line}"


#: Multi-character punctuation, longest first so the scanner is greedy.
_PUNCTUATION = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":", ".",
]

#: One master scanner: every lexeme class as a named alternative, tried in the
#: order of the original hand-rolled loop (comments, strings, float before
#: int, identifiers, then punctuation longest-first).  A single ``match`` call
#: per token replaces the per-character probing of several separate patterns.
_MASTER_RE = re.compile(
    "|".join(
        [
            r"(?P<ws>[ \t\r]+)",
            r"(?P<nl>\n)",
            r"(?P<linecomment>//[^\n]*)",
            r"(?P<blockcomment>/\*(?:[^*]|\*(?!/))*\*/)",
            r"(?P<badcomment>/\*)",
            r'(?P<string>"(?:[^"\\]|\\.)*")',
            r"(?P<float>\d+\.\d*(?:[eE][-+]?\d+)?[fF]?|\d+[eE][-+]?\d+[fF]?)",
            r"(?P<hex>0[xX][0-9a-fA-F]+[uUlL]*)",
            r"(?P<int>\d+[uUlL]*)",
            r"(?P<ident>[A-Za-z_]\w*)",
            r"(?P<punct>" + "|".join(re.escape(p) for p in _PUNCTUATION) + ")",
        ]
    )
)

_KEYWORD = TokenKind.KEYWORD
_IDENT = TokenKind.IDENT
_INT = TokenKind.INT
_FLOAT = TokenKind.FLOAT
_PUNCT = TokenKind.PUNCT
_STRING = TokenKind.STRING


def tokenize(source: str) -> List[Token]:
    """Tokenize a mini-C source string; raises :class:`ParseError` on bad input."""
    tokens: List[Token] = []
    append = tokens.append
    match_at = _MASTER_RE.match
    line = 1
    column = 1
    index = 0
    length = len(source)

    while index < length:
        # Preprocessor-style lines are ignored (the workloads use none, but
        # realistic sources may carry #include / #define headers).
        if column == 1 and source[index] == "#":
            end = source.find("\n", index)
            index = length if end < 0 else end
            continue

        match = match_at(source, index)
        if match is None:
            raise ParseError(
                f"unexpected character {source[index]!r}", line, column
            )
        kind = match.lastgroup
        text = match.group()
        index = match.end()

        if kind == "ws":
            column += len(text)
        elif kind == "nl":
            line += 1
            column = 1
        elif kind == "ident":
            append(
                Token(
                    _KEYWORD if text in KEYWORDS else _IDENT,
                    text,
                    line,
                    column,
                )
            )
            column += len(text)
        elif kind == "punct":
            append(Token(_PUNCT, text, line, column))
            column += len(text)
        elif kind == "int":
            append(Token(_INT, text, line, column, int(text.rstrip("uUlL"))))
            column += len(text)
        elif kind == "float":
            append(Token(_FLOAT, text, line, column, float(text.rstrip("fF"))))
            column += len(text)
        elif kind == "hex":
            append(Token(_INT, text, line, column, int(text.rstrip("uUlL"), 16)))
            column += len(text)
        elif kind == "linecomment":
            column += len(text)
        elif kind == "blockcomment":
            newlines = text.count("\n")
            if newlines:
                line += newlines
                column = len(text) - text.rfind("\n")
            else:
                column += len(text)
        elif kind == "string":
            append(Token(_STRING, text, line, column, text[1:-1]))
            column += len(text)
        else:  # badcomment
            raise ParseError("unterminated block comment", line, column)

    append(Token(TokenKind.EOF, "", line, column))
    return tokens
