"""Name resolution and type checking for mini-C.

The checker is deliberately permissive (it accepts everything a C compiler
would warn about but still compile) — its job is to

* resolve every :class:`~repro.minic.ast.Identifier` to its declaration,
* compute the C type of every expression (``ctype``), which the code generator
  needs to select integer vs. float vs. unsigned instructions and to scale
  pointer arithmetic,
* mark variables whose address is taken (they must live in memory),
* verify call arity (except for variadic functions) and ``goto`` label
  existence.

Calls to the builtin functions ``malloc``, ``free``, ``setjmp`` and ``longjmp``
are accepted without declarations; the code generator synthesises their
bodies.  (Their *presence* is what MISRA rules 20.4 / 20.7 flag.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TypeCheckError
from repro.minic import ast

#: Builtin functions the code generator knows how to synthesise.
BUILTIN_FUNCTIONS: Dict[str, ast.FunctionType] = {
    "malloc": ast.FunctionType(ast.PointerType(ast.INT), (ast.UNSIGNED,)),
    "free": ast.FunctionType(ast.VOID, (ast.PointerType(ast.INT),)),
    "setjmp": ast.FunctionType(ast.INT, (ast.PointerType(ast.INT),)),
    "longjmp": ast.FunctionType(ast.VOID, (ast.PointerType(ast.INT), ast.INT)),
}


@dataclass
class _Scope:
    parent: Optional["_Scope"] = None
    symbols: Dict[str, object] = field(default_factory=dict)

    def define(self, name: str, declaration: object) -> None:
        self.symbols[name] = declaration

    def lookup(self, name: str) -> Optional[object]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class TypeChecker:
    """Resolves names and computes expression types for one compilation unit."""

    def __init__(self, unit: ast.CompilationUnit):
        self.unit = unit
        self.globals = _Scope()
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.errors: List[str] = []

    # ------------------------------------------------------------------ #
    def check(self) -> ast.CompilationUnit:
        for declaration in self.unit.globals:
            if declaration.name in self.globals.symbols:
                raise TypeCheckError(
                    f"duplicate global {declaration.name!r}", declaration.line
                )
            self.globals.define(declaration.name, declaration)
            if declaration.init is not None:
                self._check_expr(declaration.init, self.globals)

        for function in self.unit.functions:
            existing = self.functions.get(function.name)
            if existing is not None and not existing.is_prototype and not function.is_prototype:
                raise TypeCheckError(
                    f"duplicate function definition {function.name!r}", function.line
                )
            if existing is None or existing.is_prototype:
                self.functions[function.name] = function
            self.globals.define(function.name, self.functions[function.name])

        for function in self.unit.defined_functions():
            self._check_function(function)
        return self.unit

    # ------------------------------------------------------------------ #
    def _check_function(self, function: ast.FunctionDef) -> None:
        scope = _Scope(parent=self.globals)
        for parameter in function.parameters:
            if parameter.name:
                scope.define(parameter.name, parameter)
        labels = self._collect_labels(function.body)
        self._check_stmt(function.body, scope, function, labels)

    def _collect_labels(self, body: Optional[ast.Stmt]) -> Dict[str, ast.LabelStmt]:
        labels: Dict[str, ast.LabelStmt] = {}
        if body is None:
            return labels
        for node in ast.walk(body):
            if isinstance(node, ast.LabelStmt):
                if node.label in labels:
                    raise TypeCheckError(f"duplicate label {node.label!r}", node.line)
                labels[node.label] = node
        return labels

    # ------------------------------------------------------------------ #
    def _check_stmt(
        self,
        statement: Optional[ast.Stmt],
        scope: _Scope,
        function: ast.FunctionDef,
        labels: Dict[str, ast.LabelStmt],
    ) -> None:
        if statement is None:
            return
        if isinstance(statement, ast.CompoundStmt):
            inner = _Scope(parent=scope)
            for item in statement.statements:
                if isinstance(item, ast.VarDecl):
                    self._check_local(item, inner)
                elif isinstance(item, ast.Stmt):
                    self._check_stmt(item, inner, function, labels)
                else:
                    self._check_expr(item, inner)
            return
        if isinstance(statement, ast.VarDecl):
            self._check_local(statement, scope)
            return
        if isinstance(statement, ast.ExprStmt):
            if statement.expr is not None:
                self._check_expr(statement.expr, scope)
            return
        if isinstance(statement, ast.IfStmt):
            self._check_expr(statement.condition, scope)
            self._check_stmt(statement.then_branch, scope, function, labels)
            self._check_stmt(statement.else_branch, scope, function, labels)
            return
        if isinstance(statement, ast.WhileStmt):
            self._check_expr(statement.condition, scope)
            self._check_stmt(statement.body, scope, function, labels)
            return
        if isinstance(statement, ast.DoWhileStmt):
            self._check_stmt(statement.body, scope, function, labels)
            self._check_expr(statement.condition, scope)
            return
        if isinstance(statement, ast.ForStmt):
            inner = _Scope(parent=scope)
            if isinstance(statement.init, ast.VarDecl):
                self._check_local(statement.init, inner)
            elif isinstance(statement.init, ast.ExprStmt) and statement.init.expr is not None:
                self._check_expr(statement.init.expr, inner)
            elif isinstance(statement.init, ast.CompoundStmt):
                self._check_stmt(statement.init, inner, function, labels)
            if statement.condition is not None:
                self._check_expr(statement.condition, inner)
            if statement.step is not None:
                self._check_expr(statement.step, inner)
            self._check_stmt(statement.body, inner, function, labels)
            return
        if isinstance(statement, ast.ReturnStmt):
            if statement.value is not None:
                self._check_expr(statement.value, scope)
            return
        if isinstance(statement, ast.GotoStmt):
            if statement.label not in labels:
                raise TypeCheckError(
                    f"goto to undefined label {statement.label!r}", statement.line
                )
            return
        if isinstance(statement, ast.LabelStmt):
            self._check_stmt(statement.statement, scope, function, labels)
            return
        if isinstance(statement, (ast.BreakStmt, ast.ContinueStmt, ast.EmptyStmt)):
            return
        raise TypeCheckError(f"unhandled statement {type(statement).__name__}", statement.line)

    def _check_local(self, declaration: ast.VarDecl, scope: _Scope) -> None:
        scope.define(declaration.name, declaration)
        if isinstance(declaration.var_type, ast.ArrayType):
            declaration.address_taken = True
        if declaration.init is not None:
            self._check_expr(declaration.init, scope)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> ast.Type:
        result = self._infer(expr, scope)
        expr.ctype = result
        return result

    def _infer(self, expr: ast.Expr, scope: _Scope) -> ast.Type:
        if isinstance(expr, ast.IntLiteral):
            return ast.INT
        if isinstance(expr, ast.FloatLiteral):
            return ast.FLOAT
        if isinstance(expr, ast.Identifier):
            declaration = scope.lookup(expr.name)
            if declaration is None:
                raise TypeCheckError(f"undeclared identifier {expr.name!r}", expr.line)
            expr.decl = declaration
            if isinstance(declaration, ast.VarDecl):
                return declaration.var_type
            if isinstance(declaration, ast.Parameter):
                return declaration.param_type
            if isinstance(declaration, ast.FunctionDef):
                return declaration.function_type()
            raise TypeCheckError(f"cannot use {expr.name!r} in an expression", expr.line)
        if isinstance(expr, ast.UnaryExpr):
            return self._infer_unary(expr, scope)
        if isinstance(expr, ast.BinaryExpr):
            return self._infer_binary(expr, scope)
        if isinstance(expr, ast.AssignExpr):
            target_type = self._check_expr(expr.target, scope)
            self._check_expr(expr.value, scope)
            return target_type
        if isinstance(expr, ast.CallExpr):
            return self._infer_call(expr, scope)
        if isinstance(expr, ast.IndexExpr):
            base_type = self._check_expr(expr.base, scope)
            self._check_expr(expr.index, scope)
            if isinstance(base_type, ast.ArrayType):
                return base_type.element
            if isinstance(base_type, ast.PointerType):
                return base_type.pointee
            raise TypeCheckError("indexing a non-array, non-pointer value", expr.line)
        raise TypeCheckError(f"unhandled expression {type(expr).__name__}", expr.line)

    def _infer_unary(self, expr: ast.UnaryExpr, scope: _Scope) -> ast.Type:
        if expr.op == "cast":
            self._check_expr(expr.operand, scope)
            return expr.ctype or ast.INT
        operand_type = self._check_expr(expr.operand, scope)
        if expr.op == "&":
            target = expr.operand
            if isinstance(target, ast.Identifier) and isinstance(target.decl, ast.VarDecl):
                target.decl.address_taken = True
            if isinstance(target, ast.Identifier) and isinstance(target.decl, ast.FunctionDef):
                return ast.PointerType(target.decl.function_type())
            return ast.PointerType(operand_type)
        if expr.op == "*":
            if isinstance(operand_type, ast.PointerType):
                return operand_type.pointee
            if isinstance(operand_type, ast.ArrayType):
                return operand_type.element
            raise TypeCheckError("dereferencing a non-pointer value", expr.line)
        if expr.op == "!":
            return ast.INT
        if expr.op in ("++", "--"):
            return operand_type
        if expr.op == "~":
            return operand_type if isinstance(operand_type, ast.ScalarType) else ast.INT
        if expr.op == "-":
            return operand_type
        return operand_type

    def _infer_binary(self, expr: ast.BinaryExpr, scope: _Scope) -> ast.Type:
        left = self._check_expr(expr.left, scope)
        right = self._check_expr(expr.right, scope)
        op = expr.op
        if op == ",":
            return right
        if op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return ast.INT
        # Pointer arithmetic keeps the pointer type.
        if isinstance(left, (ast.PointerType, ast.ArrayType)) and op in ("+", "-"):
            if isinstance(right, (ast.PointerType, ast.ArrayType)) and op == "-":
                return ast.INT
            return left if isinstance(left, ast.PointerType) else ast.PointerType(
                left.element
            )
        if isinstance(right, (ast.PointerType, ast.ArrayType)) and op == "+":
            return right if isinstance(right, ast.PointerType) else ast.PointerType(
                right.element
            )
        if ast.type_is_float(left) or ast.type_is_float(right):
            return ast.FLOAT
        if (isinstance(left, ast.ScalarType) and left.is_unsigned) or (
            isinstance(right, ast.ScalarType) and right.is_unsigned
        ):
            return ast.UNSIGNED
        return ast.INT

    def _infer_call(self, expr: ast.CallExpr, scope: _Scope) -> ast.Type:
        callee = expr.callee
        for argument in expr.arguments:
            self._check_expr(argument, scope)

        if isinstance(callee, ast.Identifier):
            declaration = scope.lookup(callee.name)
            if declaration is None:
                builtin = BUILTIN_FUNCTIONS.get(callee.name)
                if builtin is not None:
                    callee.ctype = builtin
                    return builtin.return_type
                raise TypeCheckError(
                    f"call to undeclared function {callee.name!r}", expr.line
                )
            callee.decl = declaration
            if isinstance(declaration, ast.FunctionDef):
                callee.ctype = declaration.function_type()
                if not declaration.variadic and len(expr.arguments) != len(
                    declaration.parameters
                ):
                    raise TypeCheckError(
                        f"call to {declaration.name!r} with {len(expr.arguments)} "
                        f"arguments, expected {len(declaration.parameters)}",
                        expr.line,
                    )
                return declaration.return_type
            # Calling through a function-pointer variable.
            var_type = (
                declaration.var_type
                if isinstance(declaration, ast.VarDecl)
                else declaration.param_type
                if isinstance(declaration, ast.Parameter)
                else None
            )
            function_type = _as_function_type(var_type)
            if function_type is not None:
                callee.ctype = var_type
                return function_type.return_type
            if isinstance(var_type, ast.PointerType) or (
                isinstance(var_type, ast.ScalarType) and var_type.is_integer
            ):
                # C-style function pointer stored in a plain pointer/integer
                # variable (the event-handler pattern from Section 3.2); the
                # call is accepted and assumed to return int.
                callee.ctype = var_type
                return ast.INT
            raise TypeCheckError(
                f"{callee.name!r} is not a function or function pointer", expr.line
            )

        callee_type = self._check_expr(callee, scope)
        function_type = _as_function_type(callee_type)
        if function_type is None:
            raise TypeCheckError("called object is not a function", expr.line)
        return function_type.return_type


def _as_function_type(candidate: Optional[ast.Type]) -> Optional[ast.FunctionType]:
    if isinstance(candidate, ast.FunctionType):
        return candidate
    if isinstance(candidate, ast.PointerType) and isinstance(
        candidate.pointee, ast.FunctionType
    ):
        return candidate.pointee
    return None


def check_types(unit: ast.CompilationUnit) -> ast.CompilationUnit:
    """Run the type checker in place and return the annotated unit."""
    return TypeChecker(unit).check()
