"""Unified observability layer: tracing, metrics and structured logs.

Three dependency-free (stdlib-only) pillars, shared by the analysis engine,
the summary cache and the server (see docs/observability.md):

* :mod:`repro.obs.trace` — hierarchical spans over monotonic clocks, with a
  process-global tracer that is a no-op until installed.  Trace context
  propagates client → server → worker process over the wire
  (``ServerSubmit.trace``), so one trace covers a job end-to-end; exports
  are Chrome trace-event JSON, viewable in Perfetto.
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and log-scale-bucket histograms, rendered in Prometheus text exposition
  format (``GET /metrics``).  Worker processes ship counter *deltas* back
  to the server, which merges them into its own registry.
* :mod:`repro.obs.logs` — a JSON-lines structured logger threading
  trace/job ids through server request logs and worker lifecycle events.

This package imports nothing from the rest of :mod:`repro` (only the
standard library), so any module — engine, cache, server — can instrument
itself without import cycles.  The bit-identity contract holds throughout:
observability records what the analysis did, it never changes a bound.
"""

from repro.obs import logs, metrics, trace

__all__ = ["logs", "metrics", "trace"]
