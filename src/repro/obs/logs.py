"""JSON-lines structured logging (stdlib only).

One :class:`StructuredLogger` per process, disabled until
:func:`configure` gives it a stream — a disabled ``log()`` call is a single
attribute check, so instrumented paths (HTTP handlers, worker supervisors)
cost nothing in the default configuration.

Each line is one JSON object: ``ts`` (epoch seconds), ``pid``, ``event``,
plus whatever fields the call site supplies — the server threads trace and
job ids through (``trace_id``, ``job_id``), so a log line joins against an
exported trace and against ``GET /v1/jobs/<id>``.  ``None``-valued fields
are dropped rather than serialised, keeping lines greppable.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import IO, Optional

__all__ = ["StructuredLogger", "configure", "get"]


class StructuredLogger:
    """Thread-safe JSON-lines writer; a no-op without a stream."""

    def __init__(self, stream: Optional[IO[str]] = None):
        self.stream = stream
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.stream is not None

    def log(self, event: str, **fields) -> None:
        stream = self.stream
        if stream is None:
            return
        entry = {"ts": round(time.time(), 6), "pid": os.getpid(), "event": event}
        for key, value in fields.items():
            if value is not None:
                entry[key] = value
        line = json.dumps(entry, sort_keys=True, default=str)
        with self._lock:
            try:
                stream.write(line + "\n")
                stream.flush()
            except (OSError, ValueError):
                # A torn log sink (closed file, full disk) must never take
                # a request handler or worker supervisor down with it.
                pass


_GLOBAL = StructuredLogger()


def configure(stream: Optional[IO[str]]) -> StructuredLogger:
    """Point the process logger at a stream (``None`` disables it)."""
    _GLOBAL.stream = stream
    return _GLOBAL


def get() -> StructuredLogger:
    return _GLOBAL
