"""Process-wide metrics: counters, gauges, log-scale histograms (stdlib only).

Metrics are always on — an increment is one dict update under a per-metric
lock, the same order of cost as the plain integer counters the engine
already kept — and are registered at import time by the module that owns
them, so the registry looks identical in the server process and in every
worker process.  That symmetry is what makes worker shipping trivial: a
worker snapshots the registry (:meth:`MetricsRegistry.dump`) around a job,
ships the elementwise :func:`diff`, and the server :meth:`~MetricsRegistry.
merge`\\ s the delta into its own registry by metric name.

Rendering follows the Prometheus text exposition format 0.0.4 (``# HELP`` /
``# TYPE`` headers, ``_bucket{le=...}``/``_sum``/``_count`` histogram
series), which is what ``GET /metrics`` serves.  :func:`parse_exposition`
is the matching reader used by tests and the CI scrape check.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "diff",
    "parse_exposition",
]

#: Default histogram buckets: log-scale, three per decade, 100 µs … 100 s.
#: Fixed (never configurable per process) so bucket series from different
#: processes and PRs always line up.
DEFAULT_BUCKETS = tuple(round(10.0 ** (exp / 3.0), 10) for exp in range(-12, 7))


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(names: Tuple[str, ...], values: Tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Metric:
    """Shared bookkeeping: labelled samples under one lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: Dict[tuple, object] = {}
        if not self.labelnames:
            # Unlabelled metrics expose their series from birth, so scrapes
            # (and the CI presence check) see them before the first event.
            self._values[()] = self._zero()

    def _zero(self):
        return 0.0

    def _key(self, labels: Dict[str, str]) -> tuple:
        if not self.labelnames:
            return ()
        return tuple(str(labels.get(name, "")) for name in self.labelnames)

    # -- cross-process shipping ---------------------------------------- #
    def _dump_samples(self) -> Dict[str, object]:
        with self._lock:
            return {
                json.dumps(list(key)): self._copy_sample(value)
                for key, value in self._values.items()
            }

    def _copy_sample(self, value):
        return value

    def _merge_sample(self, key: tuple, value) -> None:
        raise NotImplementedError

    def merge(self, samples: Dict[str, object]) -> None:
        for raw_key, value in samples.items():
            key = tuple(json.loads(raw_key))
            self._merge_sample(key, value)

    # -- rendering ------------------------------------------------------ #
    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            lines.extend(self._render_sample(key, value))
        return lines

    def _render_sample(self, key: tuple, value) -> List[str]:
        labels = _render_labels(self.labelnames, key)
        return [f"{self.name}{labels} {_format_value(value)}"]


class Counter(_Metric):
    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))

    def _merge_sample(self, key: tuple, value) -> None:
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(value)


class Gauge(_Metric):
    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def value(self, **labels) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))

    def _merge_sample(self, key: tuple, value) -> None:
        # Gauges are point-in-time: a shipped delta would be meaningless, so
        # merges take the latest observation instead of summing.
        with self._lock:
            self._values[key] = float(value)


class Histogram(_Metric):
    """Cumulative-bucket histogram with fixed log-scale bounds."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self.buckets = tuple(sorted(buckets))
        super().__init__(name, help, labelnames)

    def _zero(self):
        # per-bucket counts (non-cumulative) + [sum, count] tail
        return [0.0] * (len(self.buckets) + 1) + [0.0, 0.0]

    def observe(self, value: float, **labels) -> None:
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        key = self._key(labels)
        with self._lock:
            sample = self._values.get(key)
            if sample is None:
                sample = self._zero()
                self._values[key] = sample
            sample[index] += 1
            sample[-2] += value
            sample[-1] += 1

    def _copy_sample(self, value):
        return list(value)

    def _merge_sample(self, key: tuple, value) -> None:
        with self._lock:
            sample = self._values.get(key)
            if sample is None:
                sample = self._zero()
                self._values[key] = sample
            for index, part in enumerate(value):
                sample[index] += float(part)

    def _render_sample(self, key: tuple, value) -> List[str]:
        lines = []
        cumulative = 0.0
        for index, bound in enumerate(self.buckets):
            cumulative += value[index]
            labels = _render_labels(
                self.labelnames + ("le",), key + (f"{bound:g}",)
            )
            lines.append(f"{self.name}_bucket{labels} {_format_value(cumulative)}")
        cumulative += value[len(self.buckets)]
        labels = _render_labels(self.labelnames + ("le",), key + ("+Inf",))
        lines.append(f"{self.name}_bucket{labels} {_format_value(cumulative)}")
        plain = _render_labels(self.labelnames, key)
        lines.append(f"{self.name}_sum{plain} {_format_value(value[-2])}")
        lines.append(f"{self.name}_count{plain} {_format_value(value[-1])}")
        return lines


# --------------------------------------------------------------------------- #
class MetricsRegistry:
    """Name-keyed registry; ``counter``/``gauge``/``histogram`` are idempotent
    get-or-create so repeated imports (and test reloads) never collide."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {metric.kind}"
                    )
                return metric
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames=labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames=labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames=labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """The full Prometheus text exposition (0.0.4)."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def flat_counters(self) -> Dict[str, float]:
        """Counter and gauge samples as a flat ``{series: value}`` dict —
        the compact snapshot merged into the /healthz ServerStats."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        flat: Dict[str, float] = {}
        for metric in metrics:
            if metric.kind not in ("counter", "gauge"):
                continue
            with metric._lock:
                items = sorted(metric._values.items())
            for key, value in items:
                series = metric.name + _render_labels(metric.labelnames, key)
                flat[series] = float(value)
        return flat

    # -- cross-process shipping ---------------------------------------- #
    def dump(self) -> Dict[str, Dict[str, object]]:
        """Raw snapshot of every metric's samples (JSON-safe)."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {metric.name: metric._dump_samples() for metric in metrics}

    def merge(self, delta: Dict[str, Dict[str, object]]) -> None:
        """Fold a worker's :func:`diff` into this registry.  Unknown names
        (version skew between processes) are silently skipped — a delta must
        never crash the supervisor."""
        for name, samples in delta.items():
            metric = self.get(name)
            if metric is not None and samples:
                metric.merge(samples)


def diff(
    before: Dict[str, Dict[str, object]], after: Dict[str, Dict[str, object]]
) -> Dict[str, Dict[str, object]]:
    """Elementwise ``after - before`` of two :meth:`MetricsRegistry.dump`
    snapshots, with zero and empty entries dropped."""
    delta: Dict[str, Dict[str, object]] = {}
    for name, samples in after.items():
        base = before.get(name, {})
        changed: Dict[str, object] = {}
        for key, value in samples.items():
            prior = base.get(key)
            if isinstance(value, list):
                prior_list = prior if isinstance(prior, list) else [0.0] * len(value)
                diffed = [
                    float(part) - float(prior_list[i]) if i < len(prior_list) else float(part)
                    for i, part in enumerate(value)
                ]
                if any(diffed):
                    changed[key] = diffed
            else:
                diffed_value = float(value) - float(prior or 0.0)
                if diffed_value:
                    changed[key] = diffed_value
        if changed:
            delta[name] = changed
    return delta


#: The process-wide registry every instrumented module registers into.
REGISTRY = MetricsRegistry()


# --------------------------------------------------------------------------- #
def parse_exposition(text: str) -> Dict[str, float]:
    """Parse Prometheus text exposition into ``{series: value}``.

    The series key includes the label block verbatim
    (``repro_queue_depth{lane="batch"}``).  Comment and blank lines are
    skipped; a malformed sample line raises ``ValueError`` — the CI scrape
    check relies on that to catch format regressions."""
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        # The value is the last whitespace-separated token; the series name
        # (with its label block, which may contain spaces inside quotes) is
        # everything before it.
        series, _, value = line.rpartition(" ")
        if not series:
            raise ValueError(f"malformed exposition line: {line!r}")
        try:
            samples[series] = float(value)
        except ValueError:
            raise ValueError(f"malformed exposition value: {line!r}") from None
    return samples
