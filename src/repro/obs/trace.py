"""Hierarchical tracing over monotonic clocks (stdlib only).

The model is deliberately small:

* a :class:`Span` is a named ``[start, end)`` interval on
  ``time.monotonic()`` with a trace id, its own span id, an optional parent
  span id, and free-form attributes;
* a :class:`Tracer` collects finished spans and keeps a *per-thread* stack
  of open ones, so nested ``begin``/``end`` pairs parent automatically
  within a thread, while cross-thread (and cross-process) edges are drawn
  with an explicit ``parent`` context dict ``{"trace_id": ..,
  "parent_id": ..}`` — the exact dict that travels in the
  ``ServerSubmit.trace`` wire field;
* exactly one tracer may be *installed* process-wide.  Every instrumented
  call site goes through the module-level :func:`begin`/:func:`end`/
  :func:`span` helpers, which reduce to a single global read and return a
  shared no-op when no tracer is installed — the zero-overhead-off
  contract the analysis hot paths rely on.

``time.monotonic()`` is CLOCK_MONOTONIC on Linux, which is shared across
processes — spans recorded in a worker process land on the same timeline
as the server's, so an end-to-end trace lines up without clock fencing.

Export is Chrome trace-event JSON (``{"traceEvents": [...]}``, complete
duration events, microsecond units), which Perfetto and ``chrome://tracing``
open directly.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "active",
    "begin",
    "chrome_trace_events",
    "end",
    "install",
    "new_trace_id",
    "record",
    "span",
    "validate_chrome",
    "write_chrome_trace",
]

_span_counter = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return os.urandom(8).hex()


def _new_span_id() -> str:
    # pid-prefixed so ids minted in a worker process can never collide with
    # the server's (both sides append into one trace).
    return f"{os.getpid():x}-{next(_span_counter):x}"


class Span:
    """One named interval on the monotonic clock."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start", "end",
                 "pid", "tid", "attrs")

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        start: float,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = 0.0
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.attrs: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    def set(self, key: str, value: Any) -> "Span":
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value
        return self

    def context(self) -> Dict[str, Optional[str]]:
        """The propagation dict: install it as a child's ``parent``."""
        return {"trace_id": self.trace_id, "parent_id": self.span_id}

    @property
    def seconds(self) -> float:
        return max(self.end - self.start, 0.0)

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        return data

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "Span":
        span = cls(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start=data["start"],
        )
        span.end = data.get("end", span.start)
        span.pid = data.get("pid", span.pid)
        span.tid = data.get("tid", span.tid)
        attrs = data.get("attrs")
        if attrs:
            span.attrs = dict(attrs)
        return span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.seconds * 1e3:.3f}ms)"
        )


class _NoopSpan:
    """Returned by :func:`span` when tracing is off; absorbs everything."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def context(self) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context-manager wrapper over one live ``begin``/``end`` pair."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._tracer.end(self._span)


class Tracer:
    """Collects spans; thread-safe, with per-thread open-span stacks."""

    def __init__(self, trace_id: Optional[str] = None):
        #: Default trace id for root spans begun without an explicit parent.
        self.trace_id = trace_id or new_trace_id()
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def begin(
        self,
        name: str,
        parent: Optional[Dict[str, Optional[str]]] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span.  ``parent`` (a :meth:`Span.context` dict) wins over
        the thread's innermost open span; with neither, the span is a root
        on the tracer's own trace id."""
        stack = self._stack()
        if parent is not None:
            trace_id = parent.get("trace_id") or self.trace_id
            parent_id = parent.get("parent_id")
        elif stack:
            top = stack[-1]
            trace_id = top.trace_id
            parent_id = top.span_id
        else:
            trace_id = self.trace_id
            parent_id = None
        span = Span(name, trace_id, _new_span_id(), parent_id, time.monotonic())
        if attrs:
            span.attrs = dict(attrs)
        stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        span.end = time.monotonic()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # out-of-order end (error paths): drop it wherever it sits
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._spans.append(span)
        return span

    def span(self, name: str, parent=None, attrs=None) -> _SpanContext:
        return _SpanContext(self, self.begin(name, parent=parent, attrs=attrs))

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[Dict[str, Optional[str]]] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Record a span measured externally (e.g. a queue wait reconstructed
        at dispatch time) — never touches the open-span stack."""
        if parent is not None:
            trace_id = parent.get("trace_id") or self.trace_id
            parent_id = parent.get("parent_id")
        else:
            trace_id = self.trace_id
            parent_id = None
        span = Span(name, trace_id, _new_span_id(), parent_id, start)
        span.end = end
        if attrs:
            span.attrs = dict(attrs)
        with self._lock:
            self._spans.append(span)
        return span

    # ------------------------------------------------------------------ #
    def add(self, spans: Iterable[Dict[str, Any]]) -> int:
        """Merge serialised spans shipped from another process."""
        parsed = [Span.from_json(data) for data in spans]
        with self._lock:
            self._spans.extend(parsed)
        return len(parsed)

    def spans(self, trace_id: Optional[str] = None) -> List[Span]:
        with self._lock:
            if trace_id is None:
                return list(self._spans)
            return [span for span in self._spans if span.trace_id == trace_id]

    def drain(self, trace_id: Optional[str] = None) -> List[Span]:
        """Remove and return finished spans (all, or one trace's)."""
        with self._lock:
            if trace_id is None:
                drained, self._spans = self._spans, []
            else:
                drained = [s for s in self._spans if s.trace_id == trace_id]
                self._spans = [s for s in self._spans if s.trace_id != trace_id]
            return drained

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# --------------------------------------------------------------------------- #
# Process-global tracer + zero-overhead module helpers
# --------------------------------------------------------------------------- #
_ACTIVE: Optional[Tracer] = None


def install(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or, with ``None``, remove) the process tracer; returns the
    previous one so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def active() -> Optional[Tracer]:
    return _ACTIVE


def begin(name: str, parent=None, attrs=None) -> Optional[Span]:
    """Open a span on the installed tracer; ``None`` when tracing is off.

    The off path is one global read — cheap enough for per-function call
    sites inside the analysis pipeline."""
    tracer = _ACTIVE
    if tracer is None:
        return None
    return tracer.begin(name, parent=parent, attrs=attrs)


def end(span: Optional[Span]) -> None:
    """Close a span from :func:`begin` (``None``-tolerant)."""
    if span is None:
        return
    tracer = _ACTIVE
    if tracer is not None:
        tracer.end(span)


def span(name: str, parent=None, attrs=None):
    """Context-manager form; a shared no-op singleton when tracing is off."""
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, parent=parent, attrs=attrs)


def record(name: str, start: float, end_: float, parent=None, attrs=None) -> None:
    """Record an externally-measured span on the installed tracer, if any."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.record(name, start, end_, parent=parent, attrs=attrs)


# --------------------------------------------------------------------------- #
# Chrome trace-event export (Perfetto / chrome://tracing)
# --------------------------------------------------------------------------- #
def chrome_trace_events(spans: Iterable[Span]) -> Dict[str, Any]:
    """Render spans as a Chrome trace-event document (complete events)."""
    events = []
    for span_ in spans:
        args: Dict[str, Any] = {
            "trace_id": span_.trace_id,
            "span_id": span_.span_id,
        }
        if span_.parent_id is not None:
            args["parent_id"] = span_.parent_id
        if span_.attrs:
            args.update(span_.attrs)
        events.append(
            {
                "name": span_.name,
                "cat": "repro",
                "ph": "X",
                "ts": span_.start * 1e6,
                "dur": span_.seconds * 1e6,
                "pid": span_.pid,
                "tid": span_.tid,
                "args": args,
            }
        )
    events.sort(key=lambda event: event["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: Iterable[Span], merge: bool = False) -> int:
    """Write (or, with ``merge``, append into) a Chrome trace file.

    Returns the total number of events in the file afterwards."""
    document = chrome_trace_events(spans)
    if merge:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                existing = json.load(handle)
            events = existing.get("traceEvents", []) + document["traceEvents"]
            events.sort(key=lambda event: event.get("ts", 0))
            document["traceEvents"] = events
        except (OSError, ValueError):
            pass
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return len(document["traceEvents"])


def validate_chrome(document: Any) -> List[str]:
    """Structural check against the Chrome trace-event schema (the subset
    this module emits).  Returns a list of problems — empty means valid."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where} is not an object")
            continue
        for key, kinds in (
            ("name", str), ("ph", str), ("ts", (int, float)),
            ("pid", int), ("tid", int),
        ):
            if not isinstance(event.get(key), kinds):
                problems.append(f"{where}.{key} missing or mistyped")
        if event.get("ph") == "X" and not isinstance(
            event.get("dur"), (int, float)
        ):
            problems.append(f"{where}.dur missing on a complete event")
    return problems
