"""Concurrent analysis service: job queue, dedup scheduler, HTTP front end.

The paper's workflow is interactive and fleet-scale — the same programs are
re-analysed continuously across modes, error scenarios and guideline audits.
A one-shot CLI pays import, program-build and cache-warmup costs on every
invocation; this package keeps all of that *warm* behind a long-lived
service:

* :mod:`repro.server.queue` — :class:`JobQueue` + :class:`Scheduler`:
  priority lanes (``interactive`` > ``batch``) and content-addressed request
  dedup — identical requests against the same project digest share one
  execution, and every subscriber receives the result;
* :mod:`repro.server.workers` — :class:`WorkerPool`: supervised worker
  processes (per-job deadlines, crash detection, kill/respawn, bounded
  retry) keeping warm :class:`~repro.api.service.AnalysisService` instances,
  one shared on-disk :class:`~repro.cache.store.SummaryStore` underneath;
* :mod:`repro.server.http` — :class:`AnalysisServer`: the stdlib HTTP/JSON
  listener (submit/status/result/cancel, streaming progress events,
  ``/healthz`` stats);
* :mod:`repro.server.wire` — the schema-1 wire messages;
* :mod:`repro.server.client` — :class:`ServerClient`, the typed client
  (``repro analyze --remote URL`` rides on it).

Results served remotely are **bit-identical** to direct facade calls: the
wire format is the exact-round-trip JSON schema of :mod:`repro.api.serialize`
and the execution path is the same :class:`~repro.api.service.AnalysisService`.

Run one with ``python -m repro serve --port 8472 --jobs 4 --cache-dir .cache``
(see docs/server.md for deployment and scaling notes).
"""

from repro.server.client import (
    ClientError,
    JobCancelled,
    JobFailed,
    RemoteError,
    RemoteJob,
    ResultNotReady,
    ServerClient,
)
from repro.server.http import DEFAULT_PORT, AnalysisServer
from repro.server.queue import JobQueue, QueueFull, Scheduler, SchedulerClosed
from repro.server.wire import (
    LANES,
    ProjectSpec,
    ServerError,
    ServerEvent,
    ServerJobStatus,
    ServerStats,
    ServerSubmit,
    ServerSubmitReply,
    WireError,
    request_digest,
)
from repro.server.workers import DEFAULT_JOB_TIMEOUT, WorkerPool

__all__ = [
    "AnalysisServer",
    "ClientError",
    "DEFAULT_JOB_TIMEOUT",
    "DEFAULT_PORT",
    "JobCancelled",
    "JobFailed",
    "JobQueue",
    "LANES",
    "QueueFull",
    "ProjectSpec",
    "RemoteError",
    "RemoteJob",
    "ResultNotReady",
    "Scheduler",
    "SchedulerClosed",
    "ServerClient",
    "ServerError",
    "ServerEvent",
    "ServerJobStatus",
    "ServerStats",
    "ServerSubmit",
    "ServerSubmitReply",
    "WireError",
    "WorkerPool",
    "request_digest",
]
