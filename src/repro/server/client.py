"""Typed Python client for the analysis server.

:class:`ServerClient` wraps the wire protocol (stdlib ``urllib`` only); the
objects it accepts and returns are the same facade types a local caller uses
(:class:`~repro.api.service.AnalysisRequest` in,
:class:`~repro.api.service.AnalysisResult` out — bit-identical to a direct
:class:`~repro.api.service.AnalysisService` call, because the wire format is
the exact-round-trip schema of :mod:`repro.api.serialize`).

Quick start::

    from repro.api import AnalysisRequest
    from repro.server import ProjectSpec, ServerClient

    client = ServerClient("http://127.0.0.1:8472")
    spec = ProjectSpec(workload="flight-control")
    result = client.analyze(spec, AnalysisRequest(all_modes=True))
    print(result.report.wcet_cycles)

    job = client.submit(spec, AnalysisRequest(mode="air"))   # async form
    for event in job.events():
        print(event.event)
    print(job.result().wcet_cycles)
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from typing import Iterator, Optional

from repro.api import serialize
from repro.api.service import AnalysisRequest, AnalysisResult
from repro.errors import ReproError
from repro.obs import trace as obs_trace
from repro.server.wire import (
    TERMINAL_STATES,
    ProjectSpec,
    ServerError,
    ServerEvent,
    ServerJobStatus,
    ServerStats,
    ServerSubmit,
    ServerSubmitReply,
)


class ClientError(ReproError):
    """Transport-level failure (server unreachable, malformed reply, ...)."""


class RemoteError(ReproError):
    """The server answered with a :class:`~repro.server.wire.ServerError`."""

    def __init__(
        self, status: int, error: ServerError, retry_after: Optional[float] = None
    ):
        super().__init__(f"[HTTP {status}] {error.error}: {error.message}")
        self.status = status
        self.error = error
        #: Backpressure hint: seconds to wait before retrying (from the
        #: Retry-After header and/or the error envelope, on 429/503).
        self.retry_after = retry_after if retry_after is not None else error.retry_after


class JobFailed(RemoteError):
    """The remote analysis raised (the analysis error travels back)."""


class ResultNotReady(RemoteError):
    """``result()`` was called while the job was still queued/running."""


class JobCancelled(RemoteError):
    """``result()`` was called on a cancelled job."""


_RESULT_ERRORS = {409: ResultNotReady, 410: JobCancelled, 500: JobFailed}


def _retry_after_header(exc: urllib.error.HTTPError) -> Optional[float]:
    """Parse a Retry-After header (delta-seconds form only) off a reply."""
    value = exc.headers.get("Retry-After") if exc.headers else None
    if value is None:
        return None
    try:
        return max(float(value), 0.0)
    except (TypeError, ValueError):
        return None


class RemoteJob:
    """Handle on one submitted job."""

    def __init__(self, client: "ServerClient", reply: ServerSubmitReply):
        self.client = client
        self.id = reply.job_id
        #: True when the server joined this submission to an existing
        #: identical execution instead of queueing a new one.
        self.deduped = reply.deduped

    def status(self) -> ServerJobStatus:
        return self.client.status(self.id)

    def result(self, wait: bool = True, timeout: Optional[float] = None) -> AnalysisResult:
        if wait:
            self.client.wait(self.id, timeout=timeout)
        return self.client.result(self.id)

    def events(self, since: int = 0) -> Iterator[ServerEvent]:
        return self.client.events(self.id, since=since)

    def cancel(self) -> ServerJobStatus:
        return self.client.cancel(self.id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteJob({self.id!r}, deduped={self.deduped})"


class ServerClient:
    """HTTP client speaking the server's schema-1 wire protocol."""

    def __init__(self, url: str, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _call(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        timeout: Optional[float] = None,
        result_endpoint: bool = False,
    ) -> dict:
        """One request/reply exchange.

        ``result_endpoint`` maps the result route's state-signalling status
        codes (409/410/500) to the typed exceptions; everywhere else a
        non-2xx reply — including a handler bug surfacing as 500 — is a
        plain :class:`RemoteError`, never a fake analysis outcome.
        """
        body = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout if timeout is not None else self.timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                error = serialize.from_json(json.loads(raw), ServerError)
            except Exception:  # noqa: BLE001 - non-envelope error body
                error = ServerError(error="HTTPError", message=raw.decode(errors="replace"))
            cls = _RESULT_ERRORS.get(exc.code, RemoteError) if result_endpoint else RemoteError
            raise cls(exc.code, error, retry_after=_retry_after_header(exc)) from None
        except urllib.error.URLError as exc:
            raise ClientError(f"cannot reach analysis server at {self.url}: {exc.reason}") from None
        except (json.JSONDecodeError, ValueError) as exc:
            raise ClientError(f"malformed reply from {self.url}: {exc}") from None
        except (http.client.HTTPException, TimeoutError, OSError) as exc:
            # urllib only wraps errors from *sending* the request; a torn or
            # stalled connection while reading the response (flaky network,
            # a proxy eating the reply) surfaces raw — normalise it.
            raise ClientError(
                f"transport failure talking to {self.url}: "
                f"{type(exc).__name__}: {exc}"
            ) from None

    # ------------------------------------------------------------------ #
    # Protocol surface
    # ------------------------------------------------------------------ #
    #: How many times ``submit`` retries a 429 (admission-control) rejection
    #: before surfacing it, and the cap on how long one Retry-After hint can
    #: make it sleep.
    SUBMIT_RETRIES = 4
    RETRY_AFTER_CAP = 30.0

    def submit(
        self,
        spec: ProjectSpec,
        request: Optional[AnalysisRequest] = None,
        lane: str = "interactive",
        job_timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> RemoteJob:
        """Submit one analysis; honors admission-control backpressure.

        A 429 rejection is retried up to ``retries`` times (default
        :attr:`SUBMIT_RETRIES`; pass 0 to surface the first rejection),
        sleeping the server's Retry-After hint — capped at
        :attr:`RETRY_AFTER_CAP` and jittered so synchronized clients don't
        re-stampede the queue on the same tick.
        """
        # When this process traces, the span context rides the wire so the
        # server-side queue/dispatch/worker spans join the client's trace.
        span = obs_trace.begin(
            "client-submit", attrs={"lane": lane, "url": self.url}
        )
        submit = ServerSubmit(
            project=spec,
            request=request or AnalysisRequest(),
            lane=lane,
            timeout=job_timeout,
            trace=span.context() if span is not None else None,
        )
        payload = serialize.to_json(submit)
        budget = self.SUBMIT_RETRIES if retries is None else retries
        attempt = 0
        try:
            while True:
                try:
                    reply = serialize.from_json(
                        self._call("POST", "/v1/jobs", payload), ServerSubmitReply
                    )
                    if span is not None:
                        span.set("job_id", reply.job_id)
                        span.set("deduped", reply.deduped)
                    return RemoteJob(self, reply)
                except RemoteError as exc:
                    if exc.status != 429 or attempt >= budget:
                        raise
                    hint = exc.retry_after if exc.retry_after is not None else 1.0
                    pause = min(hint, self.RETRY_AFTER_CAP)
                    time.sleep(pause * (0.5 + random.random() * 0.5))
                    attempt += 1
        finally:
            obs_trace.end(span)

    def status(self, job_id: str) -> ServerJobStatus:
        return serialize.from_json(
            self._call("GET", f"/v1/jobs/{job_id}"), ServerJobStatus
        )

    def result(self, job_id: str) -> AnalysisResult:
        return serialize.from_json(
            self._call("GET", f"/v1/jobs/{job_id}/result", result_endpoint=True),
            AnalysisResult,
        )

    def cancel(self, job_id: str) -> ServerJobStatus:
        return serialize.from_json(
            self._call("POST", f"/v1/jobs/{job_id}/cancel", {}), ServerJobStatus
        )

    def events(self, job_id: str, since: int = 0) -> Iterator[ServerEvent]:
        """Yield the job's progress events live, ending at the terminal one."""
        request = urllib.request.Request(
            f"{self.url}/v1/jobs/{job_id}/events?since={since}"
        )
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                error = serialize.from_json(json.loads(raw), ServerError)
            except Exception:  # noqa: BLE001
                error = ServerError(error="HTTPError", message=raw.decode(errors="replace"))
            raise RemoteError(exc.code, error) from None
        except urllib.error.URLError as exc:
            raise ClientError(f"cannot reach analysis server at {self.url}: {exc.reason}") from None
        with response:
            for line in response:
                line = line.strip()
                if line:
                    yield serialize.from_json(json.loads(line), ServerEvent)

    #: ``wait`` re-raises after this many *consecutive* stream/poll failures
    #: (a dead server must surface as an error, not a silent spin).
    MAX_WAIT_FAILURES = 8
    #: Backoff bounds for the hiccup-retry loop: doubles from the floor to
    #: the ceiling, resets on any successful exchange.
    WAIT_BACKOFF_MIN = 0.05
    WAIT_BACKOFF_MAX = 2.0

    def wait(self, job_id: str, timeout: Optional[float] = None) -> ServerJobStatus:
        """Block until the job reaches a terminal state (stream-driven, with
        a polling fallback); raises :class:`ClientError` on timeout.

        Stream hiccups (socket read timeout on a quiet stream, torn
        connection, truncated line) fall back to polling with capped,
        *jittered* exponential backoff — jitter decorrelates clients that
        all lost the same server, so reconnects don't arrive as a thundering
        herd.  A 429/503 reply carrying a Retry-After hint overrides the
        backoff with the server's own estimate (capped the same way).  After
        :attr:`MAX_WAIT_FAILURES` consecutive failures the last error is
        re-raised instead of spinning until the deadline.  The deadline is
        checked *before* every blocking exchange, so a wait can never
        overshoot the caller's timeout by a poll interval.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        backoff = self.WAIT_BACKOFF_MIN
        failures = 0

        def expired() -> bool:
            return deadline is not None and time.monotonic() >= deadline

        if expired():
            raise ClientError(f"timed out waiting for job {job_id}")
        status = self.status(job_id)
        while status.state not in TERMINAL_STATES:
            if expired():
                raise ClientError(f"timed out waiting for job {job_id}")
            try:
                for event in self.events(job_id):
                    if event.event in TERMINAL_STATES:
                        break
                failures = 0
                backoff = self.WAIT_BACKOFF_MIN
            except (ClientError, RemoteError, OSError, ValueError) as exc:
                failures += 1
                if failures >= self.MAX_WAIT_FAILURES:
                    raise
                # The server's Retry-After hint (429/503) beats our blind
                # backoff; both get jitter, and neither sleeps past the
                # deadline.
                hinted = getattr(exc, "retry_after", None)
                pause = min(hinted, self.RETRY_AFTER_CAP) if hinted else backoff
                pause *= 0.5 + random.random() * 0.5
                if deadline is not None:
                    pause = min(pause, max(deadline - time.monotonic(), 0.0))
                time.sleep(pause)
                backoff = min(backoff * 2, self.WAIT_BACKOFF_MAX)
            if expired():
                raise ClientError(f"timed out waiting for job {job_id}")
            status = self.status(job_id)
        return status

    def healthz(self) -> ServerStats:
        return serialize.from_json(self._call("GET", "/healthz"), ServerStats)

    def shutdown(self) -> None:
        """Ask the server to shut down gracefully."""
        self._call("POST", "/v1/shutdown", {})

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def analyze(
        self,
        spec: ProjectSpec,
        request: Optional[AnalysisRequest] = None,
        lane: str = "interactive",
        timeout: Optional[float] = None,
        job_timeout: Optional[float] = None,
    ) -> AnalysisResult:
        """Submit and block for the result — the remote twin of
        :meth:`repro.api.service.AnalysisService.analyze`.

        ``timeout`` bounds how long *this client* waits; ``job_timeout`` is
        the server-side per-attempt execution deadline.
        """
        job = self.submit(spec, request, lane=lane, job_timeout=job_timeout)
        return job.result(wait=True, timeout=timeout)
