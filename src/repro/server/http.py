"""HTTP/JSON front end of the analysis service (stdlib only).

Endpoints (all bodies are schema-1 envelopes, see :mod:`repro.server.wire`
and docs/server.md):

========  ==========================  =======================================
method    path                        body / reply
========  ==========================  =======================================
POST      ``/v1/jobs``                ServerSubmit → 202 ServerSubmitReply
GET       ``/v1/jobs/<id>``           → 200 ServerJobStatus
GET       ``/v1/jobs/<id>/result``    → 200 AnalysisResult (when done);
                                      409 while queued/running, 410 when
                                      cancelled, 500 ServerError when failed
POST      ``/v1/jobs/<id>/cancel``    → 200 ServerJobStatus
GET       ``/v1/jobs/<id>/events``    → 200 ``application/x-ndjson`` stream
                                      of ServerEvent lines (``?since=N``
                                      resumes), closed after the terminal
                                      event
GET       ``/healthz``                → 200 ServerStats
GET       ``/metrics``                → 200 Prometheus text exposition
POST      ``/v1/shutdown``            → 200, then graceful shutdown
========  ==========================  =======================================

Every non-2xx response body is a :class:`~repro.server.wire.ServerError`.
The server is a :class:`ThreadingHTTPServer`: requests are handled on
daemon threads while analyses run on the :class:`~repro.server.workers.
WorkerPool`, so status polls and event streams stay responsive under load.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.api import serialize
from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.server.queue import LANES, QueueFull, Scheduler, SchedulerClosed
from repro.server.wire import (
    TERMINAL_STATES,
    ServerError,
    ServerStats,
    ServerSubmit,
    ServerSubmitReply,
    WireError,
)
from repro.server.workers import DEFAULT_JOB_TIMEOUT, WorkerPool

#: Default TCP port (0 = pick an ephemeral port; see ``AnalysisServer.url``).
DEFAULT_PORT = 8472

_M_HTTP = obs_metrics.REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by method and status code.",
    labelnames=("method", "status"),
)
_M_QUEUE_DEPTH = obs_metrics.REGISTRY.gauge(
    "repro_queue_depth",
    "Executions waiting per lane (sampled at scrape time).",
    labelnames=("lane",),
)
_M_EXEC_EMA = obs_metrics.REGISTRY.gauge(
    "repro_exec_ema_seconds",
    "Exponential moving average of execution wall time (seconds).",
)
_M_UPTIME = obs_metrics.REGISTRY.gauge(
    "repro_uptime_seconds", "Seconds since the scheduler started."
)
_M_WORKERS = obs_metrics.REGISTRY.gauge(
    "repro_workers", "Configured worker slots."
)


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    analysis: "AnalysisServer"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: _HTTPServer

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.analysis.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _count_request(self, status: int, **fields) -> None:
        _M_HTTP.inc(method=self.command, status=str(status))
        obs_logs.get().log(
            "http_request",
            method=self.command,
            path=self.path.split("?", 1)[0],
            status=status,
            **fields,
        )

    def _reply(
        self,
        status: int,
        payload: dict,
        *,
        close: bool = False,
        headers: Optional[dict] = None,
        log_fields: Optional[dict] = None,
    ) -> None:
        body = json.dumps(payload).encode()
        self._count_request(status, **(log_fields or {}))
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if close:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self._count_request(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self,
        status: int,
        error: str,
        message: str,
        job_id: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        headers = None
        if retry_after is not None:
            # Retry-After must be integral per RFC 9110; round up so the
            # client never comes back *before* the hinted drain time.
            headers = {"Retry-After": str(max(1, int(retry_after + 0.999)))}
        self._reply(
            status,
            serialize.to_json(
                ServerError(
                    error=error,
                    message=message,
                    job_id=job_id,
                    retry_after=retry_after,
                )
            ),
            headers=headers,
        )

    #: Upper bound on accepted request bodies; a Content-Length beyond this
    #: is rejected before any read (an absurd length must not stall the
    #: handler thread on a slow-trickle body).
    MAX_BODY_BYTES = 16 * 1024 * 1024

    def _read_body(self) -> dict:
        header = self.headers.get("Content-Length", "0")
        try:
            length = int(header)
        except (TypeError, ValueError):
            raise WireError(
                f"Content-Length is not an integer: {header!r}"
            ) from None
        if length < 0:
            raise WireError(f"Content-Length is negative: {length}")
        if length > self.MAX_BODY_BYTES:
            raise WireError(
                f"request body too large ({length} bytes > {self.MAX_BODY_BYTES})"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise WireError("request body is empty")
        try:
            data = json.loads(raw)
        except (ValueError, RecursionError) as exc:
            # ValueError covers JSONDecodeError *and* UnicodeDecodeError
            # (invalid UTF-8 bytes); RecursionError covers pathologically
            # nested documents.  All are the client's fault: 400, never 500.
            raise WireError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise WireError("request body must be a JSON object")
        return data

    def _route(self) -> Tuple[str, dict]:
        split = urlsplit(self.path)
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        return split.path.rstrip("/") or "/", query

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802
        path, query = self._route()
        try:
            if path == "/healthz":
                return self._healthz()
            if path == "/metrics":
                return self._metrics()
            if path.startswith("/v1/jobs/"):
                parts = path.split("/")
                # /v1/jobs/<id>[/result|/events]
                if len(parts) == 4:
                    return self._status(parts[3])
                if len(parts) == 5 and parts[4] == "result":
                    return self._result(parts[3])
                if len(parts) == 5 and parts[4] == "events":
                    since_raw = query.get("since", "0")
                    try:
                        since = int(since_raw)
                    except (TypeError, ValueError):
                        return self._error(
                            400, "BadQuery", f"since must be an integer: {since_raw!r}"
                        )
                    return self._events(parts[3], since)
            self._error(404, "NotFound", f"no such endpoint: GET {path}")
        except (BrokenPipeError, ConnectionResetError):  # client went away
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001
            self._error(500, type(exc).__name__, str(exc))

    def do_POST(self) -> None:  # noqa: N802
        path, _ = self._route()
        try:
            if path == "/v1/jobs":
                return self._submit()
            if path == "/v1/shutdown":
                return self._shutdown()
            parts = path.split("/")
            if len(parts) == 5 and parts[1] == "v1" and parts[2] == "jobs" and parts[4] == "cancel":
                return self._cancel(parts[3])
            self._error(404, "NotFound", f"no such endpoint: POST {path}")
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001
            self._error(500, type(exc).__name__, str(exc))

    def _method_not_allowed(self) -> None:
        """Unsupported verbs answer with the error envelope, not the base
        handler's HTML 501 page (every error reply is machine-readable)."""
        try:
            self._error(
                405,
                "MethodNotAllowed",
                f"{self.command} is not supported; use GET or POST",
            )
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    do_DELETE = _method_not_allowed  # noqa: N815
    do_PUT = _method_not_allowed  # noqa: N815
    do_PATCH = _method_not_allowed  # noqa: N815

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _submit(self) -> None:
        try:
            body = self._read_body()
            submit = serialize.from_json(body, ServerSubmit)
            submit.validate()
        except (WireError, serialize.SchemaError) as exc:
            return self._error(400, type(exc).__name__, str(exc))
        scheduler = self.server.analysis.scheduler
        try:
            job = scheduler.submit(
                submit.project,
                submit.request,
                lane=submit.lane,
                timeout=submit.timeout,
                trace=submit.trace,
            )
        except QueueFull as exc:
            # Admission control: shed load with an explicit backpressure
            # envelope instead of queueing unboundedly (and eventually
            # hanging clients behind work the server cannot absorb).
            return self._error(
                429, "QueueFull", str(exc), retry_after=exc.retry_after
            )
        except SchedulerClosed as exc:
            return self._error(503, "SchedulerClosed", str(exc))
        status = scheduler.status(job)
        self._reply(
            202,
            serialize.to_json(
                ServerSubmitReply(
                    job_id=job.id,
                    state=job.state,
                    lane=job.lane,
                    deduped=job.deduped,
                    position=status.position,
                )
            ),
            log_fields={
                "job_id": job.id,
                "lane": job.lane,
                "deduped": job.deduped,
                "trace_id": (submit.trace or {}).get("trace_id"),
            },
        )

    def _job_or_404(self, job_id: str):
        job = self.server.analysis.scheduler.job(job_id)
        if job is None:
            self._error(404, "UnknownJob", f"no such job: {job_id}", job_id=job_id)
        return job

    def _status(self, job_id: str) -> None:
        job = self._job_or_404(job_id)
        if job is not None:
            self._reply(
                200, serialize.to_json(self.server.analysis.scheduler.status(job))
            )

    def _result(self, job_id: str) -> None:
        job = self._job_or_404(job_id)
        if job is None:
            return
        state = job.state
        if state == "done":
            self._reply(200, serialize.to_json(job.result))
        elif state == "cancelled":
            self._error(410, "JobCancelled", f"job {job_id} was cancelled", job_id)
        elif state == "failed":
            error = job.error
            self._reply(
                500,
                serialize.to_json(
                    ServerError(
                        error=error.error, message=error.message, job_id=job_id
                    )
                ),
            )
        else:
            self._error(
                409, "ResultNotReady", f"job {job_id} is {state}", job_id
            )

    def _cancel(self, job_id: str) -> None:
        job = self.server.analysis.scheduler.cancel(job_id)
        if job is None:
            self._error(404, "UnknownJob", f"no such job: {job_id}", job_id=job_id)
        else:
            self._reply(
                200, serialize.to_json(self.server.analysis.scheduler.status(job))
            )

    def _events(self, job_id: str, since: int) -> None:
        """Stream the job's events as NDJSON until it reaches a terminal state."""
        scheduler = self.server.analysis.scheduler
        job = self._job_or_404(job_id)
        if job is None:
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        cursor = since
        while True:
            events = scheduler.job_events(job, since=cursor)
            for event in events:
                self.wfile.write(
                    (json.dumps(serialize.to_json(event)) + "\n").encode()
                )
                cursor = event.seq
            if not events:
                # Keepalive: an empty NDJSON line (clients skip blanks).
                # Long-running analyses emit nothing between "started" and
                # the terminal event; without traffic, a client-side socket
                # read timeout would tear the stream down mid-wait.
                self.wfile.write(b"\n")
            self.wfile.flush()
            if any(event.event in TERMINAL_STATES for event in events) or (
                job.state in TERMINAL_STATES and not events
            ):
                break
            with scheduler.events:
                if not scheduler.job_events(job, since=cursor):
                    scheduler.events.wait(timeout=1.0)
            if self.server.analysis.closing:
                break
        self.close_connection = True

    def _healthz(self) -> None:
        self._reply(200, serialize.to_json(self.server.analysis.stats()))

    def _metrics(self) -> None:
        """Prometheus text exposition of the process registry.

        Point-in-time gauges (queue depth, EMA, uptime) are sampled here at
        scrape time; everything else accumulates at the event sites."""
        analysis = self.server.analysis
        depth = analysis.scheduler.queue_depth()
        for lane in LANES:
            _M_QUEUE_DEPTH.set(float(depth.get(lane, 0)), lane=lane)
        _M_EXEC_EMA.set(analysis.scheduler.exec_ema())
        _M_UPTIME.set(time.time() - analysis.scheduler.started_at)
        _M_WORKERS.set(float(analysis.pool.jobs))
        self._reply_text(
            200,
            obs_metrics.REGISTRY.render(),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _shutdown(self) -> None:
        self._reply(200, {"schema": 1, "kind": "ServerShutdown"}, close=True)
        self.wfile.flush()
        threading.Thread(
            target=self.server.analysis.shutdown, daemon=True
        ).start()


# --------------------------------------------------------------------------- #
class AnalysisServer:
    """Scheduler + worker pool + HTTP listener, wired and lifecycle-managed.

    ``port=0`` binds an ephemeral port (read it back from :attr:`url`) —
    tests and the load benchmark rely on this.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        jobs: Optional[int] = 1,
        cache_dir: Optional[str] = None,
        verbose: bool = False,
        max_queue: Optional[int] = None,
        job_timeout: float = DEFAULT_JOB_TIMEOUT,
        trace_dir: Optional[str] = None,
        log_stream=None,
    ):
        self.scheduler = Scheduler(max_queue=max_queue)
        self.pool = WorkerPool(
            self.scheduler, jobs=jobs, cache_dir=cache_dir, job_timeout=job_timeout
        )
        self.verbose = verbose
        self.closing = False
        self.trace_dir = trace_dir
        self._installed_tracer: Optional[obs_trace.Tracer] = None
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
            if obs_trace.active() is None:
                # Own the process tracer so the scheduler mints trace ids for
                # untraced clients too; shut down symmetric (see shutdown()).
                self._installed_tracer = obs_trace.Tracer()
                obs_trace.install(self._installed_tracer)
            self.scheduler.on_complete = self._export_trace
        if log_stream is not None:
            obs_logs.configure(log_stream)
        self._httpd = _HTTPServer((host, port), _Handler)
        self._httpd.analysis = self
        self._serve_thread: Optional[threading.Thread] = None

    def _export_trace(self, execution) -> None:
        """Scheduler completion hook: flush one finished execution's spans.

        One Chrome-trace file per trace id; joiner submits that share the
        execution land in their own trace files (merge=True appends when a
        file already exists, e.g. a client reusing one trace for a batch)."""
        tracer = obs_trace.active()
        if tracer is None or not execution.trace:
            return
        trace_id = execution.trace.get("trace_id")
        if not trace_id:
            return
        spans = tracer.drain(trace_id)
        if not spans:
            return
        path = os.path.join(self.trace_dir, f"trace-{trace_id}.json")
        try:
            obs_trace.write_chrome_trace(path, spans, merge=True)
        except OSError:
            pass  # a full disk must not fail the job completion path

    # ------------------------------------------------------------------ #
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    def start(self) -> "AnalysisServer":
        """Start workers and serve HTTP on a background thread."""
        self.pool.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-http", daemon=True
        )
        self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Start workers and serve HTTP on the calling thread (the CLI)."""
        self.pool.start()
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Graceful: stop intake, drain workers, stop the listener."""
        if self.closing:
            return
        self.closing = True
        self.scheduler.close()
        self.pool.shutdown(wait=True)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10)
        if self.trace_dir is not None:
            # Spans not claimed by any per-trace file (server-side roots,
            # traces cut short by shutdown) still get exported.
            tracer = obs_trace.active()
            if tracer is not None:
                leftovers = tracer.drain()
                if leftovers:
                    try:
                        obs_trace.write_chrome_trace(
                            os.path.join(self.trace_dir, "trace-server.json"),
                            leftovers,
                            merge=True,
                        )
                    except OSError:
                        pass
            if self._installed_tracer is not None and (
                obs_trace.active() is self._installed_tracer
            ):
                obs_trace.install(None)
                self._installed_tracer = None

    def __enter__(self) -> "AnalysisServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------ #
    def stats(self) -> ServerStats:
        scheduler = self.scheduler
        return ServerStats(
            uptime_seconds=time.time() - scheduler.started_at,
            workers=self.pool.jobs,
            jobs=scheduler.job_counts(),
            queue_depth=scheduler.queue_depth(),
            dedup_hits=scheduler.dedup_hits,
            submitted=scheduler.submitted,
            executed=scheduler.executed,
            cache=dict(scheduler.cache_stats),
            phase_seconds={
                phase: round(seconds, 6)
                for phase, seconds in scheduler.phase_seconds.items()
            },
            faults=dict(scheduler.faults),
            queue_limit=scheduler.max_queue,
            exec_ema_seconds=round(scheduler.exec_ema(), 6),
            metrics=obs_metrics.REGISTRY.flat_counters(),
        )
