"""Job queue and scheduler: priority lanes + content-addressed dedup.

The scheduler's unit of work is an :class:`Execution` — one (project digest,
request digest) pair.  Any number of :class:`Job`\\ s (one per client
submission) subscribe to an execution; identical submissions arriving while
an execution is queued or running join it instead of queueing a second run,
and every subscriber receives the finished result stamped with its own label.
This is safe for the same reason the summary cache is safe: the key digests
every input the result depends on, so sharing an execution can only skip
work, never change a bound.

Scheduling is strict-priority by lane (``interactive`` before ``batch``),
FIFO within a lane.  A queued batch execution that gains an interactive
subscriber is *promoted* — it re-enters the queue at interactive priority.

All public methods are thread-safe; worker threads block in :meth:`pop`.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.analysis.summaries import merge_stats
from repro.api.service import AnalysisRequest, AnalysisResult
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.server.wire import (
    LANES,
    TERMINAL_STATES,
    ProjectSpec,
    ServerError,
    ServerEvent,
    ServerJobStatus,
    request_digest,
)

_M_SUBMITTED = obs_metrics.REGISTRY.counter(
    "repro_jobs_submitted_total", "Job submissions accepted, per lane.",
    labelnames=("lane",),
)
_M_EXECUTED = obs_metrics.REGISTRY.counter(
    "repro_jobs_executed_total", "Executions completed (done or failed)."
)
_M_DEDUP = obs_metrics.REGISTRY.counter(
    "repro_dedup_joins_total",
    "Submissions that joined an existing identical execution.",
)
_M_FAULTS = obs_metrics.REGISTRY.counter(
    "repro_faults_total",
    "Infrastructure faults by kind (worker_restarts, job_timeouts, "
    "job_retries, rejections).",
    labelnames=("kind",),
)
_M_QUEUE_WAIT = obs_metrics.REGISTRY.histogram(
    "repro_queue_wait_seconds", "Enqueue-to-dispatch wait, per lane.",
    labelnames=("lane",),
)
_M_EXEC_SECONDS = obs_metrics.REGISTRY.histogram(
    "repro_exec_seconds", "Execution wall-clock seconds (successful attempts)."
)
# Pre-seed the fault and lane label sets so every series is present on a
# scrape from the first request on (CI asserts on their presence).
for _kind in ("worker_restarts", "job_timeouts", "job_retries", "rejections"):
    _M_FAULTS.inc(0, kind=_kind)
for _lane in LANES:
    _M_SUBMITTED.inc(0, lane=_lane)
del _kind, _lane


@dataclass
class Job:
    """One client submission (subscribes to exactly one execution)."""

    id: str
    label: str
    lane: str
    execution: "Execution"
    deduped: bool = False
    submitted: float = 0.0
    #: Set when this job was cancelled individually while its (shared)
    #: execution lived on for other subscribers.
    cancelled: bool = False
    #: The delivered result, stamped with this job's label.
    result: Optional[AnalysisResult] = None
    events: List[ServerEvent] = field(default_factory=list)

    @property
    def state(self) -> str:
        if self.cancelled:
            return "cancelled"
        return self.execution.state

    @property
    def error(self) -> Optional[ServerError]:
        return self.execution.error


@dataclass
class Execution:
    """One deduplicated unit of analysis work."""

    key: str
    spec: ProjectSpec
    request: AnalysisRequest
    lane: str
    seq: int
    state: str = "queued"
    jobs: List[Job] = field(default_factory=list)
    result: Optional[AnalysisResult] = None
    error: Optional[ServerError] = None
    started: float = 0.0
    finished: float = 0.0
    seconds: float = 0.0
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Per-attempt wall-clock deadline in seconds (``None`` = the worker
    #: pool's default).  Dedup joins can only *tighten* this.
    timeout: Optional[float] = None
    #: Completed execution attempts (retries after infrastructure faults).
    attempts: int = 0
    #: Trace-propagation context (``{"trace_id": .., "parent_id": ..}``)
    #: from the submitting client, or minted server-side under
    #: ``serve --trace-dir``; ``None`` = untraced.
    trace: Optional[Dict[str, Optional[str]]] = None
    #: ``time.monotonic()`` at enqueue — start of the queue-wait span.
    enqueued_mono: float = 0.0


class SchedulerClosed(Exception):
    """Raised by :meth:`Scheduler.submit` after :meth:`Scheduler.close`."""


class QueueFull(Exception):
    """Raised by :meth:`Scheduler.submit` when the lane is at capacity.

    Carries the backpressure hint the HTTP layer turns into a 429 reply with
    a ``Retry-After`` header — over-limit submissions are *rejected*, never
    silently queued or hung.
    """

    def __init__(self, lane: str, depth: int, limit: int, retry_after: float):
        super().__init__(
            f"lane {lane!r} is at capacity ({depth} queued, limit {limit}); "
            f"retry in ~{retry_after:.0f}s"
        )
        self.lane = lane
        self.depth = depth
        self.limit = limit
        self.retry_after = retry_after


class JobQueue:
    """Priority queue of executions: strict lane priority, FIFO within.

    Not thread-safe on its own — the :class:`Scheduler` serialises access.
    Promotions are handled by lazy deletion: an execution may appear twice in
    the heap; entries whose recorded lane no longer matches the execution's
    current lane (or whose execution already left the queued state) are
    skipped on pop.
    """

    def __init__(self):
        self._heap: List[tuple] = []
        self._tick = itertools.count()

    def push(self, execution: Execution) -> None:
        priority = LANES.index(execution.lane)
        heapq.heappush(self._heap, (priority, next(self._tick), execution.lane, execution))

    def pop(self) -> Optional[Execution]:
        while self._heap:
            _, _, lane, execution = heapq.heappop(self._heap)
            if execution.state == "queued" and lane == execution.lane:
                return execution
        return None

    def depth(self) -> Dict[str, int]:
        seen = set()
        counts = {lane: 0 for lane in LANES}
        for _, _, lane, execution in self._heap:
            if execution.state == "queued" and lane == execution.lane:
                if id(execution) not in seen:
                    seen.add(id(execution))
                    counts[lane] += 1
        return counts

    def position(self, target: Execution) -> int:
        """0-based position of ``target`` among queued executions."""
        live = [
            (entry[0], entry[1], entry[3])
            for entry in self._heap
            if entry[3].state == "queued" and entry[2] == entry[3].lane
        ]
        for index, (_, _, execution) in enumerate(sorted(live, key=lambda e: e[:2])):
            if execution is target:
                return index
        return -1

    def __len__(self) -> int:
        return sum(self.depth().values())


class Scheduler:
    """Thread-safe façade over the queue: submit/pop/complete/cancel/stats."""

    def __init__(self, max_queue: Optional[int] = None):
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        # Re-entrant: event streamers hold the lock through the ``events``
        # condition while calling back into ``job_events``.
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        #: Broadcast on every job event (status streams wait on this).
        self.events = threading.Condition(self._lock)
        self._queue = JobQueue()
        self._jobs: Dict[str, Job] = {}
        #: Active (queued or running) executions by dedup key.
        self._active: Dict[str, Execution] = {}
        self._job_seq = itertools.count(1)
        self._exec_seq = itertools.count(1)
        self._closed = False
        self.started_at = time.time()
        #: Admission control: max queued executions per lane (``None`` =
        #: unbounded).  Dedup joins never count against the bound — they add
        #: no work.
        self.max_queue = max_queue
        #: Set by the worker pool; sizes the Retry-After backpressure hint.
        self.workers = 1
        # Lifetime counters / aggregates (reported by /healthz).
        self.submitted = 0
        self.dedup_hits = 0
        self.executed = 0
        self.cache_stats: Dict[str, int] = {}
        self.phase_seconds: Dict[str, float] = {}
        #: Infrastructure-fault counters (worker_restarts, job_timeouts,
        #: job_retries, rejections) — surfaced via /healthz.
        self.faults: Dict[str, int] = {}
        # Exponential moving average of execution wall-clock seconds; feeds
        # the Retry-After hint on 429 rejections (and /healthz
        # ``exec_ema_seconds``).
        self._ema_seconds = 0.0
        #: Called (outside the lock) with each execution reaching a terminal
        #: state — the trace-dir exporter hooks in here.
        self.on_complete = None

    # ------------------------------------------------------------------ #
    # Submission and dedup
    # ------------------------------------------------------------------ #
    def submit(
        self,
        spec: ProjectSpec,
        request: AnalysisRequest,
        lane: str = "interactive",
        timeout: Optional[float] = None,
        trace: Optional[Dict[str, Optional[str]]] = None,
    ) -> Job:
        if lane not in LANES:
            # Validate BEFORE touching any state: failing later (e.g. on the
            # heap push) would leave a subscriber-less zombie execution in
            # the dedup table that poisons every later identical submission.
            raise ValueError(f"unknown lane {lane!r}; available: {LANES}")
        key = request_digest(spec, request)
        with self._lock:
            if self._closed:
                raise SchedulerClosed("scheduler is shut down")
            execution = self._active.get(key)
            deduped = execution is not None
            if execution is None and self.max_queue is not None:
                # Admission control applies only to *new* executions: a dedup
                # join subscribes to work already admitted, so rejecting it
                # would add latency without shedding any load.
                depth = self._queue.depth().get(lane, 0)
                if depth >= self.max_queue:
                    self.faults["rejections"] = self.faults.get("rejections", 0) + 1
                    _M_FAULTS.inc(kind="rejections")
                    raise QueueFull(lane, depth, self.max_queue, self._retry_after_hint(depth))
            self.submitted += 1
            _M_SUBMITTED.inc(lane=lane)
            if execution is None:
                if trace is None and obs_trace.active() is not None:
                    # Server-side tracing (``serve --trace-dir``) covers
                    # untraced clients too: mint a fresh trace per execution.
                    trace = {"trace_id": obs_trace.new_trace_id(), "parent_id": None}
                execution = Execution(
                    key=key,
                    spec=spec,
                    request=request,
                    lane=lane,
                    seq=next(self._exec_seq),
                    timeout=timeout,
                    trace=dict(trace) if trace else None,
                    enqueued_mono=time.monotonic(),
                )
                self._active[key] = execution
                self._queue.push(execution)
                self._work.notify()
            else:
                self.dedup_hits += 1
                _M_DEDUP.inc()
                if trace is not None:
                    # The joiner's trace shows an instant child span pointing
                    # at the shared execution (and its primary trace), so a
                    # deduped submission is attributable end-to-end as well.
                    now = time.monotonic()
                    obs_trace.record(
                        "dedup-join",
                        now,
                        now,
                        parent=trace,
                        attrs={
                            "execution_key": execution.key,
                            "shared_trace_id": (
                                execution.trace.get("trace_id")
                                if execution.trace
                                else None
                            ),
                        },
                    )
                if timeout is not None and execution.state == "queued":
                    # The tightest subscriber deadline wins; a join can only
                    # tighten it (loosening would break the earlier caller's
                    # expectation).
                    if execution.timeout is None or timeout < execution.timeout:
                        execution.timeout = timeout
                if (
                    execution.state == "queued"
                    and LANES.index(lane) < LANES.index(execution.lane)
                ):
                    # Promotion: an interactive subscriber joined a batch
                    # execution — re-queue it at the higher priority.
                    execution.lane = lane
                    self._queue.push(execution)
            job = Job(
                id=f"j{next(self._job_seq):06d}",
                label=request.label,
                lane=lane,
                execution=execution,
                deduped=deduped,
                submitted=time.time(),
            )
            execution.jobs.append(job)
            self._jobs[job.id] = job
            self._emit(job, "queued", detail="deduped" if deduped else "")
            return job

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def pop(self, timeout: Optional[float] = None) -> Optional[Execution]:
        """Block until an execution is runnable; ``None`` on close/timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                execution = self._queue.pop()
                if execution is not None:
                    execution.state = "running"
                    execution.started = time.time()
                    now = time.monotonic()
                    waited = max(now - execution.enqueued_mono, 0.0)
                    _M_QUEUE_WAIT.observe(waited, lane=execution.lane)
                    if execution.trace is not None:
                        # The lane wait, reconstructed at dispatch: it could
                        # not be an open span (no thread owns a queued
                        # execution), so it is recorded retroactively.
                        obs_trace.record(
                            "queue-wait",
                            execution.enqueued_mono,
                            now,
                            parent=execution.trace,
                            attrs={"lane": execution.lane},
                        )
                    for job in execution.jobs:
                        if not job.cancelled:
                            self._emit(job, "started")
                    return execution
                if self._closed:
                    return None
                if deadline is None:
                    self._work.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._work.wait(remaining)

    def complete(
        self,
        execution: Execution,
        result: Optional[AnalysisResult] = None,
        error: Optional[ServerError] = None,
        cache_stats: Optional[Dict[str, int]] = None,
        seconds: float = 0.0,
    ) -> None:
        """Record the outcome and fan it out to every subscribed job."""
        with self._lock:
            if execution.state in TERMINAL_STATES:
                # A late outcome for an execution the supervisor already
                # resolved (e.g. a timed-out attempt whose result straggles
                # in) must not double-complete or resurrect the job.
                return
            execution.finished = time.time()
            execution.seconds = seconds
            execution.cache_stats = dict(cache_stats or {})
            self.executed += 1
            _M_EXECUTED.inc()
            if seconds > 0:
                _M_EXEC_SECONDS.observe(seconds)
            if seconds > 0:
                self._ema_seconds = (
                    seconds
                    if self._ema_seconds == 0.0
                    else 0.3 * seconds + 0.7 * self._ema_seconds
                )
            merge_stats(self.cache_stats, execution.cache_stats)
            if result is not None:
                execution.state = "done"
                execution.result = result
                for report in result.reports.values():
                    for phase, secs in report.phase_seconds().items():
                        self.phase_seconds[phase] = (
                            self.phase_seconds.get(phase, 0.0) + secs
                        )
                for job in execution.jobs:
                    if not job.cancelled:
                        # Each subscriber gets the shared result under its
                        # own label (labels are excluded from the dedup key).
                        job.result = replace(
                            result, label=job.label or result.label
                        )
                        self._emit(job, "done")
            else:
                execution.state = "failed"
                execution.error = error or ServerError(
                    error="InternalError", message="execution failed"
                )
                for job in execution.jobs:
                    if not job.cancelled:
                        self._emit(job, "failed", detail=execution.error.message)
            self._active.pop(execution.key, None)
            hook = self.on_complete
        if hook is not None:
            # Outside the lock: the hook does file I/O (trace export) and
            # must never stall submitters or event streams.
            try:
                hook(execution)
            except Exception:  # noqa: BLE001 - observability must not break jobs
                pass

    # ------------------------------------------------------------------ #
    # Fault accounting (worker supervisor + admission control)
    # ------------------------------------------------------------------ #
    def count_fault(self, name: str, n: int = 1) -> None:
        """Bump an infrastructure-fault counter (shows up in /healthz)."""
        _M_FAULTS.inc(n, kind=name)
        with self._lock:
            self.faults[name] = self.faults.get(name, 0) + n

    def exec_ema(self) -> float:
        """The execution-seconds EMA behind the Retry-After hint."""
        with self._lock:
            return self._ema_seconds

    def note_retry(self, execution: Execution, detail: str) -> None:
        """Emit a non-terminal ``retrying`` event to every live subscriber."""
        with self._lock:
            if execution.state in TERMINAL_STATES:
                return
            execution.attempts += 1
            for job in execution.jobs:
                if not job.cancelled:
                    self._emit(job, "retrying", detail=detail)

    def _retry_after_hint(self, depth: int) -> float:
        # Rough drain-time estimate: queued executions over available
        # workers, paced by the recent average execution time.  Clamped so a
        # cold server (no EMA yet) still gives a sane hint and a deep queue
        # never tells clients to wait for hours.
        per_job = self._ema_seconds or 1.0
        return min(max(depth * per_job / max(self.workers, 1), 1.0), 120.0)

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def job(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel one job; returns it, or ``None`` if unknown.

        Cancelling a subscriber of a shared execution only detaches that
        subscriber.  When the *last* live subscriber of a queued execution is
        cancelled, the execution is dropped from the queue (a running one is
        left to finish — its result still warms the cache).  Terminal jobs
        are returned unchanged.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state in TERMINAL_STATES:
                return job
            job.cancelled = True
            self._emit(job, "cancelled")
            execution = job.execution
            if execution.state == "queued" and all(
                subscriber.cancelled for subscriber in execution.jobs
            ):
                execution.state = "cancelled"
                execution.finished = time.time()
                self._active.pop(execution.key, None)
            return job

    def status(self, job: Job) -> ServerJobStatus:
        with self._lock:
            execution = job.execution
            return ServerJobStatus(
                job_id=job.id,
                state=job.state,
                lane=job.lane,
                label=job.label,
                deduped=job.deduped,
                submitted=job.submitted,
                started=execution.started,
                finished=execution.finished,
                seconds=execution.seconds,
                position=(
                    self._queue.position(execution)
                    if job.state == "queued"
                    else -1
                ),
                error=(
                    execution.error if not job.cancelled else None
                ),
            )

    def job_events(self, job: Job, since: int = 0) -> List[ServerEvent]:
        with self._lock:
            return [event for event in job.events if event.seq > since]

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def queue_depth(self) -> Dict[str, int]:
        with self._lock:
            return self._queue.depth()

    def job_counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in ("queued", "running", "done", "failed", "cancelled")}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts

    def close(self) -> None:
        """Stop accepting work and wake every blocked :meth:`pop`."""
        with self._lock:
            self._closed = True
            self._work.notify_all()
            self.events.notify_all()

    # ------------------------------------------------------------------ #
    def _emit(self, job: Job, event: str, detail: str = "") -> None:
        # Caller holds the lock.
        job.events.append(
            ServerEvent(
                job_id=job.id,
                seq=len(job.events) + 1,
                event=event,
                state=job.state,
                detail=detail,
                ts=time.time(),
            )
        )
        self.events.notify_all()
