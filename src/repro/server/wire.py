"""Wire messages of the analysis server — schema-1 envelopes.

Everything that crosses the HTTP boundary is a registered
:mod:`repro.api.serialize` kind, so client and server speak the exact same
versioned JSON the rest of the toolkit uses for reports:

* :class:`ProjectSpec` — a JSON-able description of a project (named
  workload, mini-C source text, or assembly text, plus annotations/processor/
  entry).  The *server* builds the real :class:`~repro.api.project.Project`
  from it; the spec's content digest is the dedup identity of the project.
* ``AnalysisOptions`` / ``AnalysisRequest`` — the existing facade types gain
  wire forms here (registered kinds), so a remote request carries exactly the
  knobs a local call would.
* :class:`ServerSubmit` / :class:`ServerSubmitReply` — job submission.
* :class:`ServerJobStatus` — the status envelope (``GET /v1/jobs/<id>``).
* :class:`ServerError` — every non-2xx response body.
* :class:`ServerEvent` — one progress event on the streaming endpoint.
* :class:`ServerStats` — the ``/healthz`` payload.

Results need no new kind: a finished job's payload *is* a serialised
:class:`~repro.api.service.AnalysisResult`, bit-identical to a local call
(the schema round-trips exactly — see docs/api.md).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.api import serialize
from repro.api.project import PROCESSORS, Project, ProjectError
from repro.api.serialize import SchemaError, _envelope  # envelope helper
from repro.api.service import AnalysisRequest
from repro.errors import ReproError
from repro.wcet.analyzer import AnalysisOptions

#: Job lanes in descending scheduling priority.  ``interactive`` is meant for
#: a human waiting on the answer, ``batch`` for sweeps and bulk re-analysis.
LANES = ("interactive", "batch")

#: Job lifecycle states (terminal: done / failed / cancelled).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class WireError(ReproError):
    """A malformed or inconsistent wire message."""


def _require_str(value: Any, name: str, optional: bool = False) -> None:
    """Reject non-string field values at the wire boundary.

    The schema loaders only check envelope structure; without a type check a
    submission like ``{"workload": 123}`` would pass validation, crash in a
    worker and surface as a failed job (HTTP 500 on the result route) instead
    of the 400 the client deserves.
    """
    if value is None and optional:
        return
    if not isinstance(value, str):
        raise WireError(
            f"{name} must be a string{' or null' if optional else ''}, "
            f"got {type(value).__name__}"
        )


def _require_bool(value: Any, name: str) -> None:
    if not isinstance(value, bool):
        raise WireError(f"{name} must be a boolean, got {type(value).__name__}")


def _require_positive_number(value: Any, name: str) -> None:
    """Reject non-numeric / non-positive deadline values (``None`` allowed)."""
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(
            f"{name} must be a number or null, got {type(value).__name__}"
        )
    if not value > 0:
        raise WireError(f"{name} must be positive, got {value!r}")


# --------------------------------------------------------------------------- #
# ProjectSpec
# --------------------------------------------------------------------------- #
@dataclass
class ProjectSpec:
    """A serialisable project description the server can rebuild.

    Exactly one of ``workload`` (catalog name), ``source`` (mini-C text) or
    ``assembly`` (textual assembly) must be set.  ``annotations`` is the
    textual annotation format; for workloads it is *merged onto* the
    workload's built-in annotations, mirroring ``repro analyze``.
    """

    workload: Optional[str] = None
    source: Optional[str] = None
    assembly: Optional[str] = None
    entry: Optional[str] = None
    annotations: Optional[str] = None
    processor: str = "simple"
    name: str = ""

    def validate(self) -> None:
        _require_str(self.workload, "ProjectSpec.workload", optional=True)
        _require_str(self.source, "ProjectSpec.source", optional=True)
        _require_str(self.assembly, "ProjectSpec.assembly", optional=True)
        _require_str(self.entry, "ProjectSpec.entry", optional=True)
        _require_str(self.annotations, "ProjectSpec.annotations", optional=True)
        _require_str(self.processor, "ProjectSpec.processor")
        _require_str(self.name, "ProjectSpec.name")
        supplied = [s for s in (self.workload, self.source, self.assembly) if s]
        if len(supplied) != 1:
            raise WireError(
                "a ProjectSpec needs exactly one of workload=, source= or assembly="
            )
        if self.processor not in PROCESSORS:
            raise WireError(
                f"unknown processor {self.processor!r}; available: "
                f"{', '.join(sorted(PROCESSORS))}"
            )

    def digest(self) -> str:
        """Content digest — the dedup identity of this project."""
        payload = json.dumps(asdict(self), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:32]

    def to_project(self, cache="off") -> Project:
        """Build the project server-side (``cache`` is the *server's* policy:
        clients never choose where the server keeps its summary store)."""
        self.validate()
        if self.workload:
            project = Project.from_workload(
                self.workload,
                processor=self.processor,
                cache=cache,
                entry=self.entry,
            )
            if self.annotations:
                from repro.annotations.parser import parse_annotations

                project.annotations = project.annotations.merge(
                    parse_annotations(self.annotations)
                )
            return project
        if self.source:
            return Project.from_source(
                self.source,
                annotations=self.annotations,
                processor=self.processor,
                cache=cache,
                entry=self.entry,
                name=self.name,
            )
        return Project.from_assembly(
            self.assembly,
            annotations=self.annotations,
            processor=self.processor,
            cache=cache,
            entry=self.entry,
            name=self.name,
        )


def _dump_project_spec(spec: ProjectSpec) -> Dict[str, Any]:
    return _envelope("ProjectSpec", asdict(spec))


def _load_project_spec(data: Dict[str, Any]) -> ProjectSpec:
    return ProjectSpec(
        workload=data["workload"],
        source=data["source"],
        assembly=data["assembly"],
        entry=data["entry"],
        annotations=data["annotations"],
        processor=data["processor"],
        name=data["name"],
    )


# --------------------------------------------------------------------------- #
# Wire forms of the facade's AnalysisOptions / AnalysisRequest
# --------------------------------------------------------------------------- #
def _dump_analysis_options(options: AnalysisOptions) -> Dict[str, Any]:
    return _envelope("AnalysisOptions", dict(vars(options)))


def _load_analysis_options(data: Dict[str, Any]) -> AnalysisOptions:
    payload = {k: v for k, v in data.items() if k not in ("schema", "kind")}
    try:
        return AnalysisOptions(**payload)
    except TypeError as exc:
        raise SchemaError(f"serialised AnalysisOptions is malformed: {exc}") from None


def _dump_analysis_request(request: AnalysisRequest) -> Dict[str, Any]:
    return _envelope(
        "AnalysisRequest",
        {
            "entry": request.entry,
            "mode": request.mode,
            "all_modes": request.all_modes,
            "error_scenario": request.error_scenario,
            "options": (
                _dump_analysis_options(request.options)
                if request.options is not None
                else None
            ),
            "check_guidelines": request.check_guidelines,
            "label": request.label,
        },
    )


def _load_analysis_request(data: Dict[str, Any]) -> AnalysisRequest:
    options = data["options"]
    return AnalysisRequest(
        entry=data["entry"],
        mode=data["mode"],
        all_modes=data["all_modes"],
        error_scenario=data["error_scenario"],
        options=(
            serialize.from_json(options, AnalysisOptions)
            if options is not None
            else None
        ),
        check_guidelines=data["check_guidelines"],
        label=data["label"],
    )


def request_digest(spec: ProjectSpec, request: AnalysisRequest) -> str:
    """Dedup key of one (project, request) pair.

    The ``label`` is deliberately excluded: two requests that differ only in
    their label are the same computation — they share one execution and each
    receives a result stamped with its own label.
    """
    payload = json.dumps(
        {
            "project": spec.digest(),
            "entry": request.entry,
            "mode": request.mode,
            "all_modes": request.all_modes,
            "error_scenario": request.error_scenario,
            "options": (
                sorted(vars(request.options).items())
                if request.options is not None
                else None
            ),
            "check_guidelines": request.check_guidelines,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


# --------------------------------------------------------------------------- #
# Submission
# --------------------------------------------------------------------------- #
@dataclass
class ServerSubmit:
    """Body of ``POST /v1/jobs``."""

    project: ProjectSpec
    request: AnalysisRequest = field(default_factory=AnalysisRequest)
    lane: str = "interactive"
    #: Per-job wall-clock deadline in seconds (``None`` = the server's
    #: default, ``--job-timeout``).  When identical submissions share one
    #: execution, the tightest subscriber deadline wins.
    timeout: Optional[float] = None
    #: Optional trace-propagation context (``{"trace_id": ..,
    #: "parent_id": ..}``) from :mod:`repro.obs.trace`: the server parents
    #: its queue-wait/dispatch/worker spans under the client's submit span,
    #: so one exported trace covers the job end-to-end.
    trace: Optional[Dict[str, Optional[str]]] = None

    def validate(self) -> None:
        if not isinstance(self.project, ProjectSpec):
            raise WireError("ServerSubmit.project must be a ProjectSpec envelope")
        if not isinstance(self.request, AnalysisRequest):
            raise WireError("ServerSubmit.request must be an AnalysisRequest envelope")
        self.project.validate()
        request = self.request
        _require_str(request.entry, "AnalysisRequest.entry", optional=True)
        _require_str(request.mode, "AnalysisRequest.mode", optional=True)
        _require_str(
            request.error_scenario, "AnalysisRequest.error_scenario", optional=True
        )
        _require_str(request.label, "AnalysisRequest.label")
        _require_bool(request.all_modes, "AnalysisRequest.all_modes")
        _require_bool(request.check_guidelines, "AnalysisRequest.check_guidelines")
        _require_positive_number(self.timeout, "ServerSubmit.timeout")
        if self.trace is not None:
            if not isinstance(self.trace, dict):
                raise WireError(
                    "ServerSubmit.trace must be an object or null, got "
                    f"{type(self.trace).__name__}"
                )
            for key, value in self.trace.items():
                _require_str(key, "ServerSubmit.trace key")
                _require_str(value, f"ServerSubmit.trace[{key!r}]", optional=True)
        if self.lane not in LANES:
            raise WireError(f"unknown lane {self.lane!r}; available: {LANES}")


def _dump_server_submit(submit: ServerSubmit) -> Dict[str, Any]:
    return _envelope(
        "ServerSubmit",
        {
            "project": _dump_project_spec(submit.project),
            "request": _dump_analysis_request(submit.request),
            "lane": submit.lane,
            "timeout": submit.timeout,
            "trace": dict(submit.trace) if submit.trace is not None else None,
        },
    )


def _load_server_submit(data: Dict[str, Any]) -> ServerSubmit:
    trace = data.get("trace")
    return ServerSubmit(
        project=serialize.from_json(data["project"], ProjectSpec),
        request=serialize.from_json(data["request"], AnalysisRequest),
        lane=data["lane"],
        # Absent in pre-fault-tolerance envelopes: default, don't reject.
        timeout=data.get("timeout"),
        # Absent pre-observability; dict-ness is enforced in validate().
        trace=dict(trace) if isinstance(trace, dict) else trace,
    )


@dataclass
class ServerSubmitReply:
    """Body of a successful ``POST /v1/jobs`` response."""

    job_id: str
    state: str
    lane: str
    #: True when this submission joined an already queued/running execution
    #: of the identical request (content-addressed dedup).
    deduped: bool = False
    #: Queue position at submission time (0 = next to run; -1 = not queued).
    position: int = -1


def _dump_server_submit_reply(reply: ServerSubmitReply) -> Dict[str, Any]:
    return _envelope("ServerSubmitReply", asdict(reply))


def _load_server_submit_reply(data: Dict[str, Any]) -> ServerSubmitReply:
    return ServerSubmitReply(
        job_id=data["job_id"],
        state=data["state"],
        lane=data["lane"],
        deduped=data["deduped"],
        position=data["position"],
    )


# --------------------------------------------------------------------------- #
# Status / error / events / stats
# --------------------------------------------------------------------------- #
@dataclass
class ServerError:
    """Every non-2xx HTTP response carries one of these as its body."""

    error: str
    message: str
    job_id: Optional[str] = None
    #: Backpressure hint in seconds (mirrors the ``Retry-After`` header on
    #: 429 replies); ``None`` everywhere else.
    retry_after: Optional[float] = None


def _dump_server_error(error: ServerError) -> Dict[str, Any]:
    return _envelope("ServerError", asdict(error))


def _load_server_error(data: Dict[str, Any]) -> ServerError:
    return ServerError(
        error=data["error"],
        message=data["message"],
        job_id=data["job_id"],
        # Absent in pre-fault-tolerance envelopes: default, don't reject.
        retry_after=data.get("retry_after"),
    )


@dataclass
class ServerJobStatus:
    """Body of ``GET /v1/jobs/<id>`` (and of a cancel response)."""

    job_id: str
    state: str
    lane: str
    label: str = ""
    deduped: bool = False
    #: Seconds since the epoch (server clock); 0.0 = not yet.
    submitted: float = 0.0
    started: float = 0.0
    finished: float = 0.0
    #: Wall-clock seconds the execution took (0.0 until finished).
    seconds: float = 0.0
    #: Queue position while queued (0 = next), -1 otherwise.
    position: int = -1
    error: Optional[ServerError] = None


def _dump_server_job_status(status: ServerJobStatus) -> Dict[str, Any]:
    return _envelope(
        "ServerJobStatus",
        {
            "job_id": status.job_id,
            "state": status.state,
            "lane": status.lane,
            "label": status.label,
            "deduped": status.deduped,
            "submitted": status.submitted,
            "started": status.started,
            "finished": status.finished,
            "seconds": status.seconds,
            "position": status.position,
            "error": (
                _dump_server_error(status.error)
                if status.error is not None
                else None
            ),
        },
    )


def _load_server_job_status(data: Dict[str, Any]) -> ServerJobStatus:
    error = data["error"]
    return ServerJobStatus(
        job_id=data["job_id"],
        state=data["state"],
        lane=data["lane"],
        label=data["label"],
        deduped=data["deduped"],
        submitted=data["submitted"],
        started=data["started"],
        finished=data["finished"],
        seconds=data["seconds"],
        position=data["position"],
        error=serialize.from_json(error, ServerError) if error is not None else None,
    )


@dataclass
class ServerEvent:
    """One line on the ``GET /v1/jobs/<id>/events`` stream."""

    job_id: str
    #: Monotonic per-job sequence number (resume streams with ``?since=``).
    seq: int
    #: ``queued`` / ``started`` / ``done`` / ``failed`` / ``cancelled``.
    event: str
    state: str
    detail: str = ""
    #: Server clock, seconds since the epoch.
    ts: float = 0.0


def _dump_server_event(event: ServerEvent) -> Dict[str, Any]:
    return _envelope("ServerEvent", asdict(event))


def _load_server_event(data: Dict[str, Any]) -> ServerEvent:
    return ServerEvent(
        job_id=data["job_id"],
        seq=data["seq"],
        event=data["event"],
        state=data["state"],
        detail=data["detail"],
        ts=data["ts"],
    )


@dataclass
class ServerStats:
    """Body of ``GET /healthz``."""

    uptime_seconds: float = 0.0
    workers: int = 1
    #: Jobs by lifecycle state (counts over the server's lifetime).
    jobs: Dict[str, int] = field(default_factory=dict)
    #: Currently queued executions per lane.
    queue_depth: Dict[str, int] = field(default_factory=dict)
    #: Submissions that joined an existing execution instead of queueing one.
    dedup_hits: int = 0
    submitted: int = 0
    executed: int = 0
    #: Summary-cache counters aggregated over every finished execution.
    cache: Dict[str, int] = field(default_factory=dict)
    #: Analysis-phase wall-clock totals aggregated over finished executions.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Infrastructure-fault counters: ``worker_restarts``, ``job_timeouts``,
    #: ``job_retries``, ``rejections`` (admission control).
    faults: Dict[str, int] = field(default_factory=dict)
    #: Admission-control bound on queued executions per lane (``None`` =
    #: unbounded).
    queue_limit: Optional[int] = None
    #: Exponential moving average of execution wall-clock seconds — the
    #: signal behind the 429 Retry-After hint, now exposed directly.
    exec_ema_seconds: float = 0.0
    #: Flat counter/gauge snapshot from the process metrics registry
    #: (series name, Prometheus label syntax → value); the full exposition
    #: lives on ``GET /metrics``.
    metrics: Dict[str, float] = field(default_factory=dict)


def _dump_server_stats(stats: ServerStats) -> Dict[str, Any]:
    return _envelope(
        "ServerStats",
        {
            "uptime_seconds": stats.uptime_seconds,
            "workers": stats.workers,
            "jobs": dict(stats.jobs),
            "queue_depth": dict(stats.queue_depth),
            "dedup_hits": stats.dedup_hits,
            "submitted": stats.submitted,
            "executed": stats.executed,
            "cache": dict(stats.cache),
            "phase_seconds": dict(stats.phase_seconds),
            "faults": dict(stats.faults),
            "queue_limit": stats.queue_limit,
            "exec_ema_seconds": stats.exec_ema_seconds,
            "metrics": dict(stats.metrics),
        },
    )


def _load_server_stats(data: Dict[str, Any]) -> ServerStats:
    return ServerStats(
        uptime_seconds=data["uptime_seconds"],
        workers=data["workers"],
        jobs=dict(data["jobs"]),
        queue_depth=dict(data["queue_depth"]),
        dedup_hits=data["dedup_hits"],
        submitted=data["submitted"],
        executed=data["executed"],
        cache=dict(data["cache"]),
        phase_seconds=dict(data["phase_seconds"]),
        # Absent in pre-fault-tolerance envelopes: default, don't reject.
        faults=dict(data.get("faults", {})),
        queue_limit=data.get("queue_limit"),
        # Absent pre-observability: default, don't reject.
        exec_ema_seconds=data.get("exec_ema_seconds", 0.0),
        metrics=dict(data.get("metrics", {})),
    )


# --------------------------------------------------------------------------- #
# Registration with the schema dispatcher
# --------------------------------------------------------------------------- #
_WIRE_KINDS: List = [
    (ProjectSpec, _dump_project_spec, _load_project_spec),
    (AnalysisOptions, _dump_analysis_options, _load_analysis_options),
    (AnalysisRequest, _dump_analysis_request, _load_analysis_request),
    (ServerSubmit, _dump_server_submit, _load_server_submit),
    (ServerSubmitReply, _dump_server_submit_reply, _load_server_submit_reply),
    (ServerError, _dump_server_error, _load_server_error),
    (ServerJobStatus, _dump_server_job_status, _load_server_job_status),
    (ServerEvent, _dump_server_event, _load_server_event),
    (ServerStats, _dump_server_stats, _load_server_stats),
]

for _cls, _dumper, _loader in _WIRE_KINDS:
    serialize.register(_cls, _cls.__name__, _dumper, _loader)
del _cls, _dumper, _loader


__all__ = [
    "JOB_STATES",
    "LANES",
    "TERMINAL_STATES",
    "ProjectSpec",
    "ProjectError",
    "ServerError",
    "ServerEvent",
    "ServerJobStatus",
    "ServerStats",
    "ServerSubmit",
    "ServerSubmitReply",
    "WireError",
    "request_digest",
]
