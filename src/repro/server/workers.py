"""The server's worker pool: supervised workers, warm services, one store.

Two execution modes behind one interface:

* ``jobs <= 1`` — *inline*: one dispatcher thread executes analyses in the
  server process, keeping warm :class:`~repro.api.service.AnalysisService`
  instances (built program + in-process summary cache) across requests.
  Deadlines are advisory here (there is no process boundary to kill across)
  and crash supervision does not apply — production deployments that need
  fault isolation should run ``jobs >= 2``;
* ``jobs > 1`` — *supervised pool*: each dispatcher thread owns one worker
  *process* connected by a pipe.  The dispatcher enforces a per-job
  wall-clock deadline (``Execution.timeout``, defaulting to the server's
  ``--job-timeout``), detects worker death (EOF on the pipe) and hung jobs
  (deadline expiry), kills and respawns the worker, and classifies the
  failure: deterministic :class:`~repro.errors.ReproError`\\ s fail the job
  immediately, infrastructure faults get a bounded retry with exponential
  backoff before surfacing a typed ``ServerError`` (``WorkerCrashed`` /
  ``JobTimeout``).  Every worker keeps its own warm-service table and
  in-process cache tier; all share the server's on-disk
  :class:`~repro.cache.store.SummaryStore` (safe under the store's advisory
  file locking).

Work and results cross the process boundary as wire JSON
(:mod:`repro.server.wire` / :mod:`repro.api.serialize`), which round-trips
exactly — a served result is bit-identical to a direct facade call.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
import traceback
from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.analysis.summaries import SummaryCache
from repro.api import serialize
from repro.api.service import AnalysisRequest, AnalysisResult, AnalysisService
from repro.cache import SummaryStore
from repro.errors import ReproError
from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.server.queue import Execution, Scheduler
from repro.server.wire import ProjectSpec, ServerError
from repro.wcet import batch

#: Warm AnalysisService instances kept per worker (LRU-evicted beyond this).
WARM_SERVICES_PER_WORKER = 8

#: Server-default per-job wall-clock deadline (seconds); ``--job-timeout``.
DEFAULT_JOB_TIMEOUT = 300.0

#: Bounded-retry policy for infrastructure faults: a crashed worker is worth
#: more attempts than a deadline hit (a crash is usually environmental — OOM
#: kill, segfault — while a timeout often means the job itself is too slow).
CRASH_RETRIES = 2
TIMEOUT_RETRIES = 1

#: Base of the exponential backoff between retry attempts (seconds).
RETRY_BACKOFF = 0.1

#: How long a graceful worker stop waits before escalating to SIGKILL.
WORKER_STOP_GRACE = 5.0


class _WarmServices:
    """Per-process table of warm services keyed by project-spec digest."""

    def __init__(self, cache: SummaryCache, limit: int = WARM_SERVICES_PER_WORKER):
        self.cache = cache
        self.limit = limit
        self._services: "OrderedDict[str, AnalysisService]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def service(self, spec: ProjectSpec) -> AnalysisService:
        key = spec.digest()
        service = self._services.get(key)
        if service is not None:
            self.hits += 1
            self._services.move_to_end(key)
            return service
        self.misses += 1
        # The worker's cache owns the persistent store; the project itself
        # must not resolve a second one (or fall back to ambient defaults).
        project = spec.to_project(cache="off")
        project.build()  # compile once, while we're warming up anyway
        service = AnalysisService(project, summary_cache=self.cache)
        self._services[key] = service
        while len(self._services) > self.limit:
            self._services.popitem(last=False)
        return service


def _maybe_inject_fault(payload: Tuple[dict, dict, int]) -> None:
    """Chaos hook: fire an injected fault for this job, if a plan is armed.

    The plan travels in the ``REPRO_FAULTS`` environment variable so forked
    worker processes inherit it; the import is lazy so production servers
    (no plan) never touch :mod:`repro.testing` and pay one ``os.environ``
    lookup per job.
    """
    if not os.environ.get("REPRO_FAULTS"):
        return
    from repro.testing import faults

    faults.on_job(payload)


def _serve(warm: _WarmServices, payload: tuple, ship_obs: bool = False) -> tuple:
    """Execute one wire-encoded (spec, request, attempt[, trace]) job.

    Never raises.  Returns ``(result_json, error, delta, seconds, obs)``;
    with ``ship_obs`` (worker-process mode), ``obs`` carries the job's
    serialised spans and the registry's metric delta back over the pipe —
    the supervisor merges both into the server process.  Inline mode records
    straight into the server's own tracer/registry and ships ``None``.
    """
    spec_json, request_json, _attempt = payload[0], payload[1], payload[2]
    trace_ctx = payload[3] if len(payload) > 3 else None
    metrics_before = obs_metrics.REGISTRY.dump() if ship_obs else None
    local_tracer = None
    if trace_ctx is not None and obs_trace.active() is None:
        # Worker process: a per-job tracer continues the propagated trace.
        local_tracer = obs_trace.Tracer(trace_id=trace_ctx.get("trace_id"))
        obs_trace.install(local_tracer)
    exec_span = (
        obs_trace.begin("worker-execute", parent=trace_ctx)
        if trace_ctx is not None
        else None
    )
    if exec_span is not None:
        exec_span.set("attempt", _attempt)
    before = warm.cache.stats()
    started = time.perf_counter()
    try:
        _maybe_inject_fault(payload)
        spec = serialize.from_json(spec_json, ProjectSpec)
        request = serialize.from_json(request_json, AnalysisRequest)
        result = warm.service(spec).analyze(request)
        result_json = result.to_json()
        error = None
    except ReproError as exc:
        result_json = None
        error = (type(exc).__name__, str(exc))
    except Exception as exc:  # noqa: BLE001 - a worker must never die silently
        result_json = None
        error = (type(exc).__name__, f"{exc}\n{traceback.format_exc(limit=5)}")
    seconds = time.perf_counter() - started
    after = warm.cache.stats()
    delta = {key: after[key] - before.get(key, 0) for key in after}
    flush_span = None if exec_span is None else obs_trace.begin("cache-flush")
    try:
        warm.cache.flush()
    except Exception as exc:  # noqa: BLE001 - flush failure must not kill the job
        # The result is already computed; a store hiccup (disk full, a
        # quarantined bucket) only costs cache warmth, never the answer.
        if error is None:
            delta["flush_errors"] = delta.get("flush_errors", 0) + 1
    obs_trace.end(flush_span)
    obs_trace.end(exec_span)
    obs = None
    if local_tracer is not None:
        obs_trace.install(None)
    if ship_obs:
        obs = {
            "spans": (
                [span.to_json() for span in local_tracer.drain()]
                if local_tracer is not None
                else []
            ),
            "metrics": obs_metrics.diff(metrics_before, obs_metrics.REGISTRY.dump()),
        }
    return result_json, error, delta, seconds, obs


# --------------------------------------------------------------------------- #
# Worker-process side
# --------------------------------------------------------------------------- #
def _worker_main(
    conn: "multiprocessing.connection.Connection", cache_dir: Optional[str]
) -> None:
    """Supervised worker main loop: recv payload -> serve -> send outcome.

    A ``None`` payload is the graceful-stop sentinel.  Anything that escapes
    here (it should not — ``_serve`` never raises) ends the process, which
    the supervisor observes as a crash and handles.
    """
    if os.environ.get("REPRO_FAULTS"):
        # Mark this process as a supervised worker so seeded kill/hang
        # injectors fire here and never in the server (or a client) process.
        from repro.testing import faults

        faults.mark_worker()
    # A forked worker inherits the server's installed tracer; spans recorded
    # into that copy would silently vanish.  Drop it so _serve installs its
    # own per-job tracer and ships spans back over the pipe instead.
    obs_trace.install(None)
    # Reuse the batch pool's initialiser so worker cache wiring has exactly
    # one implementation, then layer the warm-service table on top of it.
    batch._init_batch_worker(cache_dir)
    warm = _WarmServices(batch._WORKER_CACHE)
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            return  # supervisor went away
        if payload is None:
            return
        try:
            conn.send(_serve(warm, payload, ship_obs=True))
        except (BrokenPipeError, OSError):
            return


class _SupervisedWorker:
    """One worker process plus the pipe its dispatcher supervises it over.

    The supervisor side never blocks without a deadline: ``run`` polls the
    pipe with the job's remaining budget, treats EOF as worker death, and
    kills/respawns on deadline expiry.  Respawn happens lazily in
    :meth:`ensure` so a dying worker costs the *next* job a warm-up, not an
    unbounded stall for the current one.
    """

    def __init__(self, index: int, cache_dir: Optional[str]):
        self.index = index
        self.cache_dir = cache_dir
        self._process: Optional[multiprocessing.Process] = None
        self._conn: Optional[multiprocessing.connection.Connection] = None

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    def ensure(self) -> None:
        """Start (or restart) the worker process if it is not alive."""
        if self._process is not None and self._process.is_alive():
            return
        self._discard()
        parent_conn, child_conn = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_worker_main,
            args=(child_conn, self.cache_dir),
            name=f"repro-server-worker-{self.index}",
            daemon=True,
        )
        process.start()
        # Close our copy of the child end: EOF on ``parent_conn`` then means
        # the worker process is gone, which is exactly the signal we poll for.
        child_conn.close()
        self._process = process
        self._conn = parent_conn
        obs_logs.get().log("worker_spawn", worker=self.index, worker_pid=process.pid)

    def run(self, payload: tuple, timeout: float) -> Tuple[str, object]:
        """Run one job; returns ``(status, value)``.

        * ``("ok", outcome)`` — the worker answered within the deadline;
        * ``("crashed", detail)`` — the worker process died mid-job;
        * ``("timeout", detail)`` — deadline expired; the worker was killed.
        """
        assert self._conn is not None
        try:
            self._conn.send(payload)
        except (BrokenPipeError, OSError) as exc:
            self.kill()
            return ("crashed", f"worker pipe closed on send: {exc}")
        try:
            if not self._conn.poll(timeout):
                self.kill()
                return (
                    "timeout",
                    f"job exceeded its {timeout:.1f}s deadline; worker killed",
                )
            outcome = self._conn.recv()
        except (EOFError, OSError):
            exitcode = self._process.exitcode if self._process is not None else None
            self.kill()
            return ("crashed", f"worker process died mid-job (exitcode={exitcode})")
        return ("ok", outcome)

    def kill(self) -> None:
        """SIGKILL the worker and drop the pipe (respawn happens in ensure)."""
        if self._process is not None and self._process.is_alive():
            obs_logs.get().log(
                "worker_kill", worker=self.index, worker_pid=self._process.pid
            )
            self._process.kill()
            self._process.join(timeout=WORKER_STOP_GRACE)
        self._discard()

    def stop(self) -> None:
        """Graceful stop: send the sentinel, then escalate to SIGKILL."""
        if self._process is None:
            return
        try:
            if self._conn is not None:
                self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=WORKER_STOP_GRACE)
        self.kill()

    def _discard(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        self._conn = None
        self._process = None


# --------------------------------------------------------------------------- #
class WorkerPool:
    """Pulls executions from a :class:`Scheduler` and runs them to completion."""

    def __init__(
        self,
        scheduler: Scheduler,
        jobs: Optional[int] = 1,
        cache_dir: Optional[str] = None,
        job_timeout: float = DEFAULT_JOB_TIMEOUT,
        crash_retries: int = CRASH_RETRIES,
        timeout_retries: int = TIMEOUT_RETRIES,
    ):
        self.scheduler = scheduler
        self.jobs = batch.resolve_jobs(jobs)
        self.cache_dir = cache_dir
        self.job_timeout = job_timeout
        self.crash_retries = crash_retries
        self.timeout_retries = timeout_retries
        self._workers: List[Optional[_SupervisedWorker]] = []
        self._threads: list = []
        self._inline_warm: Optional[_WarmServices] = None
        self._started = False
        self._closing = False
        scheduler.workers = max(self.jobs, 1)

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.jobs > 1:
            self._workers = [
                _SupervisedWorker(index, self.cache_dir) for index in range(self.jobs)
            ]
        else:
            store = SummaryStore(self.cache_dir) if self.cache_dir else None
            self._inline_warm = _WarmServices(SummaryCache(store=store))
            self._workers = [None]
        for index, worker in enumerate(self._workers):
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(worker,),
                name=f"repro-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _dispatch_loop(self, worker: Optional[_SupervisedWorker]) -> None:
        while True:
            execution = self.scheduler.pop()
            if execution is None:
                if worker is not None:
                    worker.stop()
                return
            self._run(execution, worker)

    # ------------------------------------------------------------------ #
    def _run(
        self, execution: Execution, worker: Optional[_SupervisedWorker]
    ) -> None:
        timeout = execution.timeout if execution.timeout is not None else self.job_timeout
        logger = obs_logs.get()
        trace_id = execution.trace.get("trace_id") if execution.trace else None
        # The dispatch span covers every attempt (retries included); the
        # worker-execute spans recorded inside _serve parent under it.
        dispatch_span = (
            obs_trace.begin(
                "dispatch",
                parent=execution.trace,
                attrs={"lane": execution.lane, "execution_key": execution.key},
            )
            if execution.trace is not None
            else None
        )
        trace_ctx = (
            dispatch_span.context() if dispatch_span is not None else execution.trace
        )

        def finish_dispatch(attempts: int) -> None:
            # The span must land in the tracer *before* complete() runs the
            # trace-dir export hook, or it would miss its own trace's file.
            if dispatch_span is not None:
                dispatch_span.set("attempts", attempts)
                obs_trace.end(dispatch_span)

        attempt = 0
        while True:
            payload = (
                serialize.to_json(execution.spec),
                serialize.to_json(execution.request),
                attempt,
                trace_ctx,
            )
            status, detail = self._attempt(payload, worker, timeout)
            if status == "ok":
                result_json, error, delta, seconds, obs = detail
                self._merge_obs(obs)
                finish_dispatch(attempt + 1)
                if result_json is not None:
                    result: Optional[AnalysisResult] = serialize.from_json(result_json)
                    self.scheduler.complete(
                        execution, result=result, cache_stats=delta, seconds=seconds
                    )
                    logger.log(
                        "job_done",
                        execution_key=execution.key,
                        trace_id=trace_id,
                        seconds=round(seconds, 6),
                        attempts=attempt + 1,
                    )
                else:
                    # Deterministic failure (ReproError or a bug in the
                    # analysis itself): retrying would reproduce it exactly,
                    # so the job fails now with the original error type.
                    kind, message = error
                    self.scheduler.complete(
                        execution,
                        error=ServerError(error=kind, message=message),
                        cache_stats=delta,
                        seconds=seconds,
                    )
                    logger.log(
                        "job_failed",
                        execution_key=execution.key,
                        trace_id=trace_id,
                        error=kind,
                        attempts=attempt + 1,
                    )
                return
            # Infrastructure fault: bounded retry with exponential backoff,
            # unless the server is draining (shutdown must not be delayed by
            # backoff sleeps for work that will be surfaced as failed anyway).
            if status == "crashed":
                self.scheduler.count_fault("worker_restarts")
                budget = self.crash_retries
                kind = "WorkerCrashed"
            else:
                self.scheduler.count_fault("job_timeouts")
                budget = self.timeout_retries
                kind = "JobTimeout"
            logger.log(
                "job_fault",
                execution_key=execution.key,
                trace_id=trace_id,
                kind=kind,
                attempt=attempt + 1,
                detail=str(detail),
            )
            if attempt < budget and not self._closing:
                self.scheduler.count_fault("job_retries")
                self.scheduler.note_retry(
                    execution, detail=f"attempt {attempt + 1} failed: {detail}"
                )
                time.sleep(RETRY_BACKOFF * (2 ** attempt))
                attempt += 1
                continue
            finish_dispatch(attempt + 1)
            self.scheduler.complete(
                execution,
                error=ServerError(
                    error=kind,
                    message=f"{detail} (after {attempt + 1} attempt(s))",
                ),
            )
            logger.log(
                "job_failed",
                execution_key=execution.key,
                trace_id=trace_id,
                error=kind,
                attempts=attempt + 1,
            )
            return

    @staticmethod
    def _merge_obs(obs: Optional[dict]) -> None:
        """Fold a worker's shipped spans/metric deltas into this process."""
        if not obs:
            return
        spans = obs.get("spans")
        if spans:
            tracer = obs_trace.active()
            if tracer is not None:
                tracer.add(spans)
        delta = obs.get("metrics")
        if delta:
            obs_metrics.REGISTRY.merge(delta)

    def _attempt(
        self,
        payload: tuple,
        worker: Optional[_SupervisedWorker],
        timeout: float,
    ) -> Tuple[str, object]:
        if worker is None:
            # Inline mode: the dispatcher thread executes the job itself.
            # ``_serve`` never raises, so there is nothing to supervise —
            # deadlines are advisory and crashes take the server with them.
            return ("ok", _serve(self._inline_warm, payload))
        try:
            worker.ensure()
        except Exception as exc:  # spawn failure (fd/memory exhaustion)
            return ("crashed", f"worker respawn failed: {exc}")
        return worker.run(payload, timeout)

    # ------------------------------------------------------------------ #
    # Introspection (chaos harness + /healthz)
    # ------------------------------------------------------------------ #
    def alive_dispatchers(self) -> int:
        return sum(1 for thread in self._threads if thread.is_alive())

    def worker_pids(self) -> List[int]:
        return [
            worker.pid
            for worker in self._workers
            if worker is not None and worker.pid is not None
        ]

    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True) -> None:
        """Stop dispatching (the scheduler must already be closed)."""
        self._closing = True
        for thread in self._threads:
            if wait:
                thread.join(timeout=30)
        for worker in self._workers:
            if worker is not None:
                worker.stop()
        if self._inline_warm is not None:
            try:
                self._inline_warm.cache.flush()
            except Exception:  # noqa: BLE001 - drain must finish regardless
                pass
