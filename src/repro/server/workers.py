"""The server's worker pool: warm services per worker, one shared store.

Two execution modes behind one interface:

* ``jobs <= 1`` — *inline*: one dispatcher thread executes analyses in the
  server process, keeping warm :class:`~repro.api.service.AnalysisService`
  instances (built program + in-process summary cache) across requests;
* ``jobs > 1`` — *pool*: ``jobs`` worker *processes* (the same
  :mod:`multiprocessing` plumbing :func:`repro.wcet.batch.analyze_batch`
  uses, including its worker initialiser), each keeping its own warm-service
  table and in-process cache tier, all sharing the server's on-disk
  :class:`~repro.cache.store.SummaryStore` (safe under the store's advisory
  file locking).

Work and results cross the process boundary as wire JSON
(:mod:`repro.server.wire` / :mod:`repro.api.serialize`), which round-trips
exactly — a served result is bit-identical to a direct facade call.
"""

from __future__ import annotations

import multiprocessing.pool
import threading
import time
import traceback
from collections import OrderedDict
from typing import Optional, Tuple

from repro.analysis.summaries import SummaryCache
from repro.api import serialize
from repro.api.service import AnalysisRequest, AnalysisResult, AnalysisService
from repro.cache import SummaryStore
from repro.errors import ReproError
from repro.server.queue import Execution, Scheduler
from repro.server.wire import ProjectSpec, ServerError
from repro.wcet import batch

#: Warm AnalysisService instances kept per worker (LRU-evicted beyond this).
WARM_SERVICES_PER_WORKER = 8


class _WarmServices:
    """Per-process table of warm services keyed by project-spec digest."""

    def __init__(self, cache: SummaryCache, limit: int = WARM_SERVICES_PER_WORKER):
        self.cache = cache
        self.limit = limit
        self._services: "OrderedDict[str, AnalysisService]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def service(self, spec: ProjectSpec) -> AnalysisService:
        key = spec.digest()
        service = self._services.get(key)
        if service is not None:
            self.hits += 1
            self._services.move_to_end(key)
            return service
        self.misses += 1
        # The worker's cache owns the persistent store; the project itself
        # must not resolve a second one (or fall back to ambient defaults).
        project = spec.to_project(cache="off")
        project.build()  # compile once, while we're warming up anyway
        service = AnalysisService(project, summary_cache=self.cache)
        self._services[key] = service
        while len(self._services) > self.limit:
            self._services.popitem(last=False)
        return service


def _serve(warm: _WarmServices, payload: Tuple[dict, dict]) -> tuple:
    """Execute one wire-encoded (spec, request) pair; never raises."""
    spec_json, request_json = payload
    before = warm.cache.stats()
    started = time.perf_counter()
    try:
        spec = serialize.from_json(spec_json, ProjectSpec)
        request = serialize.from_json(request_json, AnalysisRequest)
        result = warm.service(spec).analyze(request)
        result_json = result.to_json()
        error = None
    except ReproError as exc:
        result_json = None
        error = (type(exc).__name__, str(exc))
    except Exception as exc:  # noqa: BLE001 - a worker must never die silently
        result_json = None
        error = (type(exc).__name__, f"{exc}\n{traceback.format_exc(limit=5)}")
    seconds = time.perf_counter() - started
    after = warm.cache.stats()
    delta = {key: after[key] - before.get(key, 0) for key in after}
    warm.cache.flush()
    return result_json, error, delta, seconds


# --------------------------------------------------------------------------- #
# Process-pool side (module globals are per worker process)
# --------------------------------------------------------------------------- #
_WORKER_WARM: Optional[_WarmServices] = None


def _init_server_worker(cache_dir: Optional[str]) -> None:
    # Reuse the batch pool's initialiser so worker cache wiring has exactly
    # one implementation, then layer the warm-service table on top of it.
    global _WORKER_WARM
    batch._init_batch_worker(cache_dir)
    _WORKER_WARM = _WarmServices(batch._WORKER_CACHE)


def _serve_in_worker(payload: Tuple[dict, dict]) -> tuple:
    assert _WORKER_WARM is not None
    return _serve(_WORKER_WARM, payload)


# --------------------------------------------------------------------------- #
class WorkerPool:
    """Pulls executions from a :class:`Scheduler` and runs them to completion."""

    def __init__(
        self,
        scheduler: Scheduler,
        jobs: Optional[int] = 1,
        cache_dir: Optional[str] = None,
    ):
        self.scheduler = scheduler
        self.jobs = batch.resolve_jobs(jobs)
        self.cache_dir = cache_dir
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._threads: list = []
        self._inline_warm: Optional[_WarmServices] = None
        self._started = False

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        if self.jobs > 1:
            self._pool = multiprocessing.Pool(
                processes=self.jobs,
                initializer=_init_server_worker,
                initargs=(self.cache_dir,),
            )
        else:
            store = SummaryStore(self.cache_dir) if self.cache_dir else None
            self._inline_warm = _WarmServices(SummaryCache(store=store))
        dispatchers = self.jobs if self.jobs > 1 else 1
        for index in range(dispatchers):
            thread = threading.Thread(
                target=self._dispatch_loop, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _dispatch_loop(self) -> None:
        while True:
            execution = self.scheduler.pop()
            if execution is None:
                return
            self._run(execution)

    def _run(self, execution: Execution) -> None:
        payload = (
            serialize.to_json(execution.spec),
            serialize.to_json(execution.request),
        )
        try:
            if self._pool is not None:
                result_json, error, delta, seconds = self._pool.apply(
                    _serve_in_worker, (payload,)
                )
            else:
                result_json, error, delta, seconds = _serve(self._inline_warm, payload)
        except Exception as exc:  # pool torn down mid-flight, etc.
            result_json, error, delta, seconds = (
                None,
                (type(exc).__name__, str(exc)),
                {},
                0.0,
            )
        if result_json is not None:
            result: Optional[AnalysisResult] = serialize.from_json(result_json)
            self.scheduler.complete(
                execution, result=result, cache_stats=delta, seconds=seconds
            )
        else:
            kind, message = error
            self.scheduler.complete(
                execution,
                error=ServerError(error=kind, message=message),
                cache_stats=delta,
                seconds=seconds,
            )

    # ------------------------------------------------------------------ #
    def shutdown(self, wait: bool = True) -> None:
        """Stop dispatching (the scheduler must already be closed)."""
        for thread in self._threads:
            if wait:
                thread.join(timeout=30)
        if self._pool is not None:
            self._pool.close()
            if wait:
                self._pool.join()
            self._pool = None
        if self._inline_warm is not None:
            self._inline_warm.cache.flush()
