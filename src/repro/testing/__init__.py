"""Differential soundness harness for the WCET analyzer.

The paper's central claim is that the static WCET bound is *sound*: no
concrete execution of an analysable program may ever take longer than the
bound (and, symmetrically, never finish faster than the BCET bound).  The
seed repository exercised that invariant on ~11 hand-written workloads; this
package turns it into a machine-checked property over arbitrarily many
*generated* programs:

* :mod:`repro.testing.generator` — a seeded, grammar-driven mini-C program
  generator.  Every emitted program is well typed, terminates, stays within
  the guideline-conformant subset the analyzer handles end to end (bounded
  loops, acyclic calls, in-bounds array accesses), and carries the loop-bound
  / argument-range annotations the analysis needs.
* :mod:`repro.testing.oracle` — the differential oracle.  It pushes each
  program through the full static pipeline (mini-C → IR → CFG → value/loop
  analysis → cache/pipeline → IPET) and replays it in the concrete
  interpreter over systematically enumerated input vectors, asserting

      BCET bound <= observed cycles <= WCET bound

  for every program/input pair, that declared loop bounds are never exceeded
  at run time, and that blocks the analysis reports unreachable are never
  executed.
* :mod:`repro.testing.shrink` — a delta-debugging shrinker that minimises a
  violating program before it is reported or checked into the corpus.
* :mod:`repro.testing.corpus` — the on-disk regression-seed format
  (``tests/corpus/*.json``): once a generated program exposes a bug, its
  minimised form is saved and replayed by the test suite forever after.

Run a quick sweep from the command line::

    PYTHONPATH=src python -m repro sweep --count 25 --base-seed 1234
"""

from repro.testing.generator import (
    FeatureMix,
    GeneratedCase,
    ProgramGenerator,
    generate_case,
    render_case,
)
from repro.testing.oracle import (
    DifferentialOracle,
    OracleConfig,
    OracleResult,
    RunOutcome,
    Violation,
    check_case,
)
from repro.testing.shrink import Shrinker, shrink_case
from repro.testing.corpus import CorpusCase, default_corpus_dir, load_corpus, save_case
from repro.testing.sweep import SweepResult, resolve_jobs, run_sweep
from repro.testing.fuzz import (
    FuzzPreset,
    FuzzSummary,
    FuzzViolation,
    WireFuzzSummary,
    WireViolation,
    default_presets,
    run_fuzz,
    run_wire_fuzz,
)

__all__ = [
    "FeatureMix",
    "GeneratedCase",
    "ProgramGenerator",
    "generate_case",
    "render_case",
    "DifferentialOracle",
    "OracleConfig",
    "OracleResult",
    "RunOutcome",
    "Violation",
    "check_case",
    "Shrinker",
    "shrink_case",
    "CorpusCase",
    "default_corpus_dir",
    "load_corpus",
    "save_case",
    "SweepResult",
    "resolve_jobs",
    "run_sweep",
    "FuzzPreset",
    "FuzzSummary",
    "FuzzViolation",
    "WireFuzzSummary",
    "WireViolation",
    "default_presets",
    "run_fuzz",
    "run_wire_fuzz",
]
