"""Deprecated entry point: ``python -m repro.testing``.

The differential sweep CLI moved to the unified command line —
``python -m repro sweep`` (see :mod:`repro.api.cli`).  This shim forwards
every argument unchanged (the flag surface is identical) and emits a
:class:`DeprecationWarning` so scripts migrate; it will keep working for the
foreseeable future.
"""

from __future__ import annotations

import sys
import warnings
from typing import List, Optional

from repro.api.cli import main as _unified_main


def main(argv: Optional[List[str]] = None) -> int:
    warnings.warn(
        "python -m repro.testing is deprecated; use 'python -m repro sweep' "
        "(same flags)",
        DeprecationWarning,
        stacklevel=2,
    )
    if argv is None:
        argv = sys.argv[1:]
    return _unified_main(["sweep", *argv])


if __name__ == "__main__":
    sys.exit(main())
