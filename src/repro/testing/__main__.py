"""Command-line differential sweep: ``python -m repro.testing``.

Generates ``--count`` programs from consecutive seeds starting at
``--base-seed``, runs the differential oracle on each, prints a per-program
line (always including the seed, so any failure is reproducible from the CI
log alone), and exits non-zero if any program violates a soundness invariant.

On a violation the offending program is shrunk and both the minimised source
and a ready-to-commit corpus JSON payload are printed.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.hardware.processor import hcs12x_like, leon2_like, mpc5554_like, simple_scalar
from repro.testing.corpus import case_payload, load_corpus
from repro.testing.generator import generate_case, render_case
from repro.testing.oracle import DifferentialOracle, OracleConfig
from repro.testing.shrink import Shrinker
from repro.testing.sweep import resolve_jobs, run_sweep

_PROCESSORS = {
    "simple": simple_scalar,
    "leon2": leon2_like,
    "mpc5554": mpc5554_like,
    "hcs12x": hcs12x_like,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="differential soundness sweep over generated mini-C programs",
    )
    parser.add_argument("--count", type=int, default=25, help="programs to generate")
    parser.add_argument("--base-seed", type=int, default=1, help="first seed")
    parser.add_argument(
        "--processor",
        choices=sorted(_PROCESSORS),
        default="simple",
        help="processor timing model",
    )
    parser.add_argument(
        "--inputs", type=int, default=4, help="input vectors per program"
    )
    parser.add_argument(
        "--corpus", action="store_true", help="also replay the checked-in corpus"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (1 = serial, 0 = all cores)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent function-summary cache directory shared by all "
        "workers (re-running the same seeds skips the analysis work; "
        "results are bit-identical either way)",
    )
    parser.add_argument("--verbose", action="store_true", help="per-program lines")
    parser.add_argument(
        "--no-shrink", action="store_true", help="skip shrinking on failure"
    )
    args = parser.parse_args(argv)

    config = OracleConfig(
        processor_factory=_PROCESSORS[args.processor],
        max_input_vectors=args.inputs,
        cache_dir=args.cache_dir,
    )
    oracle = DifferentialOracle(config)

    jobs = resolve_jobs(args.jobs)
    print(
        f"differential sweep: {args.count} programs, base seed {args.base_seed}, "
        f"processor {args.processor!r}, {args.inputs} input vectors each, "
        f"{jobs} worker(s)"
    )
    sweep = run_sweep(
        range(args.base_seed, args.base_seed + args.count), config, jobs=jobs
    )
    failures = []
    total_runs = sweep.total_runs
    for result in sweep.results:
        if args.verbose or not result.ok:
            print(f"  seed {result.seed:>6d}: {result.summary()}")
        if not result.ok:
            failures.append((result.seed, generate_case(result.seed), result))

    elapsed = sweep.seconds
    print(
        f"checked {args.count} programs / {total_runs} concrete runs in "
        f"{elapsed:.1f}s ({elapsed / max(args.count, 1) * 1000:.0f} ms/program); "
        f"{len(failures)} violating"
    )

    if args.corpus:
        corpus = load_corpus()
        print(f"replaying {len(corpus)} corpus cases")
        for case in corpus:
            result = oracle.check(case)
            if args.verbose or not result.ok:
                print(f"  corpus {case.name}: {result.summary()}")
            if not result.ok:
                failures.append((None, case, result))

    for seed, case, result in failures:
        print()
        origin = f"seed {seed}" if seed is not None else f"corpus {case.name}"
        print(f"=== VIOLATION ({origin}) " + "=" * 40)
        for violation in result.violations:
            print(f"  {violation}")
        if args.no_shrink or seed is None:
            print(result.source)
            continue
        shrunk = Shrinker(config).shrink(case)
        print(
            f"  shrunk to {shrunk.line_count} lines "
            f"({shrunk.reductions} reductions, {shrunk.checks} oracle checks):"
        )
        print(render_case(shrunk.case).source)
        kinds = ",".join(shrunk.result.violation_kinds())
        payload = case_payload(
            shrunk.case,
            f"Found by a differential sweep (seed {seed}): {kinds}. "
            "Minimised by the shrinker; describe the root cause here.",
            name=f"regress-seed-{seed}",
        )
        print("  corpus payload (save as tests/corpus/<name>.json after fixing):")
        print(json.dumps(payload, indent=2))
        print(f"  reproduce with: generate_case({seed}) — see docs/testing.md")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
