"""Regression-seed corpus: violating programs, minimised and checked in.

When the differential harness finds a program that breaches a soundness
invariant, the shrinker minimises it and the result is saved as a JSON file
under ``tests/corpus/``.  The test suite replays every corpus case through
the oracle on every run, so a once-found bug can never silently return.
Hand-crafted adversarial programs (irreducible control flow, call chains at
the context-depth limit, aliasing pointer writes) live in the same format.

File format (``tests/corpus/<name>.json``)::

    {
      "name": "irreducible-goto-loop",
      "description": "why this case exists",
      "entry": "main",
      "source": ["int main(void) {", "...lines...", "}"],
      "annotations": ["loopbound main.top 5"],
      "inputs": [{"name": "in0", "low": -8, "high": 8},
                 {"name": "inbuf0", "length": 8, "low": 0, "high": 7}],
      "max_steps": 2000000
    }

``annotations`` lines use the textual format of
:mod:`repro.annotations.parser`; ``inputs`` declare which globals the oracle
enumerates concrete values for.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.annotations import AnnotationSet, parse_annotations
from repro.testing.generator import GeneratedCase, GlobalVar, RenderedCase, render_case


def default_corpus_dir() -> str:
    """``tests/corpus`` relative to the repository root."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "corpus")


@dataclass
class CorpusCase:
    """One checked-in regression program (source form, not a model)."""

    name: str
    description: str
    source: str
    entry: str = "main"
    annotations_text: str = ""
    inputs: List[GlobalVar] = field(default_factory=list)
    max_steps: int = 2_000_000
    path: Optional[str] = None
    seed: Optional[int] = None

    # Duck-typed interface the oracle consumes -------------------------- #
    def rendered(self) -> RenderedCase:
        annotations = (
            parse_annotations(self.annotations_text)
            if self.annotations_text.strip()
            else AnnotationSet()
        )
        return RenderedCase(
            source=self.source,
            annotations=annotations,
            line_count=len(self.source.splitlines()),
        )

    def input_variables(self) -> List[GlobalVar]:
        return list(self.inputs)


# --------------------------------------------------------------------------- #
# Loading
# --------------------------------------------------------------------------- #
def load_case(path: str) -> CorpusCase:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    inputs = [
        GlobalVar(
            name=entry["name"],
            length=entry.get("length"),
            low=entry.get("low", -8),
            high=entry.get("high", 8),
            is_input=True,
        )
        for entry in data.get("inputs", [])
    ]
    source = data["source"]
    if isinstance(source, list):
        source = "\n".join(source) + "\n"
    return CorpusCase(
        name=data["name"],
        description=data.get("description", ""),
        source=source,
        entry=data.get("entry", "main"),
        annotations_text="\n".join(data.get("annotations", [])),
        inputs=inputs,
        max_steps=data.get("max_steps", 2_000_000),
        path=path,
    )


def load_corpus(directory: Optional[str] = None) -> List[CorpusCase]:
    """All corpus cases in ``directory`` (default: ``tests/corpus``), sorted."""
    directory = directory or default_corpus_dir()
    if not os.path.isdir(directory):
        return []
    cases: List[CorpusCase] = []
    for filename in sorted(os.listdir(directory)):
        if filename.endswith(".json"):
            cases.append(load_case(os.path.join(directory, filename)))
    return cases


# --------------------------------------------------------------------------- #
# Saving (used when the harness finds and shrinks a new violation)
# --------------------------------------------------------------------------- #
def annotations_to_text(annotations: AnnotationSet) -> List[str]:
    """Serialise the annotation kinds the generator emits to text lines."""
    lines: List[str] = []
    for bound in annotations.loop_bounds:
        lines.append(
            f"loopbound {bound.function}.{bound.location} {bound.max_iterations}"
        )
    for argrange in annotations.argument_ranges:
        lines.append(
            f"argrange {argrange.function} {argrange.register} "
            f"{argrange.low} {argrange.high}"
        )
    for bound in annotations.recursion_bounds:
        lines.append(f"recursion {bound.function} {bound.max_depth}")
    hints = annotations.control_flow_hints
    for address in sorted(hints.indirect_call_targets):
        targets = ",".join(hints.indirect_call_targets[address])
        lines.append(f"calltargets 0x{address:x} {targets}")
    return lines


def case_payload(
    case: GeneratedCase, description: str, name: Optional[str] = None
) -> dict:
    """The corpus JSON payload for a generated case (what gets saved)."""
    rendered = render_case(case)
    return {
        "name": name or case.name,
        "description": description,
        "entry": case.entry,
        "source": rendered.source.rstrip("\n").split("\n"),
        "annotations": annotations_to_text(rendered.annotations),
        "inputs": [
            {
                "name": variable.name,
                **({"length": variable.length} if variable.length else {}),
                "low": variable.low,
                "high": variable.high,
            }
            for variable in case.input_variables()
        ],
        "max_steps": case.max_steps,
    }


def save_case(
    case: GeneratedCase,
    description: str,
    directory: Optional[str] = None,
    name: Optional[str] = None,
) -> str:
    """Save a (typically shrunk) generated case as a corpus JSON file."""
    directory = directory or default_corpus_dir()
    os.makedirs(directory, exist_ok=True)
    payload = case_payload(case, description, name=name)
    path = os.path.join(directory, f"{payload['name']}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path
