"""Deterministic fault injection for the analysis server (chaos harness).

Every injector is *seeded and deterministic*: whether a given job is killed
or hung is a pure function of the plan's seed and the job's wire payload, so
a red chaos run reproduces exactly from its printed seed — the same contract
the program-generator fuzz fleet already honors.

Four fault families, matching the failure modes a real analysis farm sees:

* **worker kills** — a supervised worker process ``os._exit``\\ s mid-job
  (the observable shape of an OOM kill or segfault);
* **hangs** — an analysis sleeps past its deadline (pathological program,
  livelocked solver);
* **store corruption** — :func:`corrupt_store` truncates/garbles summary
  bucket files on disk (torn writes, bad sectors);
* **dropped/truncated HTTP responses** — :class:`FlakyProxy` sits between
  client and server and eats or cuts responses (flaky networks, LB resets).

The in-process injectors (kill/hang) arm themselves through the
``REPRO_FAULTS`` environment variable — a JSON :class:`FaultPlan` — so
forked worker processes inherit the plan, and fire **only** inside processes
marked by :func:`mark_worker` (the supervised-worker main).  The server
process, inline dispatchers, and any locally-run comparison analysis are
never touched, which is what lets the chaos sweep compare surviving results
bit-for-bit against a direct facade call.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import socket
import threading
import time
from dataclasses import asdict, dataclass
from typing import List, Optional, Tuple

#: Environment variable carrying the JSON-encoded :class:`FaultPlan`.
ENV_VAR = "REPRO_FAULTS"

#: Exit code of an injected worker kill (mirrors SIGKILL's 128+9 so the
#: supervisor sees exactly what an OOM-killed worker looks like).
KILL_EXIT_CODE = 137

#: Set by :func:`mark_worker` in supervised worker processes; kill/hang
#: injectors fire nowhere else.
_IN_WORKER = False


def mark_worker() -> None:
    """Mark this process as a supervised worker (called post-fork)."""
    global _IN_WORKER
    _IN_WORKER = True


@dataclass
class FaultPlan:
    """Seeded in-process injection plan (kills and hangs)."""

    seed: int = 0
    #: Probability that a job's first attempt kills its worker mid-job.
    kill_rate: float = 0.0
    #: Probability that a job's first attempt sleeps ``hang_seconds``.
    hang_rate: float = 0.0
    #: How long a hung job sleeps — set it past the job deadline to force a
    #: supervisor timeout.
    hang_seconds: float = 30.0
    #: Inject only on attempt 0, so every faulted job deterministically
    #: succeeds on retry (the chaos sweep's "every job completes" invariant).
    first_attempt_only: bool = True

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        return cls(**json.loads(raw))


def install(plan: FaultPlan) -> None:
    """Arm the plan for this process and every child it forks."""
    os.environ[ENV_VAR] = plan.to_json()


def clear() -> None:
    """Disarm (idempotent)."""
    os.environ.pop(ENV_VAR, None)


def active() -> Optional[FaultPlan]:
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    try:
        return FaultPlan.from_json(raw)
    except (ValueError, TypeError):
        return None


def decide(seed: int, kind: str, key: str) -> float:
    """Deterministic uniform draw in [0, 1) for one (fault kind, job) pair."""
    digest = hashlib.sha256(f"{seed}:{kind}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def on_job(payload: Tuple) -> None:
    """Injection point called by the worker at the start of every job.

    Fires at most one fault per call; a kill draw shadows a hang draw so the
    two rates stay independently tunable.
    """
    if not _IN_WORKER:
        return
    plan = active()
    if plan is None:
        return
    # The payload grew a trailing trace-context slot; index rather than
    # unpack so fault decisions stay keyed on (spec, request, attempt) only.
    spec_json, request_json, attempt = payload[0], payload[1], payload[2]
    if plan.first_attempt_only and attempt > 0:
        return
    key = json.dumps([spec_json, request_json], sort_keys=True)
    if plan.kill_rate and decide(plan.seed, "kill", key) < plan.kill_rate:
        # The closest honest simulation of an OOM kill: no cleanup, no
        # exception propagation, the pipe just goes EOF on the supervisor.
        os._exit(KILL_EXIT_CODE)
    if plan.hang_rate and decide(plan.seed, "hang", key) < plan.hang_rate:
        time.sleep(plan.hang_seconds)


# --------------------------------------------------------------------------- #
# Store corruption
# --------------------------------------------------------------------------- #
def corrupt_store(cache_dir: str, seed: int, fraction: float = 1.0) -> int:
    """Deterministically corrupt summary bucket files under ``cache_dir``.

    Each selected ``.pkl`` file is either truncated mid-byte or overwritten
    with non-pickle garbage (chosen by the same seeded draw).  Returns how
    many files were corrupted.  The store quarantines them on next read.
    """
    corrupted = 0
    try:
        names = sorted(os.listdir(cache_dir))
    except OSError:
        return 0
    for name in names:
        if not name.endswith(".pkl"):
            continue
        draw = decide(seed, "corrupt", name)
        if draw >= fraction:
            continue
        path = os.path.join(cache_dir, name)
        try:
            if draw < fraction / 2:
                # Torn write: keep a prefix that still looks pickle-ish.
                with open(path, "rb") as handle:
                    data = handle.read()
                with open(path, "wb") as handle:
                    handle.write(data[: max(len(data) // 3, 1)])
            else:
                with open(path, "wb") as handle:
                    handle.write(b"\x80\x05not a pickle " + name.encode())
            corrupted += 1
        except OSError:
            continue
    return corrupted


# --------------------------------------------------------------------------- #
# Flaky HTTP proxy
# --------------------------------------------------------------------------- #
class FlakyProxy:
    """Seeded TCP proxy that drops or truncates upstream responses.

    Sits between a :class:`~repro.server.client.ServerClient` and the
    server.  Each accepted connection draws one deterministic verdict —
    ``pass``, ``drop`` (connection closes before any response bytes) or
    ``truncate`` (response cut after a bounded prefix).  ``urllib`` opens a
    fresh connection per request, so per-connection faults are per-request
    faults.  Requests always reach the server intact: the chaos sweep needs
    the *server* state to advance (job accepted) while the *client* observes
    a network failure — the retry/idempotency path under test.
    """

    #: Bytes of response forwarded before a ``truncate`` verdict cuts it.
    TRUNCATE_AFTER = 64

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        seed: int = 0,
        drop_rate: float = 0.0,
        truncate_rate: float = 0.0,
    ):
        self.upstream = (upstream_host, upstream_port)
        self.drop_rate = drop_rate
        self.truncate_rate = truncate_rate
        self._rng = random.Random(seed)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._closing = False
        self._lock = threading.Lock()
        #: Verdict log, in accept order ("pass"/"drop"/"truncate").
        self.verdicts: List[str] = []

    # ------------------------------------------------------------------ #
    @property
    def faults(self) -> int:
        with self._lock:
            return sum(1 for verdict in self.verdicts if verdict != "pass")

    @property
    def url(self) -> str:
        assert self._listener is not None, "proxy not started"
        host, port = self._listener.getsockname()[:2]
        return f"http://{host}:{port}"

    def start(self) -> "FlakyProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="flaky-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._closing = True
        if self._listener is not None:
            # close() alone does not wake a thread blocked in accept() (the
            # fd stays blocked until the next connection); shutdown() does.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "FlakyProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _addr = self._listener.accept()
            except OSError:
                return
            # The verdict is drawn here, in the single accept thread, so the
            # sequence is a deterministic function of (seed, accept order).
            draw = self._rng.random()
            if draw < self.drop_rate:
                verdict = "drop"
            elif draw < self.drop_rate + self.truncate_rate:
                verdict = "truncate"
            else:
                verdict = "pass"
            with self._lock:
                self.verdicts.append(verdict)
            threading.Thread(
                target=self._handle,
                args=(client, verdict),
                name="flaky-proxy-conn",
                daemon=True,
            ).start()

    def _handle(self, client: socket.socket, verdict: str) -> None:
        try:
            upstream = socket.create_connection(self.upstream, timeout=30)
        except OSError:
            client.close()
            return
        # Client -> upstream is always forwarded intact (see class docstring).
        pump = threading.Thread(
            target=self._pump_request, args=(client, upstream), daemon=True
        )
        pump.start()
        budget = None if verdict == "pass" else (
            0 if verdict == "drop" else self.TRUNCATE_AFTER
        )
        try:
            while True:
                if budget == 0:
                    break
                chunk = upstream.recv(65536)
                if not chunk:
                    break
                if budget is not None and len(chunk) > budget:
                    chunk = chunk[:budget]
                try:
                    client.sendall(chunk)
                except OSError:
                    break
                if budget is not None:
                    budget -= len(chunk)
        except OSError:
            pass
        finally:
            # A hard close (not a graceful FIN after a full response) is what
            # makes urllib surface the fault as a dead connection.  shutdown()
            # first: the request-pump thread may still be blocked in recv() on
            # these sockets, which keeps the file description alive past
            # close() — without the shutdown no FIN is ever sent and the
            # client would sit out its whole timeout instead of failing fast.
            for sock in (client, upstream):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    @staticmethod
    def _pump_request(client: socket.socket, upstream: socket.socket) -> None:
        try:
            while True:
                chunk = client.recv(65536)
                if not chunk:
                    break
                upstream.sendall(chunk)
        except OSError:
            pass
        try:
            upstream.shutdown(socket.SHUT_WR)
        except OSError:
            pass
