"""Long-running fuzz driver: grammar presets, server-path checks, wire fuzzing.

Three attack surfaces, one entry point (``repro fuzz`` rides on this module):

* **Grammar fuzzing** — :func:`run_fuzz` rotates generated programs through
  feature presets aimed at the engine's hard spots (recursion cycles,
  irreducible goto loops, function pointers through the indirect-call hint
  machinery, a tightened ``max_contexts_per_function`` cap) and checks every
  program with the differential oracle: ``BCET <= observed <= WCET`` on every
  enumerated input.
* **Server-path checking** — every program is *also* submitted to a live
  :class:`~repro.server.http.AnalysisServer` on the batch lane, and the
  remote :class:`~repro.wcet.report.WCETReport` must be bit-identical to the
  local facade's (wall-clock phase timings excluded — they are measurements,
  not results).  A flight-control canary with pinned per-mode bounds runs
  before the sweep so an engine regression is caught even if every generated
  program happens to avoid it.
* **Wire fuzzing** — :func:`run_wire_fuzz` mutates schema-1 envelopes and
  HTTP framing against the server's endpoints and asserts that every
  malformed request yields a 4xx :class:`~repro.server.wire.ServerError`
  envelope — never a 500, a hang, or a raw traceback.

Violating programs are auto-shrunk with the delta-debugger and filed into
``tests/corpus/`` so the find is pinned before anyone looks at it.
"""

from __future__ import annotations

import copy
import http.client
import json
import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.api import serialize
from repro.api.project import PROCESSORS
from repro.api.service import AnalysisRequest, AnalysisService
from repro.cache import SummaryStore
from repro.server.client import ClientError, JobFailed, RemoteError, ServerClient
from repro.server.http import AnalysisServer
from repro.server.wire import ProjectSpec, ServerError, ServerSubmit
from repro.testing import faults as fault_injection
from repro.testing.corpus import annotations_to_text, save_case
from repro.testing.generator import FeatureMix, generate_case, render_case
from repro.testing.oracle import DifferentialOracle, OracleConfig
from repro.testing.shrink import Shrinker
from repro.wcet.analyzer import AnalysisOptions

#: Pinned flight-control per-mode (wcet, bcet) bounds — the canary the server
#: CI job also asserts.  ``None`` is the mode-unaware analysis.
FLIGHT_CONTROL_PINS: Dict[Optional[str], Tuple[int, int]] = {
    None: (2514, 87),
    "air": (2514, 284),
    "ground": (161, 87),
}

#: Ceiling on one remote job (a stuck worker must fail the fuzz run, not
#: hang it).
REMOTE_JOB_TIMEOUT = 600.0


# --------------------------------------------------------------------------- #
# Presets: each rotation slot aims the generator at one engine hard spot.
# --------------------------------------------------------------------------- #
@dataclass
class FuzzPreset:
    """One generator/analyzer configuration slot of the rotation."""

    name: str
    mix: FeatureMix
    options: Optional[AnalysisOptions] = None


def default_presets() -> List[FuzzPreset]:
    return [
        FuzzPreset("baseline", FeatureMix()),
        FuzzPreset("recursion", FeatureMix(allow_recursion=True)),
        FuzzPreset(
            "irreducible", FeatureMix(allow_goto_loops=True, p_goto_loop=0.3)
        ),
        FuzzPreset(
            "fnptr", FeatureMix(allow_function_pointers=True, p_fnptr_call=0.3)
        ),
        FuzzPreset(
            "context-cap",
            FeatureMix(),
            AnalysisOptions(max_contexts_per_function=2),
        ),
        FuzzPreset(
            "all",
            FeatureMix(
                allow_recursion=True,
                allow_goto_loops=True,
                allow_function_pointers=True,
                p_goto_loop=0.2,
                p_fnptr_call=0.2,
            ),
        ),
    ]


# --------------------------------------------------------------------------- #
# Outcome types
# --------------------------------------------------------------------------- #
@dataclass
class FuzzViolation:
    """One breached fuzz invariant (soundness, identity or server health)."""

    kind: str                  # "soundness" | "bit-mismatch" | "divergence" |
    #                          # "canary" | "server-error"
    detail: str
    seed: Optional[int] = None
    preset: str = ""
    corpus_path: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        origin = f" [seed {self.seed} preset {self.preset}]" if self.seed else ""
        return f"{self.kind}{origin}: {self.detail}"


@dataclass
class WireViolation:
    """A malformed request the server mishandled (non-4xx / no envelope)."""

    strategy: str
    status: Optional[int]      # None when the exchange hung or tore
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.strategy}: status={self.status} {self.detail}"


@dataclass
class WireFuzzSummary:
    """Outcome of one wire-fuzz run."""

    iterations: int
    seed: int
    by_strategy: Dict[str, int] = field(default_factory=dict)
    violations: List[WireViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> dict:
        return {
            "iterations": self.iterations,
            "seed": self.seed,
            "by_strategy": dict(self.by_strategy),
            "violations": [
                {"strategy": v.strategy, "status": v.status, "detail": v.detail}
                for v in self.violations
            ],
        }


@dataclass
class FuzzSummary:
    """Outcome of one full fuzz run (programs + optional wire pass)."""

    programs: int
    base_seed: int
    jobs: int
    seconds: float = 0.0
    preset_counts: Dict[str, int] = field(default_factory=dict)
    total_runs: int = 0
    violations: List[FuzzViolation] = field(default_factory=list)
    wire: Optional[WireFuzzSummary] = None

    @property
    def ok(self) -> bool:
        return not self.violations and (self.wire is None or self.wire.ok)

    def failing_seeds(self) -> List[int]:
        return sorted({v.seed for v in self.violations if v.seed is not None})

    def to_json(self) -> dict:
        return {
            "schema": 1,
            "kind": "FuzzSummary",
            "programs": self.programs,
            "base_seed": self.base_seed,
            "jobs": self.jobs,
            "seconds": self.seconds,
            "preset_counts": dict(self.preset_counts),
            "total_runs": self.total_runs,
            "ok": self.ok,
            "violations": [
                {
                    "kind": v.kind,
                    "seed": v.seed,
                    "preset": v.preset,
                    "detail": v.detail,
                    "corpus_path": v.corpus_path,
                }
                for v in self.violations
            ],
            "wire": self.wire.to_json() if self.wire is not None else None,
        }


# --------------------------------------------------------------------------- #
def report_identity(report) -> dict:
    """A report's JSON minus wall-clock measurements — the bit-identity key."""

    def strip(node):
        if isinstance(node, dict):
            return {
                key: strip(value)
                for key, value in node.items()
                if key not in ("phases", "seconds", "cache_stats")
            }
        if isinstance(node, list):
            return [strip(value) for value in node]
        return node

    return strip(serialize.to_json(report))


def _case_spec(case, rendered, processor: str) -> ProjectSpec:
    """The wire spec that rebuilds a generated case server-side."""
    lines = annotations_to_text(rendered.annotations)
    return ProjectSpec(
        source=rendered.source,
        entry=case.entry,
        annotations="\n".join(lines) + "\n" if lines else None,
        processor=processor,
        name=case.name,
    )


def _check_canary(client: ServerClient, lane: str) -> Optional[FuzzViolation]:
    """Assert the pinned flight-control bounds through the server path."""
    try:
        result = client.analyze(
            ProjectSpec(workload="flight-control"),
            AnalysisRequest(all_modes=True),
            lane=lane,
            timeout=REMOTE_JOB_TIMEOUT,
        )
    except (ClientError, RemoteError) as exc:
        return FuzzViolation(
            kind="canary", detail=f"flight-control canary failed: {exc}"
        )
    observed = {
        mode: (report.wcet_cycles, report.bcet_cycles)
        for mode, report in result.reports.items()
    }
    if observed != FLIGHT_CONTROL_PINS:
        return FuzzViolation(
            kind="canary",
            detail=(
                f"flight-control bounds moved: observed {observed}, "
                f"pinned {FLIGHT_CONTROL_PINS}"
            ),
        )
    return None


def run_fuzz(
    programs: int = 100,
    jobs: int = 2,
    base_seed: int = 1,
    processor: str = "simple",
    inputs: int = 3,
    presets: Optional[List[FuzzPreset]] = None,
    lane: str = "batch",
    shrink: bool = True,
    save_corpus: bool = True,
    corpus_dir: Optional[str] = None,
    wire_iterations: int = 0,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzSummary:
    """Fuzz ``programs`` generated programs through server and oracle.

    For each seed (``base_seed + i``, preset ``i % len(presets)``):

    1. submit the rendered program to a local :class:`AnalysisServer` on the
       ``lane`` lane (the analysis runs on the server's worker pool while
       this process replays the program locally);
    2. differential-check it locally (soundness: BCET <= observed <= WCET,
       loop bounds, unreachability);
    3. collect the remote report and require bit-identity with the local one.

    Soundness violations are shrunk (``shrink=True``) and auto-filed into the
    corpus (``save_corpus=True``; ``corpus_dir=None`` means ``tests/corpus``).
    With ``wire_iterations > 0`` a wire-fuzz pass runs against the same
    server before it shuts down.
    """
    presets = presets or default_presets()
    factory = PROCESSORS[processor]
    say = progress or (lambda message: None)
    summary = FuzzSummary(programs=programs, base_seed=base_seed, jobs=jobs)
    started = time.perf_counter()

    oracles = {
        preset.name: DifferentialOracle(
            OracleConfig(
                processor_factory=factory,
                max_input_vectors=inputs,
                analysis_options=preset.options,
            )
        )
        for preset in presets
    }

    with AnalysisServer(port=0, jobs=jobs) as server:
        client = ServerClient(server.url)
        canary = _check_canary(client, lane)
        if canary is not None:
            summary.violations.append(canary)
        say(f"server up at {server.url}; canary {'FAILED' if canary else 'ok'}")

        for index in range(programs):
            seed = base_seed + index
            preset = presets[index % len(presets)]
            summary.preset_counts[preset.name] = (
                summary.preset_counts.get(preset.name, 0) + 1
            )
            case = generate_case(seed, mix=preset.mix)
            rendered = render_case(case)

            # Server first: the remote workers analyse while we replay.
            remote_report = None
            remote_detail = None
            try:
                job = client.submit(
                    _case_spec(case, rendered, processor),
                    AnalysisRequest(entry=case.entry, options=preset.options),
                    lane=lane,
                )
            except (ClientError, RemoteError) as exc:
                job = None
                remote_detail = f"submit failed: {type(exc).__name__}: {exc}"

            local = oracles[preset.name].check(case)
            summary.total_runs += len(local.runs)

            if job is not None:
                try:
                    remote_report = job.result(timeout=REMOTE_JOB_TIMEOUT).report
                except JobFailed as exc:
                    remote_detail = f"remote job failed: {exc.error.message}"
                except (ClientError, RemoteError) as exc:
                    summary.violations.append(
                        FuzzViolation(
                            kind="server-error",
                            seed=seed,
                            preset=preset.name,
                            detail=f"{type(exc).__name__}: {exc}",
                        )
                    )

            # Remote/local consistency: both succeed bit-identically, or
            # both fail.
            if local.report is not None and remote_report is not None:
                if report_identity(remote_report) != report_identity(local.report):
                    summary.violations.append(
                        FuzzViolation(
                            kind="bit-mismatch",
                            seed=seed,
                            preset=preset.name,
                            detail=(
                                "server-path report differs from the direct "
                                f"facade (wcet {remote_report.wcet_cycles} vs "
                                f"{local.report.wcet_cycles}, bcet "
                                f"{remote_report.bcet_cycles} vs "
                                f"{local.report.bcet_cycles})"
                            ),
                        )
                    )
            elif (local.report is None) != (remote_report is None):
                side = "remote" if remote_report is None else "local"
                summary.violations.append(
                    FuzzViolation(
                        kind="divergence",
                        seed=seed,
                        preset=preset.name,
                        detail=(
                            f"only the {side} analysis failed "
                            f"({remote_detail or local.violation_kinds()})"
                        ),
                    )
                )

            if local.violations:
                violation = FuzzViolation(
                    kind="soundness",
                    seed=seed,
                    preset=preset.name,
                    detail="; ".join(str(v) for v in local.violations),
                )
                summary.violations.append(violation)
                say(f"seed {seed} [{preset.name}]: {violation.detail}")
                if shrink:
                    config = oracles[preset.name].config
                    shrunk = Shrinker(config).shrink(case)
                    kinds = ",".join(shrunk.result.violation_kinds())
                    if save_corpus:
                        violation.corpus_path = save_case(
                            shrunk.case,
                            f"Found by repro fuzz (seed {seed}, preset "
                            f"{preset.name}): {kinds}. Minimised by the "
                            "shrinker; describe the root cause here.",
                            directory=corpus_dir,
                            name=f"fuzz-{preset.name}-seed-{seed}",
                        )
                        say(f"  filed {violation.corpus_path}")

            if progress and (index + 1) % 50 == 0:
                say(
                    f"{index + 1}/{programs} programs, "
                    f"{len(summary.violations)} violation(s), "
                    f"{time.perf_counter() - started:.0f}s"
                )

        if wire_iterations > 0:
            say(f"wire fuzzing: {wire_iterations} malformed requests")
            summary.wire = run_wire_fuzz(
                server.url, iterations=wire_iterations, seed=base_seed
            )

    summary.seconds = time.perf_counter() - started
    return summary


# --------------------------------------------------------------------------- #
# Wire-level fuzzing: malformed envelopes and broken HTTP framing.
# --------------------------------------------------------------------------- #
_WIRE_SOURCE = "int main(void) { int x = 3; return x + 4; }"


def _valid_submit() -> dict:
    """A well-formed ``POST /v1/jobs`` body to mutate from."""
    return serialize.to_json(
        ServerSubmit(
            project=ProjectSpec(source=_WIRE_SOURCE, name="fuzz.c"),
            request=AnalysisRequest(),
            lane="batch",
        )
    )


@dataclass
class _WireRequest:
    """One raw exchange the wire fuzzer performs."""

    method: str = "POST"
    path: str = "/v1/jobs"
    body: Optional[bytes] = None
    #: Raw header override: when set, headers are written verbatim (used to
    #: send broken Content-Length values a well-behaved client never would).
    raw_headers: Optional[List[Tuple[str, str]]] = None


def _mutate_drop_key(rng: random.Random) -> _WireRequest:
    payload = _valid_submit()
    node = rng.choice([payload, payload["project"], payload["request"]])
    del node[rng.choice(sorted(node))]
    return _WireRequest(body=json.dumps(payload).encode())


#: (where, value) pairs that must each be rejected by type/value validation.
_BAD_FIELDS: List[Tuple[Tuple[str, ...], object]] = [
    (("project",), 42),
    (("project",), "flight-control"),
    (("project",), []),
    (("project",), None),
    (("request",), True),
    (("request",), [1, 2]),
    (("lane",), "bulk"),
    (("lane",), 123),
    (("lane",), None),
    (("lane",), ""),
    (("project", "workload"), 123),
    (("project", "workload"), {"x": 1}),
    (("project", "source"), ["int main", "{}"]),
    (("project", "entry"), 7),
    (("project", "annotations"), False),
    (("project", "processor"), None),
    (("project", "processor"), "z80"),
    (("project", "name"), None),
    (("request", "entry"), 5),
    (("request", "mode"), []),
    (("request", "all_modes"), "yes"),
    (("request", "check_guidelines"), 2.5),
    (("request", "label"), None),
    (("request", "error_scenario"), {}),
    (("request", "options"), 17),
    (("request", "options"), "fast"),
    (("request", "options"), {"schema": 1, "kind": "AnalysisOptions", "warp": 9}),
    (("request", "options"), {"schema": 1, "kind": "ServerError",
                              "error": "x", "message": "y", "job_id": None}),
]


def _mutate_bad_field(rng: random.Random) -> _WireRequest:
    payload = _valid_submit()
    path, value = rng.choice(_BAD_FIELDS)
    node = payload
    for key in path[:-1]:
        node = node[key]
    node[path[-1]] = copy.deepcopy(value)
    return _WireRequest(body=json.dumps(payload).encode())


def _mutate_unknown_kind(rng: random.Random) -> _WireRequest:
    payload = _valid_submit()
    node = rng.choice([payload, payload["project"], payload["request"]])
    node["kind"] = rng.choice(["Nonsense", "", "WCETReport", "serversubmit"])
    return _WireRequest(body=json.dumps(payload).encode())


def _mutate_bad_schema(rng: random.Random) -> _WireRequest:
    payload = _valid_submit()
    payload["schema"] = rng.choice([0, 2, 999, "1", None])
    return _WireRequest(body=json.dumps(payload).encode())


def _mutate_non_object(rng: random.Random) -> _WireRequest:
    return _WireRequest(
        body=rng.choice([b"[]", b"42", b'"submit"', b"null", b"true"])
    )


def _mutate_empty_body(rng: random.Random) -> _WireRequest:
    return _WireRequest(body=b"")


def _mutate_truncated(rng: random.Random) -> _WireRequest:
    valid = json.dumps(_valid_submit()).encode()
    return _WireRequest(body=valid[: rng.randrange(1, len(valid))])


def _mutate_invalid_utf8(rng: random.Random) -> _WireRequest:
    return _WireRequest(body=b'{"schema": 1, "kind": "\xff\xfe\x80"}')


def _mutate_deep_nesting(rng: random.Random) -> _WireRequest:
    depth = rng.randrange(2_000, 6_000)
    return _WireRequest(body=b"[" * depth + b"]" * depth)


def _mutate_source_count(rng: random.Random) -> _WireRequest:
    payload = _valid_submit()
    if rng.random() < 0.5:
        payload["project"]["workload"] = "flight-control"   # two sources
    else:
        payload["project"]["source"] = None                 # zero sources
    return _WireRequest(body=json.dumps(payload).encode())


def _mutate_bad_since(rng: random.Random) -> _WireRequest:
    since = rng.choice(["abc", "1.5", "--1", "0x10", ""])
    return _WireRequest(method="GET", path=f"/v1/jobs/nope/events?since={since}")


def _mutate_unknown_job(rng: random.Random) -> _WireRequest:
    job_id = rng.choice(["missing", "..", "a%00b", "-", "%2e%2e"])
    suffix, method = rng.choice(
        [("", "GET"), ("/result", "GET"), ("/events", "GET"), ("/cancel", "POST")]
    )
    body = b"{}" if method == "POST" else None
    return _WireRequest(method=method, path=f"/v1/jobs/{job_id}{suffix}", body=body)


def _mutate_unknown_path(rng: random.Random) -> _WireRequest:
    method = rng.choice(["GET", "POST"])
    path = rng.choice(["/v1/bogus", "/v2/jobs", "/", "/v1/jobs/x/y/z", "/healthz/x"])
    if method == "POST" and path == "/healthz/x":
        path = "/healthz"
    body = b"{}" if method == "POST" else None
    return _WireRequest(method=method, path=path, body=body)


def _mutate_bad_method(rng: random.Random) -> _WireRequest:
    method = rng.choice(["DELETE", "PUT", "PATCH"])
    return _WireRequest(method=method, path="/v1/jobs", body=b"{}")


def _mutate_bad_content_length(rng: random.Random) -> _WireRequest:
    value = rng.choice(["banana", "-5", str(64 * 1024 * 1024 * 1024), "1e3", ""])
    return _WireRequest(
        body=b"",
        raw_headers=[
            ("Content-Type", "application/json"),
            ("Content-Length", value),
        ],
    )


_STRATEGIES: List[Tuple[str, Callable[[random.Random], _WireRequest]]] = [
    ("drop-key", _mutate_drop_key),
    ("bad-field", _mutate_bad_field),
    ("unknown-kind", _mutate_unknown_kind),
    ("bad-schema-version", _mutate_bad_schema),
    ("non-object-body", _mutate_non_object),
    ("empty-body", _mutate_empty_body),
    ("truncated-json", _mutate_truncated),
    ("invalid-utf8", _mutate_invalid_utf8),
    ("deep-nesting", _mutate_deep_nesting),
    ("source-count", _mutate_source_count),
    ("bad-since", _mutate_bad_since),
    ("unknown-job", _mutate_unknown_job),
    ("unknown-path", _mutate_unknown_path),
    ("bad-method", _mutate_bad_method),
    ("bad-content-length", _mutate_bad_content_length),
]


def _exchange(host: str, port: int, request: _WireRequest, timeout: float):
    """Perform one raw HTTP exchange; returns (status, body_bytes)."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        if request.raw_headers is not None:
            # Hand-rolled framing: send headers verbatim (a sane client
            # would never emit a non-integer Content-Length).
            connection.putrequest(
                request.method, request.path, skip_accept_encoding=True
            )
            for name, value in request.raw_headers:
                connection.putheader(name, value)
            connection.endheaders()
            if request.body:
                connection.send(request.body)
        else:
            headers = {}
            if request.body is not None:
                headers["Content-Type"] = "application/json"
            connection.request(
                request.method, request.path, body=request.body, headers=headers
            )
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def run_wire_fuzz(
    url: str, iterations: int = 200, seed: int = 0, timeout: float = 15.0
) -> WireFuzzSummary:
    """Throw ``iterations`` malformed requests at the server at ``url``.

    Every response must be a 4xx with a parseable
    :class:`~repro.server.wire.ServerError` envelope; anything else — a 5xx,
    a non-envelope body, a hang (socket timeout) — is recorded as a
    :class:`WireViolation`.
    """
    split = urlsplit(url)
    host, port = split.hostname, split.port
    rng = random.Random(seed)
    summary = WireFuzzSummary(iterations=iterations, seed=seed)

    for _ in range(iterations):
        name, build = rng.choice(_STRATEGIES)
        summary.by_strategy[name] = summary.by_strategy.get(name, 0) + 1
        request = build(rng)
        try:
            status, body = _exchange(host, port, request, timeout)
        except (TimeoutError, OSError) as exc:
            summary.violations.append(
                WireViolation(
                    strategy=name,
                    status=None,
                    detail=(
                        f"{request.method} {request.path}: no well-formed "
                        f"response ({type(exc).__name__}: {exc})"
                    ),
                )
            )
            continue
        problem = None
        if not 400 <= status < 500:
            problem = f"expected a 4xx, got {status}"
        else:
            try:
                serialize.from_json(json.loads(body), ServerError)
            except Exception as exc:  # noqa: BLE001 - any parse failure counts
                problem = f"body is not a ServerError envelope: {exc}"
        if problem is not None:
            summary.violations.append(
                WireViolation(
                    strategy=name,
                    status=status,
                    detail=(
                        f"{request.method} {request.path}: {problem} "
                        f"(body: {body[:200]!r})"
                    ),
                )
            )
    return summary


# --------------------------------------------------------------------------- #
# Chaos sweep: seeded infrastructure faults against a live server.
# --------------------------------------------------------------------------- #
@dataclass
class ChaosSummary:
    """Outcome of one chaos sweep (``repro fuzz --chaos``)."""

    jobs: int
    seed: int
    workers: int
    seconds: float = 0.0
    #: Injected-fault census: worker kills, deadline hangs, admission-control
    #: rejections, proxy drops/truncations, corrupted store buckets.
    injected: Dict[str, int] = field(default_factory=dict)
    #: The server's own /healthz fault counters at the end of the sweep.
    server_faults: Dict[str, int] = field(default_factory=dict)
    violations: List[FuzzViolation] = field(default_factory=list)

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_json(self) -> dict:
        return {
            "schema": 1,
            "kind": "ChaosSummary",
            "jobs": self.jobs,
            "seed": self.seed,
            "workers": self.workers,
            "seconds": self.seconds,
            "injected": dict(self.injected),
            "injected_total": self.injected_total,
            "server_faults": dict(self.server_faults),
            "ok": self.ok,
            "violations": [
                {"kind": v.kind, "seed": v.seed, "detail": v.detail}
                for v in self.violations
            ],
        }


def run_chaos(
    jobs_total: int = 30,
    workers: int = 3,
    seed: int = 1,
    kill_rate: float = 0.3,
    hang_rate: float = 0.2,
    job_timeout: float = 10.0,
    max_queue: int = 4,
    drop_rate: float = 0.25,
    truncate_rate: float = 0.1,
    corrupt_buckets: int = 10,
    progress: Optional[Callable[[str], None]] = None,
) -> ChaosSummary:
    """Drive the server through seeded infrastructure faults and check that
    fault tolerance holds (docs/server.md, "Fault tolerance").

    The sweep submits ``jobs_total`` distinct generated programs in a burst
    against a server with ``workers`` supervised workers, a per-lane queue
    bound of ``max_queue`` and a per-job deadline of ``job_timeout`` seconds,
    while four seeded injectors fire: worker kills and past-deadline hangs
    (first attempt only, so a retry deterministically succeeds), dropped or
    truncated HTTP responses behind a :class:`~repro.testing.faults.
    FlakyProxy`, and summary-store bucket corruption.

    Invariants — each breach is a :class:`FuzzViolation`:

    * every submitted job reaches a terminal state; none is lost to a rejected
      or dropped submission (dedup makes resubmission idempotent);
    * with the burst far over capacity, admission control visibly rejects
      (429 envelopes) rather than queueing unboundedly;
    * every completed result is bit-identical to a direct facade analysis of
      the same program, and the flight-control canary still pins
      ``FLIGHT_CONTROL_PINS`` afterwards;
    * corrupt store buckets are quarantined, not re-read;
    * no dispatcher thread is lost, and the server drains cleanly.
    """
    if workers < 2:
        raise ValueError(
            "chaos needs workers >= 2: kill/hang injection requires the "
            "supervised process pool (inline mode runs in the server process)"
        )
    say = progress or (lambda message: None)
    summary = ChaosSummary(jobs=jobs_total, seed=seed, workers=workers)
    started = time.perf_counter()
    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-")
    plan = fault_injection.FaultPlan(
        seed=seed,
        kill_rate=kill_rate,
        hang_rate=hang_rate,
        # Past the deadline with margin, but bounded: a hang must trip the
        # supervisor, not stall the sweep if supervision were broken.
        hang_seconds=job_timeout * 2,
    )
    fault_injection.install(plan)

    def violate(kind: str, detail: str, seed_: Optional[int] = None) -> None:
        summary.violations.append(
            FuzzViolation(kind=kind, detail=detail, seed=seed_, preset="chaos")
        )
        say(f"VIOLATION [{kind}]: {detail}")

    try:
        with AnalysisServer(
            port=0,
            jobs=workers,
            cache_dir=cache_dir,
            max_queue=max_queue,
            job_timeout=job_timeout,
        ) as server:
            with fault_injection.FlakyProxy(
                server.host,
                server.port,
                seed=seed,
                drop_rate=drop_rate,
                truncate_rate=truncate_rate,
            ) as proxy:
                direct = ServerClient(server.url, timeout=30.0)
                flaky = ServerClient(proxy.url, timeout=10.0)
                cases = []
                for index in range(jobs_total):
                    case = generate_case(seed + index)
                    rendered = render_case(case)
                    cases.append(
                        (
                            seed + index,
                            _case_spec(case, rendered, "simple"),
                            AnalysisRequest(entry=case.entry),
                        )
                    )

                # Phase 1 — burst: submit everything as fast as possible on
                # one lane with 429-retries off, so admission control is
                # actually observable.
                handles: Dict[int, Optional[object]] = {}
                rejected_429 = 0
                for case_seed, spec, request in cases:
                    try:
                        handles[case_seed] = direct.submit(
                            spec, request, lane="batch", retries=0
                        )
                    except RemoteError as exc:
                        if exc.status != 429:
                            violate(
                                "server-error",
                                f"burst submit failed with HTTP "
                                f"{exc.status}: {exc}",
                                case_seed,
                            )
                        else:
                            rejected_429 += 1
                            if exc.retry_after is None:
                                violate(
                                    "rejection",
                                    "429 envelope is missing its "
                                    "Retry-After hint",
                                    case_seed,
                                )
                        handles[case_seed] = None
                say(
                    f"burst: {jobs_total - rejected_429} accepted, "
                    f"{rejected_429} rejected with 429"
                )
                if rejected_429 == 0 and jobs_total >= 2 * (workers + max_queue):
                    violate(
                        "rejection",
                        f"burst of {jobs_total} jobs against capacity "
                        f"{workers}+{max_queue} produced zero 429 rejections "
                        "— admission control is not shedding load",
                    )

                # Phase 2 — resubmit every rejected job through the flaky
                # proxy: 429s honor the Retry-After hint, dropped/truncated
                # responses just resubmit (dedup makes that idempotent).
                for case_seed, spec, request in cases:
                    if handles[case_seed] is not None:
                        continue
                    deadline = time.monotonic() + 180.0
                    while handles[case_seed] is None:
                        if time.monotonic() >= deadline:
                            violate(
                                "lost-job",
                                "rejected job could not be resubmitted "
                                "within 180s",
                                case_seed,
                            )
                            break
                        try:
                            handles[case_seed] = flaky.submit(
                                spec, request, lane="batch", retries=0
                            )
                        except RemoteError as exc:
                            if exc.status == 429:
                                pause = exc.retry_after or 1.0
                                time.sleep(min(pause, 5.0))
                            else:
                                violate(
                                    "server-error",
                                    f"resubmit failed with HTTP "
                                    f"{exc.status}: {exc}",
                                    case_seed,
                                )
                                break
                        except ClientError:
                            # Proxy ate the response; the submission may or
                            # may not have landed — resubmitting is safe
                            # either way.
                            time.sleep(0.2)

                # Keep some read traffic flowing through the proxy so drops
                # hit the status path too (failures here are the client's
                # problem by design, never the server's).
                for case_seed, _spec, _request in cases[:: max(jobs_total // 10, 1)]:
                    handle = handles.get(case_seed)
                    if handle is None:
                        continue
                    try:
                        flaky.status(handle.id)
                    except (ClientError, RemoteError):
                        pass

                # Phase 3 — wait for every job; with first-attempt-only
                # injection every accepted job must come back *done*.
                done = 0
                for case_seed, spec, request in cases:
                    handle = handles.get(case_seed)
                    if handle is None:
                        continue
                    try:
                        status = direct.wait(
                            handle.id, timeout=REMOTE_JOB_TIMEOUT
                        )
                    except (ClientError, RemoteError) as exc:
                        violate(
                            "lost-job",
                            f"job {handle.id} never reached a terminal "
                            f"state: {exc}",
                            case_seed,
                        )
                        continue
                    if status.state != "done":
                        violate(
                            "lost-job",
                            f"job {handle.id} ended {status.state!r} "
                            f"({status.error.message if status.error else ''}) "
                            "— injected faults are first-attempt-only, so "
                            "the retry should have succeeded",
                            case_seed,
                        )
                    else:
                        done += 1
                say(f"wait: {done}/{jobs_total} jobs done")

                # Phase 4 — bit-identity: every surviving result must equal a
                # direct facade analysis (this process never injects: the
                # kill/hang hooks only fire in marked worker processes).
                checked = 0
                for case_seed, spec, request in cases:
                    handle = handles.get(case_seed)
                    if handle is None:
                        continue
                    try:
                        remote = direct.result(handle.id)
                    except (ClientError, RemoteError):
                        continue  # already reported in phase 3
                    project = spec.to_project(cache="off")
                    project.build()
                    local = AnalysisService(project).analyze(request)
                    if report_identity(remote.report) != report_identity(
                        local.report
                    ):
                        violate(
                            "bit-mismatch",
                            f"result under chaos differs from the direct "
                            f"facade (wcet {remote.report.wcet_cycles} vs "
                            f"{local.report.wcet_cycles})",
                            case_seed,
                        )
                    checked += 1
                say(f"identity: {checked} results checked against the facade")

                # Phase 5 — store corruption: garble bucket files, then prove
                # a fresh store quarantines every one instead of re-parsing.
                buckets = sorted(
                    name[: -len(".pkl")]
                    for name in os.listdir(cache_dir)
                    if name.endswith(".pkl")
                )
                fraction = (
                    1.0
                    if corrupt_buckets >= len(buckets)
                    else corrupt_buckets / len(buckets)
                ) if buckets else 0.0
                corrupted = fault_injection.corrupt_store(
                    cache_dir, seed=seed, fraction=fraction
                ) if buckets else 0
                probe = SummaryStore(cache_dir)
                for bucket in buckets:
                    probe.get(bucket, "chaos-probe")
                if probe.corruptions != corrupted:
                    violate(
                        "quarantine",
                        f"corrupted {corrupted} bucket(s) but the store "
                        f"quarantined {probe.corruptions}",
                    )
                intact = sum(
                    1
                    for name in os.listdir(cache_dir)
                    if name.endswith(".pkl")
                )
                if intact != len(buckets) - corrupted:
                    violate(
                        "quarantine",
                        f"{len(buckets)} bucket(s), {corrupted} corrupted: "
                        f"expected {len(buckets) - corrupted} intact files, "
                        f"found {intact}",
                    )
                say(f"store: {corrupted} bucket(s) corrupted and quarantined")

                # Phase 6 — the server must still be fully operational:
                # every dispatcher alive, canary bounds pinned, fault
                # counters visible in /healthz.
                if server.pool.alive_dispatchers() != workers:
                    violate(
                        "dispatcher",
                        f"only {server.pool.alive_dispatchers()} of "
                        f"{workers} dispatcher threads survived the sweep",
                    )
                canary = _check_canary(direct, "interactive")
                if canary is not None:
                    summary.violations.append(canary)
                    say(f"VIOLATION [canary]: {canary.detail}")
                stats = direct.healthz()
                summary.server_faults = dict(stats.faults)
                for counter, rate in (
                    ("worker_restarts", kill_rate),
                    ("job_timeouts", hang_rate),
                ):
                    if rate > 0 and not stats.faults.get(counter):
                        violate(
                            "faults",
                            f"injection ran with a nonzero rate but "
                            f"/healthz reports no {counter}",
                        )
                summary.injected = {
                    "worker_kills": stats.faults.get("worker_restarts", 0),
                    "job_timeouts": stats.faults.get("job_timeouts", 0),
                    "rejections": stats.faults.get("rejections", 0),
                    "proxy_faults": proxy.faults,
                    "store_corruptions": corrupted,
                }

        # The context exit above drained the server; a clean drain leaves no
        # dispatcher thread running.
        if server.pool.alive_dispatchers() != 0:
            violate(
                "dispatcher",
                f"{server.pool.alive_dispatchers()} dispatcher(s) "
                "still alive after drain",
            )
    finally:
        fault_injection.clear()
        shutil.rmtree(cache_dir, ignore_errors=True)

    summary.seconds = time.perf_counter() - started
    say(
        f"chaos: {summary.injected_total} fault(s) injected, "
        f"{len(summary.violations)} violation(s), {summary.seconds:.0f}s"
    )
    return summary
