"""Seeded, grammar-driven mini-C program generator.

The generator builds a small structured program model (:class:`GeneratedCase`)
and renders it to mini-C source plus the :class:`AnnotationSet` the WCET
analyzer needs.  Keeping the structured form around (instead of only source
text) is what makes the delta-debugging shrinker practical: transformations
remove statements or functions from the model and re-render, so loop-bound
annotations — which reference ``loop_<line>`` labels — are recomputed from the
new line numbers instead of going stale.

Every generated program is, by construction:

* **well typed** — only ``int`` scalars, ``int`` arrays and ``int *``
  parameters are emitted, and every name is declared before use;
* **terminating** — all loops are counter loops with constant bounds and all
  calls go strictly "downward" in the function list (no recursion);
* **memory safe** — array indices are either constants below the array length
  or loop counters whose bound does not exceed the array length (or inputs
  masked with ``& (len - 1)``);
* **analysable** — loops whose exit condition the value analysis may not see
  through (data-dependent ``break``) carry a loop-bound annotation that is
  correct by construction.

Inputs are modelled as dedicated global scalars/arrays with a declared value
range; the oracle enumerates concrete input vectors for them.  The feature mix
(:class:`FeatureMix`) makes the grammar configurable: probabilities and limits
for conditionals, loop kinds, call depth, arrays, pointer writes, annotated
loops, and masked input-dependent indexing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.annotations import AnnotationSet

#: Length of every generated input/state array (a power of two so masked
#: input-dependent indices are in bounds by construction).
ARRAY_LENGTH = 8


# --------------------------------------------------------------------------- #
# Program model
# --------------------------------------------------------------------------- #
@dataclass
class GlobalVar:
    """One global variable of the generated program.

    ``length`` is ``None`` for scalars.  ``is_input`` marks the variable as an
    oracle input: its initial contents are enumerated per run within
    ``[low, high]``.  Non-input globals start at ``initial``.
    """

    name: str
    length: Optional[int] = None
    initial: int = 0
    is_input: bool = False
    low: int = -8
    high: int = 8


@dataclass
class SAssign:
    """``lhs = expr;`` — lhs is a scalar name or an array element."""

    lhs: str
    expr: str


@dataclass
class SIf:
    cond: str
    then: List["Stmt"] = field(default_factory=list)
    els: List["Stmt"] = field(default_factory=list)


@dataclass
class SFor:
    """``for (var = 0; var < bound; var = var + 1) { body }``.

    ``annotate`` optionally carries an explicit loop-bound annotation (the
    declared bound); the automatic loop-bound analysis finds counter loops on
    its own, so most for loops leave it ``None``.
    """

    var: str
    bound: int
    body: List["Stmt"] = field(default_factory=list)
    annotate: Optional[int] = None


@dataclass
class SWhileBreak:
    """An annotated while loop with an optional data-dependent early exit::

        while (var < bound) {
            <body>
            if (<break_cond>) { break; }
            var = var + 1;
        }

    ``annotate`` is the declared iteration bound emitted as a ``loopbound``
    annotation.  A *correct* declaration equals ``bound``; the known-bad
    program used to validate the shrinker deliberately declares less.
    """

    var: str
    bound: int
    body: List["Stmt"] = field(default_factory=list)
    break_cond: Optional[str] = None
    annotate: Optional[int] = None


@dataclass
class SCall:
    """``lhs = callee(args);`` or a bare ``callee(args);`` when lhs is None."""

    callee: str
    args: List[str] = field(default_factory=list)
    lhs: Optional[str] = None


@dataclass
class SReturn:
    expr: str


Stmt = Union[SAssign, SIf, SFor, SWhileBreak, SCall, SReturn]


@dataclass
class Param:
    name: str
    is_pointer: bool = False


@dataclass
class GFunction:
    name: str
    params: List[Param] = field(default_factory=list)
    locals_: List[Tuple[str, str]] = field(default_factory=list)  # (name, init expr)
    body: List[Stmt] = field(default_factory=list)
    return_expr: str = "0"
    returns_void: bool = False
    #: Inclusive value range of each scalar argument at every generated call
    #: site; rendered as an ``argrange`` annotation when set.
    arg_ranges: Dict[str, Tuple[int, int]] = field(default_factory=dict)


@dataclass
class GeneratedCase:
    """One generated program: globals + functions (entry last) + metadata."""

    name: str
    seed: int
    globals_: List[GlobalVar] = field(default_factory=list)
    functions: List[GFunction] = field(default_factory=list)
    entry: str = "main"
    max_steps: int = 2_000_000
    notes: str = ""

    def input_variables(self) -> List[GlobalVar]:
        return [g for g in self.globals_ if g.is_input]

    def function(self, name: str) -> GFunction:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(name)


@dataclass
class RenderedCase:
    """The source text and annotations obtained from one program model."""

    source: str
    annotations: AnnotationSet
    line_count: int


# --------------------------------------------------------------------------- #
# Rendering
# --------------------------------------------------------------------------- #
class _Emitter:
    def __init__(self) -> None:
        self.lines: List[str] = []

    @property
    def next_line(self) -> int:
        return len(self.lines) + 1

    def emit(self, indent: int, text: str) -> int:
        self.lines.append("    " * indent + text)
        return len(self.lines)


def render_case(case: GeneratedCase) -> RenderedCase:
    """Render the program model to mini-C source and its annotation set."""
    emitter = _Emitter()
    annotations = AnnotationSet()

    for var in case.globals_:
        if var.length is not None:
            emitter.emit(0, f"int {var.name}[{var.length}];")
        elif var.initial:
            emitter.emit(0, f"int {var.name} = {var.initial};")
        else:
            emitter.emit(0, f"int {var.name};")

    for function in case.functions:
        params = ", ".join(
            (f"int *{p.name}" if p.is_pointer else f"int {p.name}")
            for p in function.params
        ) or "void"
        return_type = "void" if function.returns_void else "int"
        emitter.emit(0, f"{return_type} {function.name}({params}) {{")
        for name, init in function.locals_:
            emitter.emit(1, f"int {name} = {init};")
        _render_block(emitter, annotations, function, function.body, 1)
        if not function.returns_void:
            emitter.emit(1, f"return {function.return_expr};")
        emitter.emit(0, "}")
        for position, (low, high) in enumerate(
            function.arg_ranges.get(p.name, (None, None))
            for p in function.params
        ):
            if low is not None:
                annotations.add_argument_range(function.name, f"r{3 + position}", low, high)

    source = "\n".join(emitter.lines) + "\n"
    return RenderedCase(
        source=source, annotations=annotations, line_count=len(emitter.lines)
    )


def _render_block(
    emitter: _Emitter,
    annotations: AnnotationSet,
    function: GFunction,
    stmts: Sequence[Stmt],
    indent: int,
) -> None:
    for stmt in stmts:
        _render_stmt(emitter, annotations, function, stmt, indent)


def _render_stmt(
    emitter: _Emitter,
    annotations: AnnotationSet,
    function: GFunction,
    stmt: Stmt,
    indent: int,
) -> None:
    if isinstance(stmt, SAssign):
        emitter.emit(indent, f"{stmt.lhs} = {stmt.expr};")
        return
    if isinstance(stmt, SIf):
        emitter.emit(indent, f"if ({stmt.cond}) {{")
        _render_block(emitter, annotations, function, stmt.then, indent + 1)
        if stmt.els:
            emitter.emit(indent, "} else {")
            _render_block(emitter, annotations, function, stmt.els, indent + 1)
        emitter.emit(indent, "}")
        return
    if isinstance(stmt, SFor):
        line = emitter.emit(
            indent,
            f"for ({stmt.var} = 0; {stmt.var} < {stmt.bound}; "
            f"{stmt.var} = {stmt.var} + 1) {{",
        )
        if stmt.annotate is not None:
            annotations.add_loop_bound(function.name, f"loop_{line}", stmt.annotate)
        _render_block(emitter, annotations, function, stmt.body, indent + 1)
        emitter.emit(indent, "}")
        return
    if isinstance(stmt, SWhileBreak):
        emitter.emit(indent, f"{stmt.var} = 0;")
        line = emitter.emit(indent, f"while ({stmt.var} < {stmt.bound}) {{")
        if stmt.annotate is not None:
            annotations.add_loop_bound(function.name, f"loop_{line}", stmt.annotate)
        _render_block(emitter, annotations, function, stmt.body, indent + 1)
        if stmt.break_cond is not None:
            emitter.emit(indent + 1, f"if ({stmt.break_cond}) {{")
            emitter.emit(indent + 2, "break;")
            emitter.emit(indent + 1, "}")
        emitter.emit(indent + 1, f"{stmt.var} = {stmt.var} + 1;")
        emitter.emit(indent, "}")
        return
    if isinstance(stmt, SCall):
        call = f"{stmt.callee}({', '.join(stmt.args)})"
        if stmt.lhs is not None:
            emitter.emit(indent, f"{stmt.lhs} = {call};")
        else:
            emitter.emit(indent, f"{call};")
        return
    if isinstance(stmt, SReturn):
        emitter.emit(indent, f"return {stmt.expr};")
        return
    raise TypeError(f"unknown statement node {type(stmt).__name__}")


# --------------------------------------------------------------------------- #
# Feature mix
# --------------------------------------------------------------------------- #
@dataclass
class FeatureMix:
    """Probabilities and limits steering the grammar."""

    #: Helper functions besides main (callees of main and of each other).
    max_helpers: int = 3
    max_params: int = 3
    max_stmts: int = 5            # statements per block
    max_depth: int = 3            # nesting depth of if/for/while
    max_expr_depth: int = 2
    max_loop_bound: int = 8
    max_locals: int = 5
    input_scalars: int = 2
    input_arrays: int = 1
    state_scalars: int = 2
    state_arrays: int = 1

    p_if: float = 0.22
    p_for: float = 0.18
    p_while_break: float = 0.10
    p_call: float = 0.18
    p_array_store: float = 0.15
    p_pointer_write: float = 0.10
    p_else: float = 0.5
    p_annotate_for: float = 0.2
    p_masked_input_index: float = 0.15
    p_compare_chain: float = 0.3

    allow_calls: bool = True
    allow_pointers: bool = True
    allow_arrays: bool = True
    allow_while_break: bool = True
    allow_division: bool = True

    #: Cap on the *estimated dynamic step count* of any single function
    #: (loops multiply, calls add the callee's estimate).  Without this,
    #: nested loops around nested calls compose multiplicatively and a
    #: single seed can take millions of interpreter steps; the generator
    #: vetoes calls that would blow the budget and emits a plain assignment
    #: instead, keeping every generated program cheap to replay.
    max_dynamic_cost: int = 40_000

    def scaled_for_depth(self, depth: int) -> "FeatureMix":
        """Damp structure probabilities as nesting grows."""
        factor = 0.5 ** depth
        return replace(
            self,
            p_if=self.p_if * factor,
            p_for=self.p_for * factor,
            p_while_break=self.p_while_break * factor,
        )


#: Arithmetic operators usable between arbitrary int expressions.
_ARITH_OPS = ("+", "-", "*", "&", "|", "^")
_COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")
#: Divisors/moduli — strictly positive constants so execution never traps.
_DIVISORS = (2, 3, 4, 5, 7)


# --------------------------------------------------------------------------- #
# Generator
# --------------------------------------------------------------------------- #
class ProgramGenerator:
    """Generates one :class:`GeneratedCase` per seed, deterministically."""

    #: Rough interpreter-step costs of generated constructs (calibration for
    #: the dynamic-cost budget; deliberately pessimistic).
    _STMT_COST = 10
    _LOOP_ITERATION_COST = 8
    _CALL_OVERHEAD = 40

    def __init__(self, seed: int, mix: Optional[FeatureMix] = None):
        self.seed = seed
        self.mix = mix or FeatureMix()
        self.rng = random.Random(seed)
        #: Estimated dynamic step cost of each finished function.
        self._costs: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def generate(self) -> GeneratedCase:
        rng = self.rng
        mix = self.mix
        case = GeneratedCase(name=f"gen_{self.seed}", seed=self.seed)

        for index in range(mix.input_scalars):
            case.globals_.append(
                GlobalVar(name=f"in{index}", is_input=True, low=-8, high=8)
            )
        for index in range(mix.input_arrays):
            case.globals_.append(
                GlobalVar(
                    name=f"inbuf{index}",
                    length=ARRAY_LENGTH,
                    is_input=True,
                    low=-8,
                    high=8,
                )
            )
        for index in range(mix.state_scalars):
            case.globals_.append(
                GlobalVar(name=f"g{index}", initial=rng.randint(-4, 4))
            )
        for index in range(mix.state_arrays):
            case.globals_.append(GlobalVar(name=f"sbuf{index}", length=ARRAY_LENGTH))

        if mix.allow_pointers:
            case.functions.append(self._pointer_write_helper())

        num_helpers = rng.randint(0, mix.max_helpers) if mix.allow_calls else 0
        for index in range(num_helpers):
            case.functions.append(self._generate_helper(case, index))
        case.functions.append(self._generate_main(case))
        # Generous interpreter budget relative to the estimate: a real
        # divergence still trips it, a merely-large program does not.
        case.max_steps = max(200_000, self._costs.get("main", 0) * 10)
        return case

    # ------------------------------------------------------------------ #
    def _pointer_write_helper(self) -> GFunction:
        """``void pw(int *p, int v) { *p = *p + v; }`` — the aliasing probe."""
        self._costs["pw"] = 40
        return GFunction(
            name="pw",
            params=[Param("p", is_pointer=True), Param("v")],
            body=[SAssign("*p", "*p + v")],
            returns_void=True,
        )

    # ------------------------------------------------------------------ #
    def _generate_helper(self, case: GeneratedCase, index: int) -> GFunction:
        rng = self.rng
        mix = self.mix
        num_params = rng.randint(1, mix.max_params)
        params = [Param(f"a{i}") for i in range(num_params)]
        function = GFunction(name=f"f{index}", params=params)
        # Scalar arguments are always generated within this range; declaring it
        # lets the context-insensitive analysis bound argument-driven loops.
        for param in params:
            function.arg_ranges[param.name] = (-16, 16)
        self._fill_function(case, function, callees=self._callees(case, index))
        return function

    def _generate_main(self, case: GeneratedCase) -> GFunction:
        function = GFunction(name="main", params=[])
        self._fill_function(
            case, function, callees=self._callees(case, len(case.functions))
        )
        return function

    def _callees(self, case: GeneratedCase, index: int) -> List[GFunction]:
        """Helpers a function may call: only ones generated before it."""
        return [f for f in case.functions if f.name.startswith("f")][:index]

    # ------------------------------------------------------------------ #
    def _fill_function(
        self, case: GeneratedCase, function: GFunction, callees: List[GFunction]
    ) -> None:
        rng = self.rng
        mix = self.mix
        num_locals = rng.randint(1, mix.max_locals)
        for i in range(num_locals):
            function.locals_.append((f"v{i}", str(rng.randint(-4, 4))))

        scope = _Scope(case=case, function=function, callees=callees)
        function.body = self._generate_block(scope, depth=0)
        function.return_expr = self._expr(scope, mix.max_expr_depth)
        self._costs[function.name] = self._CALL_OVERHEAD + scope.estimate

    # ------------------------------------------------------------------ #
    def _generate_block(self, scope: "_Scope", depth: int) -> List[Stmt]:
        rng = self.rng
        mix = self.mix.scaled_for_depth(depth)
        stmts: List[Stmt] = []
        for _ in range(rng.randint(1, mix.max_stmts)):
            stmts.append(self._generate_stmt(scope, depth))
        return stmts

    def _generate_stmt(self, scope: "_Scope", depth: int) -> Stmt:
        rng = self.rng
        mix = self.mix.scaled_for_depth(depth)
        roll = rng.random()

        threshold = mix.p_if
        if roll < threshold and depth < self.mix.max_depth:
            return self._generate_if(scope, depth)
        threshold += mix.p_for
        if roll < threshold and depth < self.mix.max_depth:
            return self._generate_for(scope, depth)
        threshold += mix.p_while_break
        if (
            roll < threshold
            and depth < self.mix.max_depth
            and self.mix.allow_while_break
        ):
            return self._generate_while_break(scope, depth)
        threshold += mix.p_call
        if roll < threshold and scope.callees and self.mix.allow_calls:
            call = self._generate_call(scope)
            if call is not None:
                return call
        threshold += mix.p_array_store
        if roll < threshold and self.mix.allow_arrays:
            store = self._generate_array_store(scope)
            if store is not None:
                return store
        threshold += mix.p_pointer_write
        if roll < threshold and self.mix.allow_pointers:
            call = self._generate_pointer_write(scope)
            if call is not None:
                return call
        scope.charge(self._STMT_COST)
        return SAssign(lhs=scope.random_scalar_lvalue(rng), expr=self._expr(scope, self.mix.max_expr_depth))

    # ------------------------------------------------------------------ #
    def _generate_if(self, scope: "_Scope", depth: int) -> SIf:
        rng = self.rng
        scope.charge(self._STMT_COST)
        cond = self._condition(scope)
        then = self._generate_block(scope, depth + 1)
        els: List[Stmt] = []
        if rng.random() < self.mix.p_else:
            els = self._generate_block(scope, depth + 1)
        return SIf(cond=cond, then=then, els=els)

    def _generate_for(self, scope: "_Scope", depth: int) -> SFor:
        rng = self.rng
        var = scope.new_counter()
        bound = rng.randint(1, min(self.mix.max_loop_bound, ARRAY_LENGTH))
        annotate = bound if rng.random() < self.mix.p_annotate_for else None
        scope.push_counter(var, bound)
        scope.charge(self._LOOP_ITERATION_COST)
        body = self._generate_block(scope, depth + 1)
        scope.pop_counter()
        return SFor(var=var, bound=bound, body=body, annotate=annotate)

    def _generate_while_break(self, scope: "_Scope", depth: int) -> SWhileBreak:
        rng = self.rng
        var = scope.new_counter()
        bound = rng.randint(1, min(self.mix.max_loop_bound, ARRAY_LENGTH))
        scope.push_counter(var, bound)
        scope.charge(self._LOOP_ITERATION_COST)
        body = self._generate_block(scope, depth + 1)
        break_cond = self._condition(scope) if rng.random() < 0.7 else None
        scope.pop_counter()
        return SWhileBreak(
            var=var, bound=bound, body=body, break_cond=break_cond, annotate=bound
        )

    def _generate_call(self, scope: "_Scope") -> Optional[SCall]:
        rng = self.rng
        callee = rng.choice(scope.callees)
        cost = self._CALL_OVERHEAD + self._costs.get(callee.name, self._CALL_OVERHEAD)
        if not scope.fits(cost, self.mix.max_dynamic_cost):
            return None
        scope.charge(cost)
        args: List[str] = []
        for param in callee.params:
            low, high = callee.arg_ranges.get(param.name, (-4, 4))
            if rng.random() < 0.5:
                args.append(str(rng.randint(low, high)))
            else:
                # A value expression clamped into the declared range by a
                # modulus: rem in (-d, d) stays inside [-16, 16] for d <= 16.
                divisor = rng.choice(_DIVISORS)
                args.append(f"({self._leaf(scope)}) % {divisor}")
        return SCall(callee=callee.name, args=args, lhs=scope.random_local(rng))

    def _generate_array_store(self, scope: "_Scope") -> Optional[SAssign]:
        rng = self.rng
        array = scope.random_array(rng)
        if array is None:
            return None
        scope.charge(self._STMT_COST)
        index = self._array_index(scope)
        return SAssign(
            lhs=f"{array.name}[{index}]", expr=self._expr(scope, self.mix.max_expr_depth)
        )

    def _generate_pointer_write(self, scope: "_Scope") -> Optional[SCall]:
        rng = self.rng
        cost = self._CALL_OVERHEAD + self._costs.get("pw", self._CALL_OVERHEAD)
        if not scope.fits(cost, self.mix.max_dynamic_cost):
            return None
        scope.charge(cost)
        targets: List[str] = [
            f"&{g.name}" for g in scope.case.globals_ if g.length is None
        ]
        array = scope.random_array(rng)
        if array is not None:
            targets.append(f"&{array.name}[{self._array_index(scope)}]")
        target = rng.choice(targets)
        return SCall(callee="pw", args=[target, self._expr(scope, 1)], lhs=None)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _array_index(self, scope: "_Scope") -> str:
        """An in-bounds index: a bounded counter, a constant, or a masked input."""
        rng = self.rng
        candidates: List[str] = [str(rng.randint(0, ARRAY_LENGTH - 1))]
        counter = scope.random_bounded_counter(rng, ARRAY_LENGTH)
        if counter is not None:
            candidates.append(counter)
            candidates.append(counter)   # favour loop counters
        if rng.random() < self.mix.p_masked_input_index:
            inputs = [g.name for g in scope.case.globals_ if g.is_input and g.length is None]
            if inputs:
                candidates.append(f"({rng.choice(inputs)} & {ARRAY_LENGTH - 1})")
        return rng.choice(candidates)

    def _leaf(self, scope: "_Scope") -> str:
        rng = self.rng
        choices: List[str] = [str(rng.randint(-8, 8))]
        choices.extend(scope.scalar_reads())
        array = scope.random_array(rng)
        if array is not None and self.mix.allow_arrays:
            choices.append(f"{array.name}[{self._array_index(scope)}]")
        return rng.choice(choices)

    def _expr(self, scope: "_Scope", depth: int) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            return self._leaf(scope)
        roll = rng.random()
        if roll < 0.12 and self.mix.allow_division:
            return f"({self._expr(scope, depth - 1)}) / {rng.choice(_DIVISORS)}"
        if roll < 0.24 and self.mix.allow_division:
            return f"({self._expr(scope, depth - 1)}) % {rng.choice(_DIVISORS)}"
        if roll < 0.32:
            return f"({self._expr(scope, depth - 1)}) >> {rng.randint(0, 3)}"
        if roll < 0.40:
            return f"({self._expr(scope, depth - 1)}) << {rng.randint(0, 3)}"
        if roll < 0.48:
            return f"-({self._expr(scope, depth - 1)})"
        op = rng.choice(_ARITH_OPS)
        return f"({self._expr(scope, depth - 1)} {op} {self._expr(scope, depth - 1)})"

    def _condition(self, scope: "_Scope") -> str:
        rng = self.rng
        left = self._expr(scope, 1)
        right = self._expr(scope, 1)
        cond = f"{left} {rng.choice(_COMPARE_OPS)} {right}"
        if rng.random() < self.mix.p_compare_chain:
            junction = rng.choice(("&&", "||"))
            third = f"{self._leaf(scope)} {rng.choice(_COMPARE_OPS)} {self._leaf(scope)}"
            cond = f"({cond}) {junction} ({third})"
        return cond


@dataclass
class _Scope:
    """Names visible while generating one function body."""

    case: GeneratedCase
    function: GFunction
    callees: List[GFunction]
    counters: List[Tuple[str, int]] = field(default_factory=list)
    counter_names: List[str] = field(default_factory=list)
    #: Estimated dynamic steps of the function body generated so far.
    estimate: int = 0
    #: Product of the bounds of the currently open loops.
    multiplier: int = 1
    #: Cap on distinct counters per function: together with max_locals and
    #: max_params this keeps every scalar local in a callee-saved home
    #: register, which the automatic loop-bound analysis depends on.
    max_counters: int = 6

    def new_counter(self) -> str:
        active = {name for name, _ in self.counters}
        if len(self.counter_names) >= self.max_counters:
            free = [name for name in self.counter_names if name not in active]
            if free:
                return free[0]
        name = f"i{len(self.counter_names)}"
        self.counter_names.append(name)
        self.function.locals_.append((name, "0"))
        return name

    def push_counter(self, name: str, bound: int) -> None:
        self.counters.append((name, bound))
        self.multiplier *= max(bound, 1)

    def pop_counter(self) -> None:
        _, bound = self.counters.pop()
        self.multiplier //= max(bound, 1)

    def charge(self, units: int) -> None:
        self.estimate += self.multiplier * units

    def fits(self, units: int, cap: int) -> bool:
        return self.estimate + self.multiplier * units <= cap

    def random_bounded_counter(self, rng: random.Random, limit: int) -> Optional[str]:
        eligible = [name for name, bound in self.counters if bound <= limit]
        return rng.choice(eligible) if eligible else None

    def _active_counters(self) -> set:
        return {name for name, _ in self.counters}

    def random_local(self, rng: random.Random) -> str:
        """A local that is safe to overwrite (never an active loop counter)."""
        active = self._active_counters()
        names = [name for name, _ in self.function.locals_ if name not in active]
        return rng.choice(names)

    def random_scalar_lvalue(self, rng: random.Random) -> str:
        active = self._active_counters()
        choices = [name for name, _ in self.function.locals_ if name not in active]
        choices.extend(g.name for g in self.case.globals_ if g.length is None and not g.is_input)
        return rng.choice(choices)

    def random_array(self, rng: random.Random) -> Optional[GlobalVar]:
        arrays = [g for g in self.case.globals_ if g.length is not None]
        return rng.choice(arrays) if arrays else None

    def scalar_reads(self) -> List[str]:
        """Every scalar name readable here (locals, params, globals, inputs)."""
        names = [name for name, _ in self.function.locals_]
        names.extend(p.name for p in self.function.params if not p.is_pointer)
        names.extend(g.name for g in self.case.globals_ if g.length is None)
        return names


# --------------------------------------------------------------------------- #
def generate_case(seed: int, mix: Optional[FeatureMix] = None) -> GeneratedCase:
    """Generate the program for one seed (deterministic)."""
    return ProgramGenerator(seed, mix=mix).generate()
